//! Quick start: histories, consistency checkers, and a simulated algorithm.
//!
//! Run with `cargo run --example quickstart`.

use evlin::checker::eventual;
use evlin::prelude::*;

fn main() {
    // -----------------------------------------------------------------
    // 1. Histories and checkers.
    // -----------------------------------------------------------------
    let mut universe = ObjectUniverse::new();
    let counter = universe.add_object(FetchIncrement::new());

    // Two processes each perform one fetch&inc; both get 0 because the
    // implementation they used was only eventually consistent.
    let history = HistoryBuilder::new()
        .complete(
            ProcessId(0),
            counter,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        )
        .complete(
            ProcessId(1),
            counter,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        )
        .build();

    println!("history:\n{history}");
    let report = eventual::analyze(&history, &universe);
    println!("linearizable:             {}", report.is_linearizable());
    println!("weakly consistent:        {}", report.weakly_consistent);
    println!(
        "eventually linearizable:  {}",
        report.is_eventually_linearizable()
    );
    println!("minimal stabilization t:  {:?}", report.min_stabilization);
    assert!(!report.is_linearizable());
    assert!(report.is_eventually_linearizable());

    // -----------------------------------------------------------------
    // 2. Running an algorithm on the simulator: the Proposition 16
    //    eventually linearizable consensus from registers.
    // -----------------------------------------------------------------
    let mut consensus_universe = ObjectUniverse::new();
    consensus_universe.add_object(Consensus::new());

    let implementation = Prop16Consensus::new(3);
    let workload = Workload::one_shot(vec![
        Consensus::propose(Value::from(10i64)),
        Consensus::propose(Value::from(20i64)),
        Consensus::propose(Value::from(30i64)),
    ]);
    let mut scheduler = SoloBurstScheduler::new(2);
    let outcome = run(&implementation, &workload, &mut scheduler, 10_000);

    println!("\nProp 16 consensus under an adversarial schedule:");
    for op in outcome.history.complete_operations() {
        println!(
            "  {} proposed {} and adopted {}",
            op.process,
            op.invocation.arg(0).unwrap(),
            op.response.clone().unwrap()
        );
    }
    let report = eventual::analyze(&outcome.history, &consensus_universe);
    println!(
        "weakly consistent: {}, min stabilization: {:?}",
        report.weakly_consistent, report.min_stabilization
    );
    assert!(report.is_eventually_linearizable());

    // -----------------------------------------------------------------
    // 3. A real multi-threaded counter, checked offline.
    // -----------------------------------------------------------------
    let cas = CasCounter::new();
    let run = evlin::runtime::run_counter_workload(
        &cas,
        evlin::runtime::HarnessOptions {
            threads: 4,
            ops_per_thread: 1_000,
            record_history: true,
        },
    );
    let recorded = run.history.expect("recording enabled");
    let linearizable = evlin::checker::fi::is_linearizable(&recorded, 0).unwrap();
    println!(
        "\ncas-loop counter: {} ops, {:.2} Mops/s, linearizable: {linearizable}",
        run.total_ops,
        run.throughput / 1e6
    );
    assert!(linearizable);
}
