//! Proposition 16 in action: wait-free eventually linearizable consensus from
//! registers, including eventually linearizable base registers, under a range
//! of schedules.
//!
//! Run with `cargo run --example consensus_from_registers`.

use evlin::checker::{eventual, weak_consistency};
use evlin::prelude::*;
use evlin::sim::eventually::StabilizationPolicy;

fn proposals(n: usize) -> Workload {
    Workload::one_shot(
        (0..n)
            .map(|i| Consensus::propose(Value::from((i as i64 + 1) * 100)))
            .collect(),
    )
}

fn report(label: &str, history: &History, universe: &ObjectUniverse) {
    let decisions: std::collections::BTreeSet<_> = history
        .complete_operations()
        .iter()
        .filter_map(|op| op.response.clone())
        .collect();
    let analysis = eventual::analyze(history, universe);
    println!(
        "  {:<22} decisions: {:<18} weakly consistent: {:<5} linearizable: {:<5} min t: {:?}",
        label,
        format!("{decisions:?}"),
        weak_consistency::is_weakly_consistent(history, universe),
        analysis.is_linearizable(),
        analysis.min_stabilization,
    );
    assert!(analysis.is_eventually_linearizable());
}

fn main() {
    let n = 3;
    let mut universe = ObjectUniverse::new();
    universe.add_object(Consensus::new());

    println!("Proposition 16 consensus, {n} processes, linearizable registers:");
    {
        let implementation = Prop16Consensus::new(n);
        let mut round_robin = RoundRobinScheduler::new();
        let out = run(&implementation, &proposals(n), &mut round_robin, 10_000);
        report("round-robin", &out.history, &universe);

        let mut bursts = SoloBurstScheduler::new(2);
        let out = run(&implementation, &proposals(n), &mut bursts, 10_000);
        report("solo-burst(2)", &out.history, &universe);

        for seed in 0..3u64 {
            let mut random = RandomScheduler::seeded(seed);
            let out = run(&implementation, &proposals(n), &mut random, 10_000);
            report(&format!("random(seed {seed})"), &out.history, &universe);
        }
    }

    println!(
        "\nSame algorithm over *eventually linearizable* registers (stabilize after 6 accesses):"
    );
    {
        let implementation = Prop16Consensus::with_eventually_linearizable_registers(
            n,
            StabilizationPolicy::AfterAccesses(6),
        );
        for seed in 0..3u64 {
            let mut random = RandomScheduler::seeded(seed);
            let out = run(&implementation, &proposals(n), &mut random, 10_000);
            report(&format!("random(seed {seed})"), &out.history, &universe);
        }
    }

    println!(
        "\nDisagreements (more than one decision) are allowed before stabilization — \
         that is what makes this implementation eventually linearizable yet so cheap; \
         a fully linearizable consensus cannot be built from registers at all."
    );
}
