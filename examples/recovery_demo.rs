//! Crash-recoverable monitoring service driver: survive `kill -9` mid-run.
//!
//! `run` streams a racy (but linearizable-by-construction) fetch&increment
//! history from two producer clients over loopback TCP into a recoverable
//! service.  Every accepted frame is journaled and fsynced under `--dir`
//! before it is acked, connection chaos kills the client links every few
//! frames, and the replica pool is deliberately crash-restarted twice
//! mid-stream — so a clean completion already demonstrates in-run recovery
//! (session resumption + journal replay) and prints `RECOVERED OK`.
//!
//! `resume` is the *process*-crash path: it binds a fresh service over the
//! same journal directory, replays every session journal found there
//! through a new replica pool (re-folding each chained fingerprint as an
//! audit), and prints `RECOVERED OK` if the rebuild was bit-faithful.
//!
//! ```text
//! cargo run --release --example recovery_demo -- run --dir /tmp/rj --throttle-us 500 &
//! sleep 2; kill -9 $!
//! cargo run --release --example recovery_demo -- resume --dir /tmp/rj
//! ```
//!
//! The CI chaos-smoke step drives exactly this sequence.  After a `kill -9`
//! the journals hold per-client *prefixes* of the stream, so `resume`
//! verifies recovery fidelity (every journaled frame replayed, zero chain
//! mismatches), not the verdict: a truncated history may legitimately
//! violate linearizability when one client's surviving counter values
//! reflect another client's lost increments.
//!
//! See `docs/PROTOCOL.md` for the frame formats and the recovery argument.

use evlin::checker::monitor::{MonitorCondition, MonitorConfig};
use evlin::history::{ObjectId, ObjectUniverse, ProcessId};
use evlin::service::{
    ClientRecoveryConfig, ReconnectChaos, RecoverableClient, RecoverableService, RecoveryConfig,
    ServiceConfig,
};
use evlin::spec::{FetchIncrement, Value};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const OBJECTS: usize = 8;
const CLIENTS: usize = 2;
const SHARDS: usize = 2;

fn usage() -> ! {
    eprintln!(
        "usage: recovery_demo run --dir DIR [--ops N] [--throttle-us N]\n\
         \x20      recovery_demo resume --dir DIR"
    );
    exit(2);
}

fn universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    for _ in 0..OBJECTS {
        u.add_object(FetchIncrement::new());
    }
    u
}

fn config(dir: &Path) -> RecoveryConfig {
    let mut config = RecoveryConfig::new(dir.to_path_buf(), CLIENTS);
    config.service = ServiceConfig {
        shards: SHARDS,
        monitor: MonitorConfig::for_condition(MonitorCondition::Linearizability),
        ..ServiceConfig::default()
    };
    config.heartbeat = Duration::from_millis(500);
    config
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("");
    let mut dir: Option<PathBuf> = None;
    let mut ops: usize = 2_000;
    let mut throttle_us: u64 = 0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" if i + 1 < args.len() => {
                dir = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--ops" if i + 1 < args.len() => {
                ops = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--throttle-us" if i + 1 < args.len() => {
                throttle_us = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| usage());

    match mode {
        "run" => run(dir, ops, throttle_us),
        "resume" => resume(dir),
        _ => usage(),
    }
}

fn run(dir: PathBuf, ops: usize, throttle_us: u64) {
    // A session id is never reused for a different stream: `run` needs a
    // directory with no journals in it (`resume` is the call for those).
    if let Ok(entries) = std::fs::read_dir(&dir) {
        let stale = entries
            .flatten()
            .any(|e| e.path().extension().and_then(|x| x.to_str()) == Some("evjl"));
        if stale {
            eprintln!(
                "{} already holds session journals; run `resume --dir` or pick a fresh dir",
                dir.display()
            );
            exit(2);
        }
    }
    let u = universe();
    let (addr, service) = RecoverableService::bind(&u, config(&dir)).expect("bind service");
    println!(
        "recoverable service on {addr}: {OBJECTS} objects, {SHARDS} shards, journals in {}",
        dir.display()
    );

    // Linearizable ground truth: one atomic counter per object, fetch-added
    // under a real race; the shared sequence counter orders the stream.
    let seq = Arc::new(AtomicU64::new(0));
    let counters: Arc<Vec<AtomicI64>> = Arc::new((0..OBJECTS).map(|_| AtomicI64::new(0)).collect());
    let producers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let seq = Arc::clone(&seq);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let mut client = RecoverableClient::connect_tcp(
                    addr,
                    c as u32,
                    0xD301 + c as u64, // fixed nonzero session ids, one per slot
                    seq,
                    ClientRecoveryConfig {
                        frame_capacity: 32,
                        chaos: Some(ReconnectChaos {
                            seed: 0xC0FFEE ^ c as u64,
                            split_per_mille: 200,
                            kill_after_min: 8,
                            kill_after_span: 24,
                        }),
                        ..ClientRecoveryConfig::standard(c as u64)
                    },
                )
                .expect("connect to service");
                let process = ProcessId(c);
                for i in 0..ops {
                    let object = ObjectId((c + i) % OBJECTS);
                    client.invoke(process, object, FetchIncrement::fetch_inc());
                    let old = counters[object.0].fetch_add(1, Ordering::SeqCst);
                    client.respond(process, object, Value::Int(old));
                    if throttle_us > 0 {
                        std::thread::sleep(Duration::from_micros(throttle_us));
                    }
                }
                client.finish().expect("client retry budget held")
            })
        })
        .collect();

    // Crash the replica pool twice while the producers stream: the
    // supervisor rebuilds it from the journals both times.
    for _ in 0..2 {
        std::thread::sleep(Duration::from_millis(
            20 + throttle_us * ops as u64 / 3 / 1_000,
        ));
        service.kill_and_restart().expect("pool restart");
    }

    let closed: Vec<_> = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread"))
        .collect();
    let report = service.finish();
    let client_reports: Vec<_> = closed.into_iter().map(|c| c.collect_verdicts()).collect();

    let expected = (CLIENTS * ops * 2) as u64;
    println!(
        "verdict: {:?} — {} events checked (recorded {expected}), {} pool restarts, \
         {} frames replayed, {} chain mismatches",
        report.verdict,
        report.events(),
        report.restarts,
        report.replayed_frames,
        report.replay_chain_mismatches,
    );
    for (c, (stats, session)) in client_reports
        .iter()
        .map(|r| &r.stats)
        .zip(&report.sessions)
        .enumerate()
    {
        println!(
            "  client {c}: {} frames ({} retransmitted), {} reconnects, {} overload rejections; \
             server resumed {} times, deduped {} frames",
            stats.frames,
            stats.retransmitted_frames,
            stats.reconnects,
            session.overloaded_rejections,
            session.resumes,
            session.duplicate_frames,
        );
    }
    assert!(report.verdict.is_ok(), "demo history is linearizable");
    assert_eq!(report.events(), expected, "exactly-once violated");
    assert_eq!(report.replay_chain_mismatches, 0, "replay diverged");
    println!(
        "RECOVERED OK: exactly-once through chaos and {} restarts",
        report.restarts
    );
}

fn resume(dir: PathBuf) {
    let u = universe();
    let (_, service) = RecoverableService::bind(&u, config(&dir)).expect("bind over journals");
    let report = service.finish();
    println!(
        "recovered {} sessions from {}: {} frames / {} events replayed, \
         {} chain mismatches, verdict on the surviving prefix: {:?}",
        report.recovered_at_startup,
        dir.display(),
        report.replayed_frames,
        report.replayed_events,
        report.replay_chain_mismatches,
        report.verdict,
    );
    assert!(
        report.recovered_at_startup > 0,
        "no session journals found in {}",
        dir.display()
    );
    assert!(report.replayed_frames > 0, "nothing survived to replay");
    assert_eq!(report.replay_chain_mismatches, 0, "replay diverged");
    assert_eq!(
        report.events(),
        report.replayed_events,
        "replayed events must all reach the monitor"
    );
    println!(
        "RECOVERED OK: {} frames replayed bit-faithfully",
        report.replayed_frames
    );
}
