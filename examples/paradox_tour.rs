//! A guided tour of the paper's paradox, end to end:
//!
//! 1. eventually linearizable objects are *weak*: the Theorem 12 local-copy
//!    argument shows they cannot implement a linearizable fetch&increment;
//! 2. eventually linearizable objects can be *trivial to build*: test&set and
//!    consensus get communication-free / register-only implementations;
//! 3. and yet for fetch&increment, eventual linearizability is *as hard as*
//!    linearizability: the Proposition 18 freeze turns an eventually
//!    linearizable implementation into a linearizable one.
//!
//! Run with `cargo run --release --example paradox_tour`.

use evlin::checker::{eventual, fi, linearizability};
use evlin::prelude::*;
use evlin::sim::explorer::{terminal_histories, ExploreOptions};
use evlin::sim::stability::{stable_to_linearizable, StabilityOptions};

fn main() {
    // -----------------------------------------------------------------
    // Act 1 — weakness (Theorem 12): replace the shared CAS of a correct
    // fetch&increment by per-process local copies (which is how eventually
    // linearizable base objects are allowed to behave forever in any finite
    // execution) and watch linearizability disappear.
    // -----------------------------------------------------------------
    println!("Act 1 — Theorem 12: eventually linearizable base objects are weak");
    let transformed = LocalCopy::new(CasFetchInc::new(2));
    let workload = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
    let mut universe = ObjectUniverse::new();
    universe.add_object(FetchIncrement::new());
    let histories = terminal_histories(&transformed, &workload, ExploreOptions::default());
    let broken = histories
        .iter()
        .filter(|h| !linearizability::is_linearizable(h, &universe))
        .count();
    println!(
        "  local-copy fetch&increment: {broken}/{} interleavings are NOT linearizable \
         (all remain weakly consistent)\n",
        histories.len()
    );
    assert!(broken > 0);

    // -----------------------------------------------------------------
    // Act 2 — cheapness (Section 4): an eventually linearizable test&set
    // with no shared memory, and consensus from registers (Proposition 16).
    // -----------------------------------------------------------------
    println!("Act 2 — eventual linearizability can be (almost) free");
    let tas = TestAndSetEv::new(2);
    let mut scheduler = RoundRobinScheduler::new();
    let out = run(
        &tas,
        &Workload::uniform(2, TestAndSet::test_and_set(), 1),
        &mut scheduler,
        1_000,
    );
    let mut tas_universe = ObjectUniverse::new();
    tas_universe.add_object(TestAndSet::new());
    let report = eventual::analyze(&out.history, &tas_universe);
    println!(
        "  test&set with no shared objects: linearizable = {}, eventually linearizable = {}",
        report.is_linearizable(),
        report.is_eventually_linearizable()
    );
    assert!(report.is_eventually_linearizable());

    let consensus = Prop16Consensus::new(2);
    let mut scheduler = SoloBurstScheduler::new(1);
    let out = run(
        &consensus,
        &Workload::one_shot(vec![
            Consensus::propose(Value::from(1i64)),
            Consensus::propose(Value::from(2i64)),
        ]),
        &mut scheduler,
        1_000,
    );
    let mut consensus_universe = ObjectUniverse::new();
    consensus_universe.add_object(Consensus::new());
    let report = eventual::analyze(&out.history, &consensus_universe);
    println!(
        "  consensus from registers (Prop 16): linearizable = {}, eventually linearizable = {}\n",
        report.is_linearizable(),
        report.is_eventually_linearizable()
    );

    // -----------------------------------------------------------------
    // Act 3 — the paradox (Proposition 18): an eventually linearizable
    // fetch&increment (stale responses during a warm-up) is frozen at a
    // stable configuration and becomes a fully linearizable implementation.
    // -----------------------------------------------------------------
    println!("Act 3 — Proposition 18: eventual linearizability is hard where it matters");
    let eventually_linearizable = NoisyPrefixFetchInc::new(2, 4);
    let mut scheduler = RoundRobinScheduler::new();
    let out = run(
        &eventually_linearizable,
        &Workload::uniform(2, FetchIncrement::fetch_inc(), 4),
        &mut scheduler,
        100_000,
    );
    println!(
        "  noisy-prefix fetch&increment: linearizable = {:?}, min stabilization = {:?}",
        fi::is_linearizable(&out.history, 0).unwrap(),
        fi::min_stabilization(&out.history, 0).unwrap(),
    );

    let freeze = stable_to_linearizable(
        &eventually_linearizable,
        2,
        4,
        0,
        &StabilityOptions::default(),
    )
    .expect("a stable configuration exists once the warm-up is over");
    println!(
        "  froze a stable configuration after {} events; offset v0 = {}",
        freeze.stabilization_index, freeze.offset
    );
    let mut scheduler = RandomScheduler::seeded(7);
    let out = run(
        &freeze.implementation,
        &Workload::uniform(2, FetchIncrement::fetch_inc(), 10),
        &mut scheduler,
        1_000_000,
    );
    let linearizable = fi::is_linearizable(&out.history, 0).unwrap();
    println!("  the frozen implementation A' is linearizable on a fresh run: {linearizable}");
    assert!(linearizable);

    println!(
        "\nThe paradox: the same base objects, the same algorithm, one change of initial \
         state — and the 'cheaper' eventually linearizable counter was a linearizable \
         counter all along."
    );
}
