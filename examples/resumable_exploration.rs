//! Resumable out-of-core exploration driver: survive `kill -9` mid-run.
//!
//! A 5-process local-copy fetch&increment is explored under the
//! `SleepSetSymmetry` reduction with a spill-to-disk visited store and a
//! small checkpoint interval.  The exploration state (frontier + stats +
//! store manifest) lives in `--dir`, so a process killed at any point —
//! including `SIGKILL`, which gives no chance to flush — resumes from the
//! last durable checkpoint and finishes with exactly the stats an
//! uninterrupted run would have produced.
//!
//! ```text
//! cargo run --release --example resumable_exploration -- run --dir /tmp/ck --throttle-us 500 &
//! sleep 2; kill -9 $!
//! cargo run --release --example resumable_exploration -- resume --dir /tmp/ck
//! ```
//!
//! `resume` re-runs the same exploration fully in memory as a reference and
//! prints `RESUME OK` only if the resumed on-disk run reproduced the
//! reference counts exactly.  The CI resume-smoke step drives exactly this
//! sequence.

use evlin::sim::checkpoint::{explore_checkpointed, CheckpointOptions};
use evlin::sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin::sim::program::LocalSpecImplementation;
use evlin::sim::store::StoreConfig;
use evlin::sim::workload::Workload;
use evlin::spec::{FetchIncrement, ObjectType};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

const PROCESSES: usize = 5;
const OPS_PER_PROCESS: usize = 2;

fn subject() -> (LocalSpecImplementation, Workload) {
    let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
    (
        LocalSpecImplementation::new(ty, PROCESSES),
        Workload::uniform(PROCESSES, FetchIncrement::fetch_inc(), OPS_PER_PROCESS),
    )
}

fn engine_options() -> EngineOptions {
    EngineOptions {
        limits: ExploreOptions {
            max_depth: PROCESSES * OPS_PER_PROCESS,
            max_configs: 10_000_000,
        },
        workers: Some(1),
        reduction: Reduction::SleepSetSymmetry,
        dedup: true,
        // A budget far below the visited-set size: full shards spill to
        // compressed sorted runs under `<dir>/store/`.
        store: StoreConfig::Spill {
            shards_log2: 3,
            shard_budget: 512,
        },
        ..EngineOptions::default()
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: resumable_exploration run --dir DIR [--throttle-us N]\n\
         \x20      resumable_exploration resume --dir DIR"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("");
    let mut dir: Option<PathBuf> = None;
    let mut throttle_us: u64 = 0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" if i + 1 < args.len() => {
                dir = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--throttle-us" if i + 1 < args.len() => {
                throttle_us = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| usage());
    let (implementation, workload) = subject();
    let options = engine_options();
    let ck = CheckpointOptions {
        interval_visits: 100,
        ..CheckpointOptions::new(&dir)
    };

    match mode {
        "run" => {
            let run = explore_checkpointed(&implementation, &workload, &options, &ck, |_, _| {
                if throttle_us > 0 {
                    std::thread::sleep(Duration::from_micros(throttle_us));
                }
                Visit::Continue
            })
            .expect("checkpointed exploration failed");
            println!(
                "run complete: visited={} terminals={} pruned={} spilled={}B \
                 checkpoints={} resumed={}",
                run.stats.visited,
                run.stats.terminals,
                run.stats.pruned,
                run.stats.store_bytes.spilled,
                run.checkpoints_written,
                run.resumed
            );
        }
        "resume" => {
            let run = explore_checkpointed(&implementation, &workload, &options, &ck, |_, _| {
                Visit::Continue
            })
            .expect("resume failed");
            println!(
                "resumed from checkpoint: resumed={} visited={} terminals={} pruned={}",
                run.resumed, run.stats.visited, run.stats.terminals, run.stats.pruned
            );

            // Independent in-memory reference run; the counts are a set
            // property and must match the resumed spill-backed run exactly.
            let reference = engine::explore(
                &implementation,
                &workload,
                &EngineOptions {
                    store: StoreConfig::Mem,
                    ..engine_options()
                },
                |_, _| Visit::Continue,
            );
            let resumed = (
                run.stats.visited,
                run.stats.terminals,
                run.stats.pruned,
                run.stats.truncated,
            );
            let expected = (
                reference.visited,
                reference.terminals,
                reference.pruned,
                reference.truncated,
            );
            if !run.completed || resumed != expected {
                eprintln!("RESUME MISMATCH: resumed {resumed:?} != reference {expected:?}");
                exit(1);
            }
            println!("RESUME OK");
        }
        _ => usage(),
    }
}
