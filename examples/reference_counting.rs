//! The introduction's motivating scenario: reference counting under
//! contention, with a linearizable and an eventually consistent counter.
//!
//! Run with `cargo run --release --example reference_counting`.

use evlin::checker::fi;
use evlin::prelude::*;
use evlin::runtime::{run_counter_workload, HarnessOptions};

fn measure(counter: &dyn ConcurrentCounter, threads: usize, ops: usize) {
    // Raw throughput, no recording.
    let raw = run_counter_workload(
        counter,
        HarnessOptions {
            threads,
            ops_per_thread: ops,
            record_history: false,
        },
    );
    println!(
        "  {:<18} {:>2} threads  {:>8.2} Mops/s   duplicates: {:>6}   max staleness: {:>6}   lost increments: {}",
        counter.name(),
        threads,
        raw.throughput / 1e6,
        raw.duplicate_responses,
        raw.max_staleness,
        raw.total_ops as i64 - raw.final_total,
    );
}

fn main() {
    let threads = 4;
    let ops = 100_000;
    println!("reference-counting workload: {threads} threads × {ops} increments\n");

    println!("throughput and staleness:");
    measure(&CasCounter::new(), threads, ops);
    measure(&FetchAddCounter::new(), threads, ops);
    measure(&ShardedCounter::new(threads, 64), threads, ops);

    // Now record smaller runs and connect them back to the paper's
    // definitions with the offline checkers.
    println!("\noffline consistency checks on recorded runs (4 threads × 2000 ops):");
    for (name, counter) in [
        (
            "cas-loop",
            Box::new(CasCounter::new()) as Box<dyn ConcurrentCounter>,
        ),
        ("fetch-add", Box::new(FetchAddCounter::new())),
        (
            "sharded-eventual",
            Box::new(ShardedCounter::new(threads, 64)),
        ),
    ] {
        let run = run_counter_workload(
            counter.as_ref(),
            HarnessOptions {
                threads,
                ops_per_thread: 2_000,
                record_history: true,
            },
        );
        let history = run.history.expect("recording enabled");
        let linearizable = fi::is_linearizable(&history, 0).unwrap();
        let stabilization = fi::min_stabilization(&history, 0).unwrap();
        println!(
            "  {:<18} linearizable: {:<5}   min stabilization t: {:>7} / {} events",
            name,
            linearizable,
            stabilization,
            history.len(),
        );
    }

    println!(
        "\nThe eventually consistent counter trades linearizability for throughput, \
         but every increment is eventually counted — the behaviour the paper's \
         introduction describes (and whose limits Sections 4–5 chart)."
    );
}
