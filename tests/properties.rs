//! Property-based tests (proptest) on the core invariants of the workspace.

use evlin::checker::{fi, linearizability, t_linearizability, weak_consistency};
use evlin::history::generator::{
    concurrentize, perturb_responses, random_sequential_legal, WorkloadSpec,
};
use evlin::history::legal;
use evlin::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u.add_object(Counter::new());
    u
}

fn fi_universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(FetchIncrement::new());
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomly generated legal sequential histories are sequential, legal,
    /// well-formed and linearizable.
    #[test]
    fn generated_sequential_histories_are_legal_and_linearizable(
        seed in 0u64..10_000,
        ops in 1usize..12,
        processes in 1usize..4,
    ) {
        let u = mixed_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_sequential_legal(&u, &WorkloadSpec { processes, operations: ops }, &mut rng);
        prop_assert!(h.is_sequential());
        prop_assert!(h.is_well_formed());
        prop_assert!(legal::is_legal_sequential(&h, &u));
        prop_assert!(linearizability::is_linearizable(&h, &u));
        prop_assert!(weak_consistency::is_weakly_consistent(&h, &u));
    }

    /// Concurrentized histories remain linearizable (the sequential original
    /// is a witness) and weakly consistent, and their minimal stabilization
    /// index is 0.
    #[test]
    fn concurrentized_histories_are_linearizable(
        seed in 0u64..10_000,
        ops in 1usize..10,
        overlap in 0usize..4,
    ) {
        let u = mixed_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let seq = random_sequential_legal(&u, &WorkloadSpec { processes: 3, operations: ops }, &mut rng);
        let conc = concurrentize(&seq, overlap, &mut rng);
        prop_assert!(conc.is_well_formed());
        prop_assert!(linearizability::is_linearizable(&conc, &u));
        prop_assert_eq!(t_linearizability::min_stabilization(&conc, &u, None), Some(0));
    }

    /// Lemma 5 (monotonicity) and Lemma 6 (prefix closure) of
    /// t-linearizability hold on arbitrary (possibly corrupted) histories.
    #[test]
    fn lemmas_5_and_6_on_random_histories(
        seed in 0u64..10_000,
        ops in 1usize..8,
        corruptions in 0usize..3,
    ) {
        let u = fi_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let seq = random_sequential_legal(&u, &WorkloadSpec { processes: 2, operations: ops }, &mut rng);
        let conc = concurrentize(&seq, 2, &mut rng);
        let (h, _) = perturb_responses(&conc, corruptions, &mut rng);
        if let Some(t0) = t_linearizability::min_stabilization(&h, &u, None) {
            // Monotone above t0 (sample a few values instead of all of them).
            for t in [t0, t0 + 1, h.len()] {
                prop_assert!(t_linearizability::is_t_linearizable(&h, &u, t));
            }
            if t0 > 0 {
                prop_assert!(!t_linearizability::is_t_linearizable(&h, &u, t0 - 1));
            }
            // Prefix closure at t0.
            for n in (0..h.len()).step_by(2) {
                prop_assert!(t_linearizability::is_t_linearizable(&h.prefix(n), &u, t0));
            }
        }
    }

    /// The specialized fetch&increment checker agrees with the generic one on
    /// arbitrary fetch&increment histories (both verdict and stabilization).
    #[test]
    fn fi_checker_matches_generic_checker(
        seed in 0u64..10_000,
        ops in 1usize..7,
        corruptions in 0usize..3,
    ) {
        let u = fi_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let seq = random_sequential_legal(&u, &WorkloadSpec { processes: 3, operations: ops }, &mut rng);
        let conc = concurrentize(&seq, 2, &mut rng);
        let (h, _) = perturb_responses(&conc, corruptions, &mut rng);
        // Skip histories whose corrupted responses are not integers (cannot
        // happen for fetch&inc perturbation, which only writes integers).
        let generic_lin = linearizability::is_linearizable(&h, &u);
        let fast_lin = fi::is_linearizable(&h, 0).unwrap();
        prop_assert_eq!(generic_lin, fast_lin);
        let generic_t = t_linearizability::min_stabilization(&h, &u, None);
        let fast_t = fi::min_stabilization(&h, 0).ok();
        prop_assert_eq!(generic_t, fast_t);
    }

    /// Weak consistency is prefix-closed (Lemma 10) on generated histories.
    #[test]
    fn weak_consistency_prefix_closed(
        seed in 0u64..10_000,
        ops in 1usize..8,
    ) {
        let u = mixed_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let seq = random_sequential_legal(&u, &WorkloadSpec { processes: 2, operations: ops }, &mut rng);
        let conc = concurrentize(&seq, 2, &mut rng);
        if weak_consistency::is_weakly_consistent(&conc, &u) {
            for n in 0..conc.len() {
                prop_assert!(weak_consistency::is_weakly_consistent(&conc.prefix(n), &u));
            }
        }
    }

    /// Every history produced by the Proposition 16 consensus algorithm under
    /// a random schedule is weakly consistent and eventually linearizable.
    #[test]
    fn prop16_histories_are_eventually_linearizable(
        seed in 0u64..5_000,
        n in 2usize..5,
    ) {
        let mut u = ObjectUniverse::new();
        u.add_object(Consensus::new());
        let imp = Prop16Consensus::new(n);
        let w = Workload::one_shot(
            (0..n).map(|i| Consensus::propose(Value::from(i as i64))).collect(),
        );
        let mut s = RandomScheduler::seeded(seed);
        let out = run(&imp, &w, &mut s, 100_000);
        prop_assert!(out.completed_all);
        prop_assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
        prop_assert!(evlin::checker::eventual::is_eventually_linearizable(&out.history, &u));
    }

    /// The CAS-loop fetch&increment is linearizable under random schedules
    /// and workload shapes.
    #[test]
    fn cas_fetch_inc_linearizable_under_random_schedules(
        seed in 0u64..5_000,
        ops in 1usize..6,
        processes in 1usize..4,
    ) {
        let imp = CasFetchInc::new(processes);
        let w = Workload::uniform(processes, FetchIncrement::fetch_inc(), ops);
        let mut s = RandomScheduler::seeded(seed);
        let out = run(&imp, &w, &mut s, 1_000_000);
        prop_assert!(out.completed_all);
        prop_assert_eq!(fi::is_linearizable(&out.history, 0), Ok(true));
    }

    /// Projection identities: |H|p| summed over processes equals |H|, and the
    /// object projections partition the events.
    #[test]
    fn projection_partition_identities(
        seed in 0u64..10_000,
        ops in 1usize..12,
    ) {
        let u = mixed_universe();
        let mut rng = StdRng::seed_from_u64(seed);
        let seq = random_sequential_legal(&u, &WorkloadSpec { processes: 3, operations: ops }, &mut rng);
        let conc = concurrentize(&seq, 3, &mut rng);
        let by_process: usize = conc
            .processes()
            .into_iter()
            .map(|p| conc.project_process(p).len())
            .sum();
        prop_assert_eq!(by_process, conc.len());
        let by_object: usize = conc
            .objects()
            .into_iter()
            .map(|o| conc.project_object(o).len())
            .sum();
        prop_assert_eq!(by_object, conc.len());
    }
}
