//! Failure-injection and adversarial-schedule integration tests: crashes,
//! solo bursts and starvation-style schedules against the paper's algorithms.

use evlin::algorithms::UniversalConstruction;
use evlin::checker::{eventual, fi, linearizability, weak_consistency};
use evlin::prelude::*;
use evlin::sim::scheduler::Scheduler;
use std::sync::Arc;

/// Wait-freedom of the Proposition 16 consensus: even if every other process
/// crashes mid-operation, the surviving process finishes and the resulting
/// history is eventually linearizable.
#[test]
fn prop16_survives_crashes_of_all_but_one_process() {
    let n = 4;
    let imp = Prop16Consensus::new(n);
    let w = Workload::one_shot(
        (0..n)
            .map(|i| Consensus::propose(Value::from(i as i64)))
            .collect(),
    );
    let mut u = ObjectUniverse::new();
    u.add_object(Consensus::new());

    // Let everyone take a couple of steps, then crash processes 1..n.
    let mut config = evlin::sim::config::Config::initial(&imp, &w);
    let mut warmup = RoundRobinScheduler::new();
    for _ in 0..2 * n {
        if let Some(p) = warmup.next(&config) {
            config.step(p);
        }
    }
    let mut scheduler = CrashScheduler::new(RoundRobinScheduler::new());
    for i in 1..n {
        scheduler.crash(ProcessId(i));
    }
    let out = evlin::sim::runner::run_from(config, &w, &mut scheduler, 10_000);
    // The surviving process completed every one of its operations.
    assert_eq!(out.config.completed(ProcessId(0)), 1);
    // Its (partial) history is still weakly consistent and eventually
    // linearizable — crashes only leave pending operations behind.
    assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
    assert!(eventual::is_eventually_linearizable(&out.history, &u));
}

/// The CAS-loop fetch&increment is lock-free: under a starvation-prone
/// solo-burst schedule every operation still completes, and the history is
/// linearizable.
#[test]
fn cas_fetch_inc_is_lock_free_under_solo_bursts() {
    for burst in [1usize, 2, 3, 5] {
        let imp = CasFetchInc::new(3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 5);
        let mut s = SoloBurstScheduler::new(burst);
        let out = run(&imp, &w, &mut s, 1_000_000);
        assert!(out.completed_all, "burst {burst}");
        assert_eq!(
            fi::is_linearizable(&out.history, 0),
            Ok(true),
            "burst {burst}"
        );
    }
}

/// Crashing a process mid-operation of the CAS fetch&increment leaves a
/// pending operation that the checker must be able to account for (the
/// pending increment may or may not have taken effect).
#[test]
fn crashed_fetch_inc_operations_are_handled_as_pending() {
    let imp = CasFetchInc::new(2);
    let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 3);
    let mut config = evlin::sim::config::Config::initial(&imp, &w);
    // p1 performs its read and CAS but crashes before reporting the response.
    config.step(ProcessId(1));
    config.step(ProcessId(1));
    let mut scheduler = CrashScheduler::new(RoundRobinScheduler::new());
    scheduler.crash(ProcessId(1));
    let out = evlin::sim::runner::run_from(config, &w, &mut scheduler, 10_000);
    assert_eq!(out.config.completed(ProcessId(0)), 3);
    let history = out.history;
    assert_eq!(history.pending_operations().len(), 1);
    // p0's responses skip the slot consumed by the crashed operation, and the
    // history is still linearizable because the pending operation fills it.
    assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
}

/// The universal construction stays linearizable under crashes of a minority
/// of processes (lock-freedom means the crash only removes that process's
/// remaining operations).
#[test]
fn universal_construction_tolerates_crashes() {
    let ty: Arc<dyn evlin::spec::ObjectType> = Arc::new(FetchIncrement::new());
    let imp = UniversalConstruction::new(ty.clone(), 3, 32);
    let mut u = ObjectUniverse::new();
    u.add_shared(ty, Value::from(0i64));
    let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);

    let mut config = evlin::sim::config::Config::initial(&imp, &w);
    let mut warmup = RoundRobinScheduler::new();
    for _ in 0..5 {
        if let Some(p) = warmup.next(&config) {
            config.step(p);
        }
    }
    let mut scheduler = CrashScheduler::new(RoundRobinScheduler::new());
    scheduler.crash(ProcessId(2));
    let out = evlin::sim::runner::run_from(config, &w, &mut scheduler, 100_000);
    assert_eq!(out.config.completed(ProcessId(0)), 2);
    assert_eq!(out.config.completed(ProcessId(1)), 2);
    assert!(linearizability::is_linearizable(&out.history, &u));
}

/// The eventually consistent gossip counter run under several different
/// adversarial schedules stays weakly consistent (its defect is the liveness
/// of stabilization, never safety).
#[test]
fn gossip_counter_is_weakly_consistent_under_every_schedule_tried() {
    let imp = GossipFetchInc::new(3);
    let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
    let mut u = ObjectUniverse::new();
    u.add_object(FetchIncrement::new());

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RoundRobinScheduler::new()),
        Box::new(SoloBurstScheduler::new(4)),
    ];
    for seed in 0..5 {
        schedulers.push(Box::new(RandomScheduler::seeded(seed)));
    }
    for mut s in schedulers {
        let out = run(&imp, &w, s.as_mut(), 1_000_000);
        assert!(out.completed_all);
        assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
    }
}
