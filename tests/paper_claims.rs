//! Integration tests: one test per claim of the paper, exercised through the
//! public API of the `evlin` facade crate.

use evlin::checker::{eventual, fi, linearizability, t_linearizability, weak_consistency};
use evlin::prelude::*;
use evlin::sim::explorer::{terminal_histories, ExploreOptions};
use evlin::sim::stability::{stable_to_linearizable, StabilityOptions};
use evlin::sim::valency::{bivalence_walk, check_consensus, WalkEnd};
use evlin::spec::trivial;

fn fi_universe() -> (ObjectUniverse, ObjectId) {
    let mut u = ObjectUniverse::new();
    let x = u.add_object(FetchIncrement::new());
    (u, x)
}

/// Lemma 5: `t`-linearizability is monotone in `t`.
#[test]
fn lemma_5_monotonicity() {
    let (u, x) = fi_universe();
    let h = HistoryBuilder::new()
        .complete(
            ProcessId(0),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        )
        .complete(
            ProcessId(1),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        )
        .complete(
            ProcessId(0),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(1i64),
        )
        .build();
    let t0 = t_linearizability::min_stabilization(&h, &u, None).unwrap();
    for t in 0..=h.len() {
        assert_eq!(t_linearizability::is_t_linearizable(&h, &u, t), t >= t0);
    }
}

/// Lemma 6: every prefix of a `t`-linearizable history is `t`-linearizable.
#[test]
fn lemma_6_prefix_closure() {
    let (u, x) = fi_universe();
    let mut b = HistoryBuilder::new();
    for k in 0..5i64 {
        b = b
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(2 * k),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(2 * k + 1),
            );
    }
    let h = b.build();
    let t = 4;
    assert!(t_linearizability::is_t_linearizable(&h, &u, t));
    for n in 0..h.len() {
        assert!(t_linearizability::is_t_linearizable(&h.prefix(n), &u, t));
    }
}

/// Lemmas 7–9: locality of stabilization and weak consistency for finitely
/// many objects.
#[test]
fn lemmas_7_to_9_locality() {
    let mut u = ObjectUniverse::new();
    let r = u.add_object(Register::new(Value::from(0i64)));
    let x = u.add_object(FetchIncrement::new());
    let h = HistoryBuilder::new()
        .complete(
            ProcessId(0),
            r,
            Register::write(Value::from(1i64)),
            Value::Unit,
        )
        .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
        .complete(
            ProcessId(0),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        )
        .complete(
            ProcessId(1),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(1i64),
        )
        .build();
    // Weak consistency is local (Lemma 8 / Proposition 9).
    assert_eq!(
        weak_consistency::is_weakly_consistent(&h, &u),
        evlin::checker::locality::all_projections_weakly_consistent(&h, &u)
    );
    // The composed per-object stabilization bound really stabilizes the
    // global history (Lemma 7).
    let composed = evlin::checker::locality::composed_stabilization(&h, &u).unwrap();
    assert!(t_linearizability::is_t_linearizable(&h, &u, composed));
}

/// Lemma 10: weak consistency is prefix-closed (the finite part of being a
/// safety property).
#[test]
fn lemma_10_weak_consistency_prefix_closed() {
    let (u, x) = fi_universe();
    let mut b = HistoryBuilder::new();
    for k in 0..4i64 {
        b = b
            .complete(ProcessId(0), x, FetchIncrement::fetch_inc(), Value::from(k))
            .complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(k));
    }
    let h = b.build();
    assert!(weak_consistency::is_weakly_consistent(&h, &u));
    for n in 0..=h.len() {
        assert!(weak_consistency::is_weakly_consistent(&h.prefix(n), &u));
    }
}

/// Proposition 11: the Figure 1 wrapper adds weak consistency to a
/// liveness-only implementation (smoke version; E9 covers it in detail).
#[test]
fn proposition_11_wrapper() {
    use evlin::algorithms::fig1::Fig1Wrapper;
    use std::sync::Arc;
    let (u, _) = fi_universe();
    let wrapped = Fig1Wrapper::new(CasFetchInc::new(2), Arc::new(FetchIncrement::new()), 2);
    let mut s = RandomScheduler::seeded(11);
    let out = run(
        &wrapped,
        &Workload::uniform(2, FetchIncrement::fetch_inc(), 3),
        &mut s,
        100_000,
    );
    assert!(out.completed_all);
    assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
    assert!(linearizability::is_linearizable(&out.history, &u));
}

/// Theorem 12 / Proposition 14: the local-copy transformation preserves
/// linearizability exactly for trivial types.
#[test]
fn theorem_12_and_proposition_14() {
    use evlin::sim::program::LocalSpecImplementation;
    use std::sync::Arc;

    // Non-trivial type: fetch&increment loses linearizability.
    let (u, _) = fi_universe();
    let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
    let histories = terminal_histories(
        &imp,
        &Workload::uniform(2, FetchIncrement::fetch_inc(), 1),
        ExploreOptions::default(),
    );
    assert!(histories
        .iter()
        .any(|h| !linearizability::is_linearizable(h, &u)));
    assert!(histories
        .iter()
        .all(|h| weak_consistency::is_weakly_consistent(h, &u)));
    assert!(!trivial::analyze(&FetchIncrement::new(), 64).is_trivial());

    // Trivial type: the sticky gate stays linearizable with no communication.
    let gate = trivial::StickyGate::new();
    assert!(trivial::analyze(&gate, 64).is_trivial());
    let mut gate_universe = ObjectUniverse::new();
    gate_universe.add_object(trivial::StickyGate::new());
    let imp = LocalSpecImplementation::new(Arc::new(trivial::StickyGate::new()), 2);
    let histories = terminal_histories(
        &imp,
        &Workload::uniform(2, trivial::StickyGate::knock(), 2),
        ExploreOptions::default(),
    );
    assert!(histories
        .iter()
        .all(|h| linearizability::is_linearizable(h, &gate_universe)));
}

/// Proposition 15: a consensus-power base object lets the bivalence walk end
/// at a critical configuration; exhaustive checks confirm agreement.
#[test]
fn proposition_15_valency() {
    let cas = CasConsensusSim::new(2);
    let proposals = [Value::from(0i64), Value::from(1i64)];
    let check = check_consensus(&cas, &proposals, ExploreOptions::default());
    assert!(check.is_correct());
    let walk = bivalence_walk(&cas, &proposals, 20, 60_000, 16);
    assert_eq!(walk.ended, WalkEnd::CriticalConfiguration);

    // The register-only Prop 16 algorithm is *not* a correct consensus
    // object (it is only eventually linearizable): exhaustive checking finds
    // an agreement violation.
    let registers = Prop16Consensus::new(2);
    let check = check_consensus(&registers, &proposals, ExploreOptions::default());
    assert!(check.agreement_violation.is_some());
}

/// Proposition 16: consensus from registers is wait-free and eventually
/// linearizable under every explored schedule.
#[test]
fn proposition_16_consensus() {
    let mut u = ObjectUniverse::new();
    u.add_object(Consensus::new());
    let imp = Prop16Consensus::new(3);
    let w = Workload::one_shot(vec![
        Consensus::propose(Value::from(1i64)),
        Consensus::propose(Value::from(2i64)),
        Consensus::propose(Value::from(3i64)),
    ]);
    for seed in 0..15u64 {
        let mut s = RandomScheduler::seeded(seed);
        let out = run(&imp, &w, &mut s, 100_000);
        assert!(out.completed_all);
        assert!(eventual::is_eventually_linearizable(&out.history, &u));
    }
}

/// Section 4: the trivial eventually linearizable test&set.
#[test]
fn section_4_test_and_set() {
    let mut u = ObjectUniverse::new();
    u.add_object(TestAndSet::new());
    let imp = TestAndSetEv::new(3);
    let histories = terminal_histories(
        &imp,
        &Workload::uniform(3, TestAndSet::test_and_set(), 1),
        ExploreOptions::default(),
    );
    assert!(!histories.is_empty());
    assert!(histories
        .iter()
        .all(|h| eventual::is_eventually_linearizable(h, &u)));
    assert!(histories
        .iter()
        .any(|h| !linearizability::is_linearizable(h, &u)));
}

/// Lemma 17 + Proposition 18: freezing an eventually linearizable
/// fetch&increment yields a linearizable one.
#[test]
fn proposition_18_freeze() {
    let imp = NoisyPrefixFetchInc::new(2, 3);
    let freeze = stable_to_linearizable(&imp, 2, 3, 0, &StabilityOptions::default())
        .expect("stable configuration exists after the warm-up");
    assert!(freeze.offset >= 1);
    for seed in 0..10u64 {
        let mut s = RandomScheduler::seeded(seed);
        let out = run(
            &freeze.implementation,
            &Workload::uniform(2, FetchIncrement::fetch_inc(), 8),
            &mut s,
            1_000_000,
        );
        assert!(out.completed_all);
        assert_eq!(
            fi::is_linearizable(&out.history, 0),
            Ok(true),
            "seed {seed}"
        );
    }
}

/// Corollary 19: the register-only fetch&increment never stabilizes — its
/// minimal stabilization index keeps up with the history length.
#[test]
fn corollary_19_gossip_never_stabilizes() {
    let imp = GossipFetchInc::new(2);
    let mut last_ratio = 0.0f64;
    for ops in [4usize, 8, 16] {
        let mut s = RoundRobinScheduler::new();
        let out = run(
            &imp,
            &Workload::uniform(2, FetchIncrement::fetch_inc(), ops),
            &mut s,
            1_000_000,
        );
        let t = fi::min_stabilization(&out.history, 0).unwrap();
        let ratio = t as f64 / out.history.len() as f64;
        assert!(
            ratio > 0.4,
            "stabilization must chase the end of the history"
        );
        last_ratio = ratio;
    }
    assert!(last_ratio > 0.4);
}
