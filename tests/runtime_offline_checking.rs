//! Integration tests spanning `evlin-runtime` (real threads) and
//! `evlin-checker` (offline analysis of the recorded histories).

use evlin::checker::fi;
use evlin::prelude::*;
use evlin::runtime::consensus::{CasConsensus, ConcurrentConsensus, RegisterConsensus};
use evlin::runtime::{run_counter_workload, HarnessOptions};
use std::collections::BTreeSet;

#[test]
fn linearizable_counters_pass_offline_checks() {
    for counter in [
        Box::new(CasCounter::new()) as Box<dyn ConcurrentCounter>,
        Box::new(FetchAddCounter::new()),
    ] {
        let run = run_counter_workload(
            counter.as_ref(),
            HarnessOptions {
                threads: 4,
                ops_per_thread: 1_000,
                record_history: true,
            },
        );
        assert_eq!(run.final_total, 4_000);
        assert!(run.responses_distinct());
        let history = run.history.expect("recording enabled");
        assert!(history.is_well_formed());
        assert_eq!(history.complete_operations().len(), 4_000);
        assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
        assert_eq!(fi::min_stabilization(&history, 0), Ok(0));
    }
}

#[test]
fn eventually_consistent_counter_converges_and_its_history_is_analyzable() {
    let counter = ShardedCounter::new(4, 32);
    let run = run_counter_workload(
        &counter,
        HarnessOptions {
            threads: 4,
            ops_per_thread: 2_000,
            record_history: true,
        },
    );
    // Convergence: no increment is ever lost.
    assert_eq!(run.final_total, 8_000);
    let history = run.history.expect("recording enabled");
    assert!(history.is_well_formed());
    // The minimal stabilization index exists (finite history) and the
    // specialized checker handles the full 16k-event history.
    let t = fi::min_stabilization(&history, 0).unwrap();
    assert!(t <= history.len());
}

#[test]
fn recorded_real_time_order_is_respected_by_the_checker() {
    // A sanity check that the recorder's sequence numbers give a usable
    // real-time order: a single-threaded run must be linearizable with
    // responses 0, 1, 2, …
    let counter = CasCounter::new();
    let run = run_counter_workload(
        &counter,
        HarnessOptions {
            threads: 1,
            ops_per_thread: 500,
            record_history: true,
        },
    );
    let history = run.history.expect("recording enabled");
    let responses: Vec<i64> = history
        .complete_operations()
        .iter()
        .map(|op| op.response.clone().unwrap().as_int().unwrap())
        .collect();
    assert_eq!(responses, (0..500).collect::<Vec<_>>());
    assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
}

#[test]
fn cas_consensus_threads_always_agree() {
    for round in 0..20 {
        let consensus = CasConsensus::new();
        let proposals: Vec<i64> = (0..4).map(|i| (round * 10 + i) as i64 + 1).collect();
        let results: Vec<std::sync::Mutex<i64>> =
            proposals.iter().map(|_| std::sync::Mutex::new(0)).collect();
        propose_concurrently(&consensus, &proposals, &results);
        let decided: BTreeSet<i64> = results.iter().map(|m| *m.lock().unwrap()).collect();
        assert_eq!(decided.len(), 1, "agreement violated: {decided:?}");
        assert!(proposals.contains(decided.iter().next().unwrap()));
    }
}

/// Runs one propose per thread and stores each thread's decision.
fn propose_concurrently(
    consensus: &dyn ConcurrentConsensus,
    proposals: &[i64],
    results: &[std::sync::Mutex<i64>],
) {
    std::thread::scope(|s| {
        for (t, &p) in proposals.iter().enumerate() {
            let results = &results;
            s.spawn(move || {
                *results[t].lock().unwrap() = consensus.propose(t, p);
            });
        }
    });
}

#[test]
fn register_consensus_is_valid_and_eventually_agrees_after_quiescence() {
    let consensus = RegisterConsensus::new(4);
    let proposals = [11i64, 22, 33, 44];
    let results: Vec<std::sync::Mutex<i64>> =
        proposals.iter().map(|_| std::sync::Mutex::new(0)).collect();
    propose_concurrently(&consensus, &proposals, &results);
    let decided: Vec<i64> = results.iter().map(|m| *m.lock().unwrap()).collect();
    // Validity: every decision is someone's proposal.
    for d in &decided {
        assert!(proposals.contains(d));
    }
    // Quiescent stabilization: once every announcement is visible, all later
    // proposals adopt the same (leftmost) value — the operational face of the
    // eventual linearizability of Proposition 16.
    let late_a = consensus.propose(0, 99);
    let late_b = consensus.propose(3, 77);
    assert_eq!(late_a, late_b);
}
