//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Benches in this workspace are authored against the criterion 0.5 API
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`).  The build environment
//! has no registry access, so this crate reimplements that surface as a
//! small but honest timing harness: each benchmark is warmed up, then timed
//! over enough iterations to fill a fixed measurement window, and the mean
//! per-iteration time (plus throughput, when declared) is printed.
//!
//! There is no statistical analysis, HTML report or comparison baseline —
//! swap in the real criterion dependency for that.  Timings printed by this
//! shim are still directly comparable within one run, which is what the
//! experiments need (e.g. sequential vs parallel checker batches).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (criterion API).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput declaration for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state (criterion API subset).
pub struct Criterion {
    measurement_window: Duration,
    warm_up_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
            warm_up_iters: 1,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let report = run_one(self, f);
        print_report(name, &report, None);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, f: F) -> Report {
        run_one(self, f)
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Requests a criterion sample count (accepted for API compatibility;
    /// this shim sizes iteration counts by wall-clock window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = self.criterion.run(|b| f(b, input));
        print_report(&format!("{}/{}", self.name, id), &report, self.throughput);
        self
    }

    /// Benchmarks `f` under the group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let report = self.criterion.run(f);
        print_report(&format!("{}/{}", self.name, id), &report, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

struct Report {
    iters: u64,
    elapsed: Duration,
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, mut f: F) -> Report {
    // Warm-up pass: also measures a first per-iteration estimate.
    let mut b = Bencher {
        iters: criterion.warm_up_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = (b.elapsed / criterion.warm_up_iters as u32).max(Duration::from_nanos(1));
    // Size the measurement run to roughly fill the window.
    let iters =
        (criterion.measurement_window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    Report {
        iters,
        elapsed: b.elapsed,
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<Throughput>) {
    let mean = report.elapsed.as_secs_f64() / report.iters as f64;
    let mean_txt = if mean < 1e-6 {
        format!("{:.1} ns", mean * 1e9)
    } else if mean < 1e-3 {
        format!("{:.2} µs", mean * 1e6)
    } else {
        format!("{:.3} ms", mean * 1e3)
    };
    let rate_txt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.0} B/s)", n as f64 / mean)
        }
        None => String::new(),
    };
    println!(
        "bench {name:<55} {mean_txt:>12}/iter over {} iters{rate_txt}",
        report.iters
    );
}

/// Declares a named group of benchmark functions (criterion API).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups (criterion API).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; accept and
            // ignore them. `--test` means "smoke-run": still fine to run,
            // benches here are sized in hundreds of milliseconds.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            measurement_window: Duration::from_millis(5),
            warm_up_iters: 1,
        };
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
