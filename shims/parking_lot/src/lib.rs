//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! Provides `Mutex`/`RwLock` with parking_lot's non-poisoning API, backed by
//! `std::sync`.  A poisoned std lock simply yields its inner guard (the data
//! is still accessible and the workspace treats a panicked critical section
//! as a test failure anyway).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison (parking_lot API subset).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock that does not poison (parking_lot API subset).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
