//! Offline stand-in for the crates.io `rayon` crate.
//!
//! The build environment has no registry access, so the subset of the rayon
//! API used by the workspace is reimplemented on `std::thread::scope`:
//!
//! * [`prelude::IntoParallelIterator::into_par_iter`] /
//!   [`prelude::IntoParallelRefIterator::par_iter`] producing a [`ParIter`]
//!   with `map` / `filter` / `for_each` / `collect` / `count` / `sum`;
//! * [`join`] and [`current_num_threads`].
//!
//! Scheduling is dynamic: worker threads repeatedly *steal* the next pending
//! item from a shared queue, so imbalanced workloads (e.g. exploration
//! subtrees of very different sizes) still keep all cores busy.  This is
//! coarser than real rayon's per-worker deques with randomized stealing, but
//! has the same load-balancing behaviour for the item counts used here.
//!
//! Thread count defaults to `std::thread::available_parallelism` and can be
//! overridden with the `RAYON_NUM_THREADS` environment variable (same
//! variable the real rayon honours), which is also how the test suite forces
//! multi-threaded execution on single-core CI machines.

#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// A parallel iterator: a vector of base items plus the composed per-item
/// transformation (filter-map) built up by `map`/`filter` calls.
pub struct ParIter<'env, B, I> {
    items: Vec<B>,
    f: Box<dyn Fn(B) -> Option<I> + Sync + Send + 'env>,
}

impl<'env, B, I> ParIter<'env, B, I>
where
    B: Send + 'env,
    I: Send + 'env,
{
    /// Applies `g` to every item.
    pub fn map<U, G>(self, g: G) -> ParIter<'env, B, U>
    where
        U: Send + 'env,
        G: Fn(I) -> U + Sync + Send + 'env,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: Box::new(move |b| f(b).map(&g)),
        }
    }

    /// Keeps only items satisfying `pred`.
    pub fn filter<G>(self, pred: G) -> ParIter<'env, B, I>
    where
        G: Fn(&I) -> bool + Sync + Send + 'env,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: Box::new(move |b| f(b).filter(|i| pred(i))),
        }
    }

    /// Applies `g` to every item, discarding results.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(I) + Sync + Send + 'env,
    {
        let f = self.f;
        let h: Box<dyn Fn(B) -> Option<()> + Sync + Send + 'env> = Box::new(move |b| {
            if let Some(i) = f(b) {
                g(i);
            }
            Some(())
        });
        drive(self.items, &h);
    }

    /// Evaluates the iterator in parallel, preserving item order.
    fn run(self) -> Vec<I> {
        drive(self.items, &self.f)
    }

    /// Collects the results (in the original item order).
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Number of items surviving the filters.
    pub fn count(self) -> usize {
        self.run().len()
    }

    /// Sum of the produced items.
    pub fn sum<S: std::iter::Sum<I>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Reduces the produced items with `op` starting from `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I
    where
        ID: Fn() -> I + Sync + Send,
        OP: Fn(I, I) -> I + Sync + Send,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// The shared work queue driver: workers steal the next `(index, item)` pair
/// until the queue drains, then results are merged back into item order.
fn drive<'env, B, I>(items: Vec<B>, f: &(dyn Fn(B) -> Option<I> + Sync + Send + 'env)) -> Vec<I>
where
    B: Send,
    I: Send,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().filter_map(f).collect();
    }
    // The queue is popped from the back; reverse so stealing proceeds in
    // submission order (earlier items first), which keeps long-running heads
    // from being scheduled last.
    let mut indexed: Vec<(usize, B)> = items.into_iter().enumerate().collect();
    indexed.reverse();
    let queue = Mutex::new(indexed);
    let mut merged: Vec<(usize, I)> = Vec::new();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let next = queue.lock().unwrap_or_else(|p| p.into_inner()).pop();
                        match next {
                            Some((i, b)) => {
                                if let Some(v) = f(b) {
                                    local.push((i, v));
                                }
                            }
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(local) => merged.extend(local),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    merged.sort_by_key(|(i, _)| *i);
    merged.into_iter().map(|(_, v)| v).collect()
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator<'env> {
    /// The produced item type.
    type Item: Send + 'env;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<'env, Self::Item, Self::Item>;
}

impl<'env, T: Send + 'env> IntoParallelIterator<'env> for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<'env, T, T> {
        ParIter {
            items: self,
            f: Box::new(Some),
        }
    }
}

impl<'env> IntoParallelIterator<'env> for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<'env, usize, usize> {
        ParIter {
            items: self.collect(),
            f: Box::new(Some),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'env> {
    /// The reference item type.
    type Item: Send + 'env;

    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&'env self) -> ParIter<'env, Self::Item, Self::Item>;
}

impl<'env, T: Sync + 'env> IntoParallelRefIterator<'env> for [T] {
    type Item = &'env T;

    fn par_iter(&'env self) -> ParIter<'env, &'env T, &'env T> {
        ParIter {
            items: self.iter().collect(),
            f: Box::new(Some),
        }
    }
}

impl<'env, T: Sync + 'env> IntoParallelRefIterator<'env> for Vec<T> {
    type Item = &'env T;

    fn par_iter(&'env self) -> ParIter<'env, &'env T, &'env T> {
        ParIter {
            items: self.iter().collect(),
            f: Box::new(Some),
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_filter_count() {
        let n = (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .count();
        assert_eq!(n, 34);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..257).collect();
        v.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!((a, b.as_str()), (2, "xxx"));
    }

    #[test]
    fn honors_env_thread_override() {
        // Just exercises the parsing path; the actual thread count is
        // whatever the environment says at test time.
        assert!(super::current_num_threads() >= 1);
    }
}
