//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Supports the subset of the proptest 1.x authoring surface used by this
//! workspace: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `x in strategy` bindings over integer
//! ranges, [`any`], `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` assertions.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! inputs are drawn from a deterministic PRNG seeded from the test's name and
//! case index, so every run of a given binary explores the same cases and a
//! failure message always reports the exact inputs that triggered it.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};
use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy producing uniform values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Standard + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// A strategy producing vectors whose length is drawn from `size`
        /// and whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Derives the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Asserts a condition inside a property (reports the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @munch ($cfg) $($rest)* }
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {} of {} failed with inputs: {:?}",
                        case,
                        stringify!($name),
                        ($(&$arg,)*)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest! { @munch ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @munch ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(a in 3usize..9, b in -2i64..=2) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..=2).contains(&b));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..5, 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let mut a = super::case_rng("t", 1);
        let mut b = super::case_rng("t", 1);
        let mut c = super::case_rng("t", 2);
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        let _ = c.gen_range(0u64..1000);
    }
}
