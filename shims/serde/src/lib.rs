//! Offline stand-in for the crates.io `serde` crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker on
//! plain data types; nothing actually serializes values (there is no
//! `serde_json` in the tree).  Since the build environment has no registry
//! access, this proc-macro crate provides the two derives as no-ops so that
//! the annotations compile unchanged.  If real serialization is ever needed,
//! replace this shim with the genuine `serde` dependency.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
