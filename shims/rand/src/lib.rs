//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment of this repository has no registry access, so the
//! subset of the `rand 0.8` API used by the workspace is reimplemented here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen_range` / `gen_bool` / `gen`, and [`seq::SliceRandom`]'s
//! `choose` / `shuffle`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a deterministic,
//! high-quality, non-cryptographic PRNG.  Streams are *not* bit-compatible
//! with the real `rand` crate, but every consumer in this workspace only
//! relies on seed-determinism, which this crate provides: the same seed
//! always yields the same stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64` (subset of `rand`'s trait).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples a value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Values that can be generated uniformly by [`Rng::gen`] (subset of the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Generates a uniform value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension methods available on every [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::generate(self) < p
    }

    /// Generates a uniform value of type `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
