//! # evlin — eventual linearizability in shared memory
//!
//! An executable reproduction of Guerraoui & Ruppert, *"A Paradox of Eventual
//! Linearizability in Shared Memory"* (PODC 2014).
//!
//! The paper compares the computational power of linearizable and eventually
//! linearizable shared objects and finds a paradox: eventually linearizable
//! objects are too weak to implement any non-trivial linearizable object or
//! to boost the power of registers, yet for objects like fetch&increment an
//! eventually linearizable implementation is already (after a change of
//! initial state) a fully linearizable one.
//!
//! This crate is a facade over the workspace:
//!
//! * [`spec`] — sequential specifications of object types;
//! * [`history`] — events, operations, histories and their projections;
//! * [`checker`] — decision procedures for linearizability,
//!   `t`-linearizability, weak consistency and eventual linearizability;
//! * [`sim`] — the asynchronous shared-memory simulator (base objects,
//!   schedulers, exhaustive exploration, valency and stability analysis);
//! * [`algorithms`] — the paper's constructions (Proposition 16 consensus,
//!   the Figure 1 wrapper, the Theorem 12 local-copy transformation,
//!   fetch&increment implementations);
//! * [`runtime`] — real multi-threaded counters and consensus objects with
//!   history recording, for the introduction's motivating measurements;
//! * [`service`] — the sharded monitoring service: producer clients stream
//!   recorded events over a documented wire protocol (`docs/PROTOCOL.md`)
//!   to a pool of monitor replicas sharded by object, with verdict rounds
//!   flowing back on the same connections.
//!
//! ## Quick start
//!
//! ```
//! use evlin::prelude::*;
//!
//! // Two concurrent fetch&inc operations both returning 0: weakly
//! // consistent (each response is justified by *some* serialization of the
//! // operations each process knows about) but not linearizable; it becomes
//! // linearizable once the first two events are forgiven (t = 2).
//! let mut universe = ObjectUniverse::new();
//! let x = universe.add_object(FetchIncrement::new());
//! let history = HistoryBuilder::new()
//!     .complete(ProcessId(0), x, FetchIncrement::fetch_inc(), Value::from(0i64))
//!     .complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(0i64))
//!     .build();
//!
//! let report = evlin::checker::eventual::analyze(&history, &universe);
//! assert!(!report.is_linearizable());
//! assert!(report.is_eventually_linearizable());
//! assert_eq!(report.min_stabilization, Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use evlin_algorithms as algorithms;
pub use evlin_checker as checker;
pub use evlin_history as history;
pub use evlin_runtime as runtime;
pub use evlin_service as service;
pub use evlin_sim as sim;
pub use evlin_spec as spec;

/// The most commonly used items from every sub-crate.
pub mod prelude {
    pub use evlin_algorithms::{
        CasConsensusSim, CasFetchInc, Fig1Wrapper, GossipFetchInc, LocalCopy, NoisyPrefixFetchInc,
        Prop16Consensus, TestAndSetEv,
    };
    pub use evlin_checker::{
        eventual::EventualReport, is_eventually_linearizable, is_linearizable, is_t_linearizable,
        is_weakly_consistent, min_stabilization,
    };
    pub use evlin_history::{
        History, HistoryBuilder, ObjectId, ObjectUniverse, OperationRecord, ProcessId,
    };
    pub use evlin_runtime::{CasCounter, ConcurrentCounter, FetchAddCounter, ShardedCounter};
    pub use evlin_sim::prelude::*;
    pub use evlin_spec::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let mut universe = ObjectUniverse::new();
        let x = universe.add_object(FetchIncrement::new());
        let history = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(crate::checker::is_linearizable(&history, &universe));
        let imp = CasFetchInc::new(2);
        let mut scheduler = RoundRobinScheduler::new();
        let out = run(
            &imp,
            &Workload::uniform(2, FetchIncrement::fetch_inc(), 2),
            &mut scheduler,
            10_000,
        );
        assert!(out.completed_all);
    }
}
