//! Proposition 16: wait-free eventually linearizable consensus from
//! (eventually linearizable) registers.
//!
//! The algorithm, verbatim from the paper, for process `p_i`:
//!
//! ```text
//! Propose(v)
//!   if Proposal[i] = ⊥ then Proposal[i] := v
//!   read Proposal[1..n] and return leftmost non-⊥ value
//! end Propose
//! ```
//!
//! `Proposal[1..n]` is an array of single-writer multi-reader registers, each
//! initially `⊥`.  The implementation is wait-free (each operation takes at
//! most `n + 2` register accesses) and every history it produces is weakly
//! consistent and `t`-linearizable for some `t`, even when the base registers
//! are only eventually linearizable — that is what the experiments verify.

use crate::prop16::phase::Phase;
use evlin_history::ProcessId;
use evlin_sim::base::{objects, BaseObject};
use evlin_sim::eventually::{EventuallyLinearizable, StabilizationPolicy};
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{Invocation, Register, Value};
use std::sync::Arc;

/// Which kind of base registers the algorithm is instantiated over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterKind {
    /// Linearizable (atomic) registers.
    Linearizable,
    /// Eventually linearizable registers with the given stabilization policy.
    EventuallyLinearizable(StabilizationPolicy),
}

/// The Proposition 16 consensus implementation.
#[derive(Debug, Clone)]
pub struct Prop16Consensus {
    processes: usize,
    registers: RegisterKind,
}

impl Prop16Consensus {
    /// Creates the implementation for `processes` processes over linearizable
    /// registers.
    pub fn new(processes: usize) -> Self {
        Prop16Consensus {
            processes,
            registers: RegisterKind::Linearizable,
        }
    }

    /// Creates the implementation over *eventually linearizable* registers —
    /// the stronger statement actually proved by Proposition 16.
    pub fn with_eventually_linearizable_registers(
        processes: usize,
        policy: StabilizationPolicy,
    ) -> Self {
        Prop16Consensus {
            processes,
            registers: RegisterKind::EventuallyLinearizable(policy),
        }
    }

    /// The kind of base registers used.
    pub fn register_kind(&self) -> RegisterKind {
        self.registers
    }
}

impl Implementation for Prop16Consensus {
    fn name(&self) -> String {
        match self.registers {
            RegisterKind::Linearizable => "Prop16 consensus (linearizable registers)".into(),
            RegisterKind::EventuallyLinearizable(_) => {
                "Prop16 consensus (eventually linearizable registers)".into()
            }
        }
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        (0..self.processes)
            .map(|_| match self.registers {
                RegisterKind::Linearizable => objects::bottom_register(),
                RegisterKind::EventuallyLinearizable(policy) => Box::new(
                    EventuallyLinearizable::new(Arc::new(Register::new_bottom()), policy),
                )
                    as Box<dyn BaseObject>,
            })
            .collect()
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(Prop16Logic {
            me: process,
            n: self.processes,
            proposal: Value::Bottom,
            phase: Phase::Idle,
            seen: Vec::new(),
        })
    }

    // Asymmetric: single-writer registers indexed by process id, and the
    // deterministic tie-break scans them in id order.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(false)
    }
}

mod phase {
    /// Control state of one `Propose` execution.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(super) enum Phase {
        /// No operation in progress.
        Idle,
        /// About to read `Proposal[i]` (line 2, the test).
        ReadOwn,
        /// Waiting for the response of the read of `Proposal[i]`.
        AwaitOwn,
        /// Waiting for the acknowledgement of the write to `Proposal[i]`.
        AwaitWrite,
        /// Scanning `Proposal[k]` (line 3); the payload is the next index to
        /// read.
        Scan(usize),
    }
}

/// Programme state for [`Prop16Consensus`].
#[derive(Debug, Clone)]
struct Prop16Logic {
    me: ProcessId,
    n: usize,
    proposal: Value,
    phase: Phase,
    seen: Vec<Value>,
}

impl ProcessLogic for Prop16Logic {
    fn begin(&mut self, invocation: Invocation) {
        assert_eq!(
            invocation.method(),
            "propose",
            "Prop16 consensus only implements propose(v)"
        );
        self.proposal = invocation.arg(0).cloned().expect("propose carries a value");
        self.phase = Phase::ReadOwn;
        self.seen.clear();
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.phase.clone() {
            Phase::Idle => panic!("step called with no operation in progress"),
            Phase::ReadOwn => {
                self.phase = Phase::AwaitOwn;
                TaskStep::Access {
                    object: self.me.index(),
                    invocation: Register::read(),
                }
            }
            Phase::AwaitOwn => {
                let own = previous_response.expect("response of the read of Proposal[i]");
                if own.is_bottom() {
                    // line 2: Proposal[i] := v
                    self.phase = Phase::AwaitWrite;
                    TaskStep::Access {
                        object: self.me.index(),
                        invocation: Register::write(self.proposal.clone()),
                    }
                } else {
                    // Our own register is already set (a later propose by the
                    // same process); go straight to the scan.
                    self.begin_scan()
                }
            }
            Phase::AwaitWrite => {
                let _ack = previous_response.expect("write acknowledgement");
                self.begin_scan()
            }
            Phase::Scan(k) => {
                let value = previous_response.expect("response of the read of Proposal[k]");
                self.seen.push(value);
                self.continue_scan(k + 1)
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

impl Prop16Logic {
    fn begin_scan(&mut self) -> TaskStep {
        self.seen.clear();
        self.continue_scan(0)
    }

    fn continue_scan(&mut self, next: usize) -> TaskStep {
        if next < self.n {
            self.phase = Phase::Scan(next);
            TaskStep::Access {
                object: next,
                invocation: Register::read(),
            }
        } else {
            self.phase = Phase::Idle;
            let decision = self
                .seen
                .iter()
                .find(|v| !v.is_bottom())
                .cloned()
                .expect("own proposal guarantees a non-⊥ value is visible");
            TaskStep::Complete(decision)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_checker::{eventual, weak_consistency};
    use evlin_history::ObjectUniverse;
    use evlin_sim::explorer::{terminal_histories, ExploreOptions};
    use evlin_sim::prelude::*;
    use evlin_spec::Consensus;

    fn consensus_universe() -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        u.add_object(Consensus::new());
        u
    }

    fn proposals(n: usize) -> Workload {
        Workload::one_shot(
            (0..n)
                .map(|i| Consensus::propose(Value::from(i as i64 * 10)))
                .collect(),
        )
    }

    #[test]
    fn round_robin_run_decides_and_is_weakly_consistent() {
        let imp = Prop16Consensus::new(3);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &proposals(3), &mut s, 10_000);
        assert!(out.completed_all);
        let u = consensus_universe();
        assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
        let report = eventual::analyze(&out.history, &u);
        assert!(report.is_eventually_linearizable());
    }

    #[test]
    fn wait_freedom_bounded_steps_per_operation() {
        // Each propose takes at most n + 2 base accesses + 1 completion step.
        let n = 4;
        let imp = Prop16Consensus::new(n);
        let mut s = SoloBurstScheduler::new(1);
        let out = run(&imp, &proposals(n), &mut s, 10_000);
        assert!(out.completed_all);
        assert!(out.steps <= n * (n + 3));
    }

    #[test]
    fn all_interleavings_are_eventually_linearizable_two_processes() {
        // The exhaustive version of Proposition 16's correctness argument for
        // n = 2: every interleaving yields a weakly consistent history.
        let imp = Prop16Consensus::new(2);
        let u = consensus_universe();
        let histories = terminal_histories(
            &imp,
            &proposals(2),
            ExploreOptions {
                max_depth: 32,
                max_configs: 200_000,
            },
        );
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(h.is_well_formed());
            assert!(
                weak_consistency::is_weakly_consistent(h, &u),
                "weak consistency violated:\n{h}"
            );
            assert!(eventual::is_eventually_linearizable(h, &u));
        }
    }

    #[test]
    fn disagreement_is_possible_but_stabilizes() {
        // Under an adversarial schedule two processes may return different
        // values (so the implementation is NOT linearizable), yet the history
        // is still eventually linearizable.  Run p0's operation to just
        // before its scan finishes, then let p1 run completely, etc.  We look
        // for a disagreement among all interleavings.
        let imp = Prop16Consensus::new(2);
        let u = consensus_universe();
        let histories = terminal_histories(
            &imp,
            &proposals(2),
            ExploreOptions {
                max_depth: 32,
                max_configs: 200_000,
            },
        );
        let mut saw_disagreement = false;
        for h in &histories {
            let decided: std::collections::BTreeSet<_> = h
                .complete_operations()
                .iter()
                .filter_map(|op| op.response.clone())
                .collect();
            if decided.len() > 1 {
                saw_disagreement = true;
                let report = eventual::analyze(h, &u);
                assert!(report.is_eventually_linearizable());
                assert!(!report.is_linearizable());
            }
        }
        assert!(
            saw_disagreement,
            "some interleaving must let both processes miss each other"
        );
    }

    #[test]
    fn works_over_eventually_linearizable_registers() {
        let imp = Prop16Consensus::with_eventually_linearizable_registers(
            3,
            StabilizationPolicy::AfterAccesses(6),
        );
        assert!(matches!(
            imp.register_kind(),
            RegisterKind::EventuallyLinearizable(_)
        ));
        let u = consensus_universe();
        for seed in 0..10u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &proposals(3), &mut s, 10_000);
            assert!(out.completed_all);
            assert!(
                weak_consistency::is_weakly_consistent(&out.history, &u),
                "seed {seed}:\n{}",
                out.history
            );
            assert!(eventual::is_eventually_linearizable(&out.history, &u));
        }
    }

    #[test]
    fn repeated_proposes_by_the_same_process_write_only_once() {
        let imp = Prop16Consensus::new(2);
        let w = Workload::new(vec![
            vec![
                Consensus::propose(Value::from(1i64)),
                Consensus::propose(Value::from(2i64)),
            ],
            vec![Consensus::propose(Value::from(3i64))],
        ]);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 10_000);
        assert!(out.completed_all);
        // p0's second propose returns the same decision as its first: its own
        // register still holds 1 and registers are scanned left to right.
        let ops = out.history.complete_operations();
        let p0_ops: Vec<_> = ops.iter().filter(|o| o.process == ProcessId(0)).collect();
        assert_eq!(p0_ops.len(), 2);
        assert_eq!(p0_ops[0].response, p0_ops[1].response);
    }
}
