//! Encoding invocations as [`Value`]s so they can be stored in announce
//! registers (Figure 1 needs processes to write the operations they are about
//! to perform into shared memory).

use evlin_spec::{Invocation, Value};

/// Encodes an invocation as a value: a pair of the method name and the
/// argument list.
pub fn encode_invocation(invocation: &Invocation) -> Value {
    Value::pair(
        Value::sym(invocation.method()),
        Value::List(invocation.args().to_vec()),
    )
}

/// Decodes a value produced by [`encode_invocation`].
///
/// Returns `None` if the value does not have the expected shape.
pub fn decode_invocation(value: &Value) -> Option<Invocation> {
    let (method, args) = value.as_pair()?;
    let method = match method {
        Value::Sym(s) => s.clone(),
        _ => return None,
    };
    let args = args.as_list()?.to_vec();
    Some(Invocation::new(method, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{FetchIncrement, Register};

    #[test]
    fn round_trips() {
        for inv in [
            FetchIncrement::fetch_inc(),
            Register::write(Value::from(3i64)),
            Invocation::binary("cas", Value::from(0i64), Value::from(1i64)),
        ] {
            let encoded = encode_invocation(&inv);
            assert_eq!(decode_invocation(&encoded), Some(inv));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        assert_eq!(decode_invocation(&Value::Unit), None);
        assert_eq!(
            decode_invocation(&Value::pair(Value::from(3i64), Value::list([]))),
            None
        );
        assert_eq!(
            decode_invocation(&Value::pair(Value::sym("read"), Value::Unit)),
            None
        );
    }
}
