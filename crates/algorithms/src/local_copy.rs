//! The Theorem 12 transformation: replacing shared objects by local copies.
//!
//! "We construct an n-process wait-free linearizable implementation `I′` of
//! an object of type `T` simply by replacing each shared object `o` by `n`
//! local copies `o_1, …, o_n`.  Whenever process `p_i` must perform an
//! operation `op` on shared object `o` according to `I`, `p_i` instead
//! performs `op` on its local copy `o_i`."
//!
//! The transformation is the heart of the proof that eventually linearizable
//! base objects are useless for building non-trivial linearizable objects:
//! every finite history of `I′` is also a possible history of `I` (the
//! eventually linearizable base objects are allowed to behave exactly like
//! never-synchronizing local copies in any finite prefix), so if `I` were
//! linearizable then `I′` — an implementation with **no communication at
//! all** — would be too, which is only possible for trivial types
//! (Proposition 14).
//!
//! [`LocalCopy`] performs the transformation mechanically on any
//! [`Implementation`]; the E4 experiment then checks which implemented types
//! survive it with their consistency intact.

use evlin_history::ProcessId;
use evlin_sim::base::BaseObject;
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{Invocation, Value};

/// The Theorem 12 transformation `I ↦ I′`.
#[derive(Debug)]
pub struct LocalCopy<I> {
    inner: I,
}

impl<I: Implementation> LocalCopy<I> {
    /// Transforms `inner` into an implementation that uses no shared objects.
    pub fn new(inner: I) -> Self {
        LocalCopy { inner }
    }

    /// The original implementation.
    pub fn inner(&self) -> &I {
        &self.inner
    }
}

impl<I: Implementation> Implementation for LocalCopy<I> {
    fn name(&self) -> String {
        format!("local-copy transformation of [{}]", self.inner.name())
    }

    fn processes(&self) -> usize {
        self.inner.processes()
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        // The whole point: no shared objects.
        Vec::new()
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(LocalCopyLogic {
            inner: self.inner.new_process(process),
            local_objects: self.inner.initial_base_objects(),
            process,
        })
    }

    // Conservatively asymmetric: the transformed programme stores its own
    // process id (it must pass *some* identity to its private copies, and
    // those copies may be pid-dependent, e.g. eventually linearizable), so a
    // renaming cannot reach every occurrence.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(false)
    }
}

/// Programme state of the transformed implementation: the original
/// programme plus a private copy of every base object.
#[derive(Debug)]
struct LocalCopyLogic {
    inner: Box<dyn ProcessLogic>,
    local_objects: Vec<Box<dyn BaseObject>>,
    process: ProcessId,
}

impl ProcessLogic for LocalCopyLogic {
    fn begin(&mut self, invocation: Invocation) {
        self.inner.begin(invocation);
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        // Drive the inner programme, resolving every base-object access
        // against the local copies.  Since no shared memory is involved, the
        // whole operation can be collapsed into a single atomic step without
        // changing the set of reachable histories.
        let mut response = previous_response;
        loop {
            match self.inner.step(response.take()) {
                TaskStep::Access { object, invocation } => {
                    let value = self.local_objects[object].invoke(self.process, &invocation);
                    response = Some(value);
                }
                TaskStep::Complete(value) => return TaskStep::Complete(value),
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(LocalCopyLogic {
            inner: self.inner.clone(),
            local_objects: self.local_objects.clone(),
            process: self.process,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch_inc::CasFetchInc;
    use crate::prop16::Prop16Consensus;
    use evlin_checker::{linearizability, weak_consistency};
    use evlin_history::ObjectUniverse;
    use evlin_sim::explorer::{terminal_histories, ExploreOptions};
    use evlin_sim::prelude::*;
    use evlin_spec::{Consensus, FetchIncrement, Value};

    #[test]
    fn transformed_implementation_uses_no_shared_objects() {
        let t = LocalCopy::new(CasFetchInc::new(2));
        assert!(t.initial_base_objects().is_empty());
        assert_eq!(t.processes(), 2);
        assert!(t.name().contains("local-copy"));
        assert!(t.inner().name().contains("compare&swap"));
    }

    #[test]
    fn fetch_inc_loses_linearizability_under_the_transformation() {
        // CasFetchInc is linearizable; its local-copy transformation is not
        // (fetch&increment is not a trivial type), which is exactly why
        // Theorem 12 forbids a linearizable fetch&increment from eventually
        // linearizable objects.
        let t = LocalCopy::new(CasFetchInc::new(2));
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let mut u = ObjectUniverse::new();
        u.add_object(FetchIncrement::new());
        let histories = terminal_histories(&t, &w, ExploreOptions::default());
        assert!(!histories.is_empty());
        let mut some_violation = false;
        for h in &histories {
            // Still wait-free and weakly consistent…
            assert_eq!(h.complete_operations().len(), 2);
            assert!(weak_consistency::is_weakly_consistent(h, &u));
            // …but at least one interleaving (in fact, all of them, since the
            // copies never communicate) is not linearizable.
            if !linearizability::is_linearizable(h, &u) {
                some_violation = true;
            }
        }
        assert!(some_violation);
    }

    #[test]
    fn consensus_also_breaks_but_stays_wait_free() {
        let t = LocalCopy::new(Prop16Consensus::new(2));
        let w = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let mut u = ObjectUniverse::new();
        u.add_object(Consensus::new());
        let mut s = RoundRobinScheduler::new();
        let out = run(&t, &w, &mut s, 10_000);
        assert!(
            out.completed_all,
            "the transformation preserves wait-freedom"
        );
        // Each process decides its own value: agreement is violated, so the
        // history is not linearizable.
        assert!(!linearizability::is_linearizable(&out.history, &u));
        assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
    }

    #[test]
    fn solo_executions_are_unchanged_by_the_transformation() {
        // With a single process the transformation is invisible (this is the
        // wait-freedom argument in the proof of Theorem 12: a solo execution
        // of I' is a solo execution of I).
        let original = CasFetchInc::new(1);
        let transformed = LocalCopy::new(CasFetchInc::new(1));
        let w = Workload::uniform(1, FetchIncrement::fetch_inc(), 5);
        let mut s1 = RoundRobinScheduler::new();
        let mut s2 = RoundRobinScheduler::new();
        let a = run(&original, &w, &mut s1, 10_000);
        let b = run(&transformed, &w, &mut s2, 10_000);
        let responses = |h: &evlin_history::History| {
            h.complete_operations()
                .iter()
                .map(|o| o.response.clone().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(responses(&a.history), responses(&b.history));
    }
}
