//! A lock-free universal construction from consensus objects.
//!
//! The paper's closing question (Section 6) recalls Herlihy's result that
//! consensus objects are *universal* for linearizable objects and asks
//! whether an analogous universal construction exists for eventually
//! linearizable objects.  This module provides the classical side of that
//! comparison: a log-based universal construction that turns any
//! deterministic sequential specification into a linearizable shared object
//! using one consensus base object per log position.
//!
//! To perform an operation, a process proposes the (uniquely tagged)
//! operation for the first log slot it does not yet know to be decided and
//! keeps moving to the next slot until one of its proposals wins; it then
//! replays the decided prefix of the log against the sequential specification
//! to compute its response.  The construction is non-blocking (some proposal
//! wins every slot) and linearizable: the decided log *is* the linearization
//! order.
//!
//! Combined with Proposition 16 this makes the paradox sharp: consensus — the
//! engine of universality for *linearizable* objects — is trivial to obtain
//! in an eventually linearizable form, yet by Theorem 12 those eventually
//! linearizable consensus objects cannot drive any such construction for
//! non-trivial types.

use crate::encode::{decode_invocation, encode_invocation};
use evlin_history::ProcessId;
use evlin_sim::base::{objects, BaseObject};
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{Consensus, Invocation, ObjectType, Value};
use std::sync::Arc;

/// A lock-free universal construction of `ty` from consensus base objects.
///
/// The log is bounded by `log_capacity` slots (one consensus object each);
/// executions that would need more slots than that panic, which keeps the
/// model-checked workloads honest about the bound.
#[derive(Debug, Clone)]
pub struct UniversalConstruction {
    ty: Arc<dyn ObjectType>,
    processes: usize,
    log_capacity: usize,
}

impl UniversalConstruction {
    /// Creates the construction for `processes` processes with a log of
    /// `log_capacity` consensus objects.
    ///
    /// # Panics
    ///
    /// Panics if `log_capacity` is zero.
    pub fn new(ty: Arc<dyn ObjectType>, processes: usize, log_capacity: usize) -> Self {
        assert!(log_capacity > 0, "the log needs at least one slot");
        UniversalConstruction {
            ty,
            processes,
            log_capacity,
        }
    }

    /// The implemented object type.
    pub fn object_type(&self) -> &Arc<dyn ObjectType> {
        &self.ty
    }

    /// The number of log slots.
    pub fn log_capacity(&self) -> usize {
        self.log_capacity
    }
}

impl Implementation for UniversalConstruction {
    fn name(&self) -> String {
        format!(
            "universal construction of {} from {} consensus objects",
            self.ty.name(),
            self.log_capacity
        )
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        (0..self.log_capacity)
            .map(|_| objects::consensus())
            .collect()
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(UniversalLogic {
            me: process,
            ty: self.ty.clone(),
            log_capacity: self.log_capacity,
            known_log: Vec::new(),
            next_seq: 0,
            current: None,
            current_tag: Value::Unit,
            proposing_slot: 0,
            awaiting: false,
        })
    }

    // Asymmetric: operations are tagged `(me, seq)` to deduplicate log
    // entries, so the process id is data the programme depends on.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(false)
    }
}

/// Programme state for [`UniversalConstruction`].
#[derive(Debug, Clone)]
struct UniversalLogic {
    me: ProcessId,
    ty: Arc<dyn ObjectType>,
    log_capacity: usize,
    /// The decided log entries this process has observed so far.
    known_log: Vec<Value>,
    /// Sequence number used to tag this process's operations uniquely.
    next_seq: i64,
    current: Option<Invocation>,
    current_tag: Value,
    proposing_slot: usize,
    awaiting: bool,
}

impl UniversalLogic {
    fn tagged_current(&self) -> Value {
        Value::pair(
            self.current_tag.clone(),
            encode_invocation(self.current.as_ref().expect("operation in progress")),
        )
    }

    fn propose_next(&mut self) -> TaskStep {
        assert!(
            self.proposing_slot < self.log_capacity,
            "universal construction log capacity ({}) exhausted",
            self.log_capacity
        );
        self.awaiting = true;
        TaskStep::Access {
            object: self.proposing_slot,
            invocation: Consensus::propose(self.tagged_current()),
        }
    }

    /// Replays the known decided log against the sequential specification and
    /// returns the response of the entry at `upto` (which must be this
    /// process's own operation).
    fn replay_response(&self, upto: usize) -> Value {
        let mut state = self
            .ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types have an initial state");
        let mut response = Value::Unit;
        for entry in self.known_log.iter().take(upto + 1) {
            let (_tag, encoded) = entry.as_pair().expect("log entries are tagged pairs");
            let invocation =
                decode_invocation(encoded).expect("log entries hold encoded invocations");
            let (resp, next) = self
                .ty
                .apply_deterministic(&state, &invocation)
                .expect("the implemented type is total and deterministic");
            state = next;
            response = resp;
        }
        response
    }
}

impl ProcessLogic for UniversalLogic {
    fn begin(&mut self, invocation: Invocation) {
        self.current = Some(invocation);
        self.current_tag = Value::pair(Value::from(self.me.index()), Value::from(self.next_seq));
        self.next_seq += 1;
        self.proposing_slot = self.known_log.len();
        self.awaiting = false;
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        if !self.awaiting {
            return self.propose_next();
        }
        let decided = previous_response.expect("consensus returns the decided value");
        // Record the decided entry for this slot (everyone agrees on it).
        if self.known_log.len() == self.proposing_slot {
            self.known_log.push(decided.clone());
        }
        let (winner_tag, _) = decided.as_pair().expect("log entries are tagged pairs");
        if *winner_tag == self.current_tag {
            // Our operation owns this slot: compute its response from the log.
            let response = self.replay_response(self.proposing_slot);
            self.current = None;
            self.awaiting = false;
            TaskStep::Complete(response)
        } else {
            // Someone else won this slot; try the next one.
            self.proposing_slot += 1;
            self.propose_next()
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_checker::linearizability;
    use evlin_history::ObjectUniverse;
    use evlin_sim::explorer::{terminal_histories, ExploreOptions};
    use evlin_sim::prelude::*;
    use evlin_spec::{FetchIncrement, Queue, Register, TestAndSet};

    fn universe_for(ty: Arc<dyn ObjectType>) -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        let q0 = ty.initial_states()[0].clone();
        u.add_shared(ty, q0);
        u
    }

    #[test]
    fn implements_fetch_increment_linearizably_under_random_schedules() {
        let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
        let imp = UniversalConstruction::new(ty.clone(), 3, 32);
        let u = universe_for(ty);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
        for seed in 0..10u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all, "lock-freedom: seed {seed}");
            assert!(
                linearizability::is_linearizable(&out.history, &u),
                "seed {seed}:\n{}",
                out.history
            );
        }
    }

    #[test]
    fn implements_a_queue_linearizably() {
        let ty: Arc<dyn ObjectType> = Arc::new(Queue::new());
        let imp = UniversalConstruction::new(ty.clone(), 2, 16);
        let u = universe_for(ty);
        let w = Workload::new(vec![
            vec![Queue::enqueue(Value::from(1i64)), Queue::dequeue()],
            vec![Queue::enqueue(Value::from(2i64)), Queue::dequeue()],
        ]);
        for seed in 0..10u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all);
            assert!(linearizability::is_linearizable(&out.history, &u));
        }
    }

    #[test]
    fn all_interleavings_of_a_small_workload_are_linearizable() {
        let ty: Arc<dyn ObjectType> = Arc::new(TestAndSet::new());
        let imp = UniversalConstruction::new(ty.clone(), 2, 8);
        let u = universe_for(ty);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let histories = terminal_histories(
            &imp,
            &w,
            ExploreOptions {
                max_depth: 24,
                max_configs: 200_000,
            },
        );
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(linearizability::is_linearizable(h, &u), "violation:\n{h}");
        }
    }

    #[test]
    fn register_reads_see_the_latest_decided_write() {
        let ty: Arc<dyn ObjectType> = Arc::new(Register::new(Value::from(0i64)));
        let imp = UniversalConstruction::new(ty.clone(), 2, 16);
        assert!(imp.name().contains("universal"));
        assert_eq!(imp.log_capacity(), 16);
        assert_eq!(imp.object_type().name(), "register");
        let u = universe_for(ty);
        let w = Workload::new(vec![
            vec![Register::write(Value::from(7i64)), Register::read()],
            vec![Register::read(), Register::write(Value::from(9i64))],
        ]);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100_000);
        assert!(out.completed_all);
        assert!(linearizability::is_linearizable(&out.history, &u));
    }

    #[test]
    #[should_panic(expected = "log capacity")]
    fn exhausting_the_log_panics() {
        let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
        let imp = UniversalConstruction::new(ty, 2, 1);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
        let mut s = RoundRobinScheduler::new();
        let _ = run(&imp, &w, &mut s, 100_000);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
        let _ = UniversalConstruction::new(ty, 2, 0);
    }
}
