//! A linearizable consensus implementation from a compare&swap register.
//!
//! Used as the baseline against which the valency experiments (E6) contrast
//! the register-only Proposition 16 algorithm: with a consensus-power
//! primitive the bivalence-preserving adversary is stopped at a critical
//! configuration after a couple of steps, exactly as the proof of
//! Proposition 15 predicts cannot happen with registers and eventually
//! linearizable objects alone.

use evlin_history::ProcessId;
use evlin_sim::base::{objects, BaseObject};
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{CompareAndSwap, Invocation, Value};

/// Linearizable consensus: `propose(v)` tries `cas(⊥, v)` on a shared
/// compare&swap register and then reads the decided value.
#[derive(Debug, Clone)]
pub struct CasConsensusSim {
    processes: usize,
}

impl CasConsensusSim {
    /// Creates the implementation for `processes` processes.
    pub fn new(processes: usize) -> Self {
        CasConsensusSim { processes }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Idle,
    Cas,
    AwaitCas,
    AwaitRead,
}

/// Programme state for [`CasConsensusSim`].
#[derive(Debug, Clone)]
struct CasConsensusLogic {
    proposal: Value,
    phase: Phase,
}

impl Implementation for CasConsensusSim {
    fn name(&self) -> String {
        "compare&swap consensus (linearizable)".into()
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        vec![objects::cas(Value::Bottom)]
    }

    fn new_process(&self, _process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(CasConsensusLogic {
            proposal: Value::Bottom,
            phase: Phase::Idle,
        })
    }
}

impl ProcessLogic for CasConsensusLogic {
    fn begin(&mut self, invocation: Invocation) {
        assert_eq!(invocation.method(), "propose");
        self.proposal = invocation.arg(0).cloned().expect("propose carries a value");
        self.phase = Phase::Cas;
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.phase.clone() {
            Phase::Idle => panic!("step called with no operation in progress"),
            Phase::Cas => {
                self.phase = Phase::AwaitCas;
                TaskStep::Access {
                    object: 0,
                    invocation: CompareAndSwap::cas(Value::Bottom, self.proposal.clone()),
                }
            }
            Phase::AwaitCas => {
                let won = previous_response
                    .and_then(|v| v.as_bool())
                    .expect("cas returns a boolean");
                if won {
                    self.phase = Phase::Idle;
                    TaskStep::Complete(self.proposal.clone())
                } else {
                    self.phase = Phase::AwaitRead;
                    TaskStep::Access {
                        object: 0,
                        invocation: CompareAndSwap::read(),
                    }
                }
            }
            Phase::AwaitRead => {
                let decided = previous_response.expect("read returns the decided value");
                self.phase = Phase::Idle;
                TaskStep::Complete(decided)
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_checker::linearizability;
    use evlin_history::ObjectUniverse;
    use evlin_sim::explorer::{terminal_histories, ExploreOptions};
    use evlin_sim::valency::{bivalence_walk, check_consensus, WalkEnd};
    use evlin_sim::workload::Workload;
    use evlin_spec::Consensus;

    #[test]
    fn every_interleaving_is_linearizable() {
        let imp = CasConsensusSim::new(2);
        let w = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let mut u = ObjectUniverse::new();
        u.add_object(Consensus::new());
        let histories = terminal_histories(&imp, &w, ExploreOptions::default());
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(linearizability::is_linearizable(h, &u), "violation:\n{h}");
        }
    }

    #[test]
    fn agreement_and_validity_hold_exhaustively() {
        let imp = CasConsensusSim::new(2);
        let check = check_consensus(
            &imp,
            &[Value::from(0i64), Value::from(1i64)],
            ExploreOptions::default(),
        );
        assert!(check.is_correct());
        assert!(check.all_terminated);
    }

    #[test]
    fn bivalence_ends_at_a_critical_configuration() {
        let imp = CasConsensusSim::new(2);
        let walk = bivalence_walk(
            &imp,
            &[Value::from(0i64), Value::from(1i64)],
            24,
            50_000,
            32,
        );
        assert_eq!(walk.ended, WalkEnd::CriticalConfiguration);
        assert!(walk.bivalent_steps <= 2);
    }
}
