//! The trivial eventually linearizable test&set of Section 4.
//!
//! "A test&set object has an eventually linearizable implementation where
//! each process simply returns 0 for its first invocation of test&set and 1
//! for all subsequent invocations."  No shared objects are used at all: the
//! implementation may "behave badly" (several processes return 0) only in a
//! finite prefix of the execution, which eventual linearizability forgives —
//! and which full linearizability obviously does not.

use evlin_history::ProcessId;
use evlin_sim::base::BaseObject;
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{Invocation, Value};

/// The communication-free eventually linearizable test&set implementation.
#[derive(Debug, Clone)]
pub struct TestAndSetEv {
    processes: usize,
}

impl TestAndSetEv {
    /// Creates the implementation for `processes` processes.
    pub fn new(processes: usize) -> Self {
        TestAndSetEv { processes }
    }
}

/// Programme state: just a flag saying whether this process has already
/// performed a `test_and_set`.
#[derive(Debug, Clone, Default)]
struct TasLogic {
    already_called: bool,
    running: bool,
}

impl Implementation for TestAndSetEv {
    fn name(&self) -> String {
        "eventually linearizable test&set (no shared objects)".into()
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        Vec::new()
    }

    fn new_process(&self, _process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(TasLogic::default())
    }
}

impl ProcessLogic for TasLogic {
    fn begin(&mut self, invocation: Invocation) {
        assert_eq!(
            invocation.method(),
            "test_and_set",
            "this implementation only provides test_and_set()"
        );
        self.running = true;
    }

    fn step(&mut self, _previous_response: Option<Value>) -> TaskStep {
        assert!(self.running, "step called with no operation in progress");
        self.running = false;
        if self.already_called {
            TaskStep::Complete(Value::from(1i64))
        } else {
            self.already_called = true;
            TaskStep::Complete(Value::from(0i64))
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_checker::{eventual, linearizability};
    use evlin_history::ObjectUniverse;
    use evlin_sim::explorer::{terminal_histories, ExploreOptions};
    use evlin_sim::prelude::*;
    use evlin_spec::TestAndSet;

    fn universe() -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        u.add_object(TestAndSet::new());
        u
    }

    #[test]
    fn every_interleaving_is_eventually_linearizable() {
        let imp = TestAndSetEv::new(3);
        let w = Workload::uniform(3, TestAndSet::test_and_set(), 2);
        let u = universe();
        let histories = terminal_histories(&imp, &w, ExploreOptions::default());
        assert!(!histories.is_empty());
        for h in &histories {
            let report = eventual::analyze(h, &u);
            assert!(report.is_eventually_linearizable(), "violation:\n{h}");
        }
    }

    #[test]
    fn concurrent_winners_make_it_non_linearizable() {
        let imp = TestAndSetEv::new(2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let u = universe();
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100);
        assert!(out.completed_all);
        // Both processes return 0 — fine eventually, not linearizable.
        assert!(!linearizability::is_linearizable(&out.history, &u));
        assert!(eventual::is_eventually_linearizable(&out.history, &u));
    }

    #[test]
    fn later_operations_by_the_same_process_return_one() {
        let imp = TestAndSetEv::new(1);
        let w = Workload::uniform(1, TestAndSet::test_and_set(), 3);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100);
        let responses: Vec<_> = out
            .history
            .complete_operations()
            .iter()
            .map(|o| o.response.clone().unwrap())
            .collect();
        assert_eq!(
            responses,
            vec![Value::from(0i64), Value::from(1i64), Value::from(1i64)]
        );
        // A single process running alone is even linearizable.
        let u = universe();
        assert!(linearizability::is_linearizable(&out.history, &u));
    }
}
