//! Proposition 11 / Figure 1: guaranteeing weak consistency with registers.
//!
//! Proposition 11: if linearizable registers are available, an object type
//! with finite non-determinism has an eventually linearizable non-blocking
//! implementation **iff** it has a non-blocking implementation whose every
//! history is `t`-linearizable for some `t` — i.e. registers let us add the
//! missing safety half (weak consistency) to any implementation that already
//! has the liveness half.
//!
//! The algorithm (Figure 1 of the paper), executed by process `p_i` to
//! perform `op`:
//!
//! 1. announce `op` by writing it to `R_i[c_i]`, increment `c_i`;
//! 2. compute `⟨q_i, r_private⟩`: the response `op` would get if applied to
//!    the state reached by `p_i`'s own operations alone;
//! 3. run `op` in the underlying implementation `A`, obtaining `r_shared`;
//! 4. read all announced operations of all processes;
//! 5. if some permutation of a subset of the announced operations (containing
//!    all of `p_i`'s own announcements) forms a legal sequential execution in
//!    which `op` returns `r_shared`, return `r_shared`; otherwise return
//!    `r_private`.
//!
//! The unbounded per-process register array `R_i[0, 1, 2, …]` is modelled by
//! one append-only single-writer announce log per process
//! ([`evlin_sim::base::AnnounceLog`]), which preserves the structure of the
//! algorithm (announce before computing, scan all announcements before
//! answering); see DESIGN.md for the substitution note.

use crate::encode::{decode_invocation, encode_invocation};
use evlin_history::ProcessId;
use evlin_sim::base::{AnnounceLog, BaseObject};
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{Invocation, ObjectType, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// The Figure 1 wrapper around an inner implementation.
///
/// Base objects `0 .. inner.len()` are the inner implementation's objects;
/// base objects `inner.len() .. inner.len() + n` are the announce logs of
/// processes `0 .. n`.
#[derive(Debug)]
pub struct Fig1Wrapper<I> {
    inner: I,
    ty: Arc<dyn ObjectType>,
    processes: usize,
}

impl<I: Implementation> Fig1Wrapper<I> {
    /// Wraps `inner`, an implementation of the object type `ty`, for
    /// `processes` processes.
    pub fn new(inner: I, ty: Arc<dyn ObjectType>, processes: usize) -> Self {
        Fig1Wrapper {
            inner,
            ty,
            processes,
        }
    }

    /// The wrapped implementation.
    pub fn inner(&self) -> &I {
        &self.inner
    }
}

impl<I: Implementation> Implementation for Fig1Wrapper<I> {
    fn name(&self) -> String {
        format!("Figure-1 wrapper around [{}]", self.inner.name())
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        let mut objects = self.inner.initial_base_objects();
        for _ in 0..self.processes {
            objects.push(Box::new(AnnounceLog::new()) as Box<dyn BaseObject>);
        }
        objects
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        let private_state = self
            .ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        Box::new(Fig1Logic {
            me: process,
            n: self.processes,
            inner_objects: self.inner.initial_base_objects().len(),
            inner: self.inner.new_process(process),
            ty: self.ty.clone(),
            private_state,
            own_announced: Vec::new(),
            phase: Phase::Idle,
            current: None,
            r_private: Value::Unit,
            r_shared: Value::Unit,
            announced: Vec::new(),
        })
    }

    // Asymmetric: the wrapper announces through per-process logs and the
    // programme state carries its own id (`me`), so the engine's symmetry
    // reduction must not merge process renamings.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(false)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Idle,
    /// About to announce the operation (line 2 of Figure 1).
    Announce,
    /// Waiting for the announce acknowledgement; next we run the inner
    /// implementation.
    StartInner,
    /// Running the inner implementation (line 5).
    Inner,
    /// Scanning announce log `k` (lines 6–12).
    Scan(usize),
}

/// Programme state for the Figure 1 wrapper.
#[derive(Debug)]
struct Fig1Logic {
    me: ProcessId,
    n: usize,
    inner_objects: usize,
    inner: Box<dyn ProcessLogic>,
    ty: Arc<dyn ObjectType>,
    /// `q_i`: the state reached by this process's own operations alone.
    private_state: Value,
    /// All operations this process has announced (its own prior operations).
    own_announced: Vec<Invocation>,
    phase: Phase,
    current: Option<Invocation>,
    r_private: Value,
    r_shared: Value,
    /// Announced operations of all processes gathered during the scan.
    announced: Vec<Invocation>,
}

impl Clone for Fig1Logic {
    fn clone(&self) -> Self {
        Fig1Logic {
            me: self.me,
            n: self.n,
            inner_objects: self.inner_objects,
            inner: self.inner.clone(),
            ty: self.ty.clone(),
            private_state: self.private_state.clone(),
            own_announced: self.own_announced.clone(),
            phase: self.phase.clone(),
            current: self.current.clone(),
            r_private: self.r_private.clone(),
            r_shared: self.r_shared.clone(),
            announced: self.announced.clone(),
        }
    }
}

impl ProcessLogic for Fig1Logic {
    fn begin(&mut self, invocation: Invocation) {
        self.current = Some(invocation);
        self.phase = Phase::Announce;
        self.announced.clear();
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.phase.clone() {
            Phase::Idle => panic!("step called with no operation in progress"),
            Phase::Announce => {
                let op = self.current.clone().expect("begin was called");
                self.phase = Phase::StartInner;
                TaskStep::Access {
                    object: self.inner_objects + self.me.index(),
                    invocation: AnnounceLog::append(encode_invocation(&op)),
                }
            }
            Phase::StartInner => {
                // Line 4: compute ⟨q_i, r_private⟩ from the private state.
                let op = self.current.clone().expect("begin was called");
                let (r_private, next_private) = self
                    .ty
                    .apply_deterministic(&self.private_state, &op)
                    .expect("the implemented type must be total and deterministic");
                self.r_private = r_private;
                self.private_state = next_private;
                self.own_announced.push(op.clone());
                // Line 5: run op in the inner implementation.
                self.inner.begin(op);
                self.phase = Phase::Inner;
                self.drive_inner(None)
            }
            Phase::Inner => self.drive_inner(previous_response),
            Phase::Scan(k) => {
                let announced = previous_response.expect("read_all response");
                for entry in announced.as_list().unwrap_or(&[]) {
                    if let Some(inv) = decode_invocation(entry) {
                        self.announced.push(inv);
                    }
                }
                self.continue_scan(k + 1)
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

impl Fig1Logic {
    fn drive_inner(&mut self, previous: Option<Value>) -> TaskStep {
        match self.inner.step(previous) {
            TaskStep::Access { object, invocation } => TaskStep::Access { object, invocation },
            TaskStep::Complete(r_shared) => {
                self.r_shared = r_shared;
                // Lines 6–12: read every process's announce log.
                self.continue_scan(0)
            }
        }
    }

    fn continue_scan(&mut self, next: usize) -> TaskStep {
        if next < self.n {
            self.phase = Phase::Scan(next);
            TaskStep::Access {
                object: self.inner_objects + next,
                invocation: AnnounceLog::read_all(),
            }
        } else {
            // Line 13: the verification test.
            self.phase = Phase::Idle;
            let op = self.current.take().expect("begin was called");
            if self.shared_response_is_justified(&op) {
                TaskStep::Complete(self.r_shared.clone())
            } else {
                TaskStep::Complete(self.r_private.clone())
            }
        }
    }

    /// Line 13: does a permutation of a subset of the announced operations —
    /// containing all of this process's own announcements — yield a legal
    /// sequential execution in which `op` returns `r_shared`?
    fn shared_response_is_justified(&self, op: &Invocation) -> bool {
        // Must-include: our own prior announcements (the current op is
        // handled as the final, response-constrained application).
        let must: Vec<&Invocation> = self
            .own_announced
            .iter()
            .filter({
                // `own_announced` already contains the current op (announced
                // on line 2); skip exactly one occurrence of it.
                let mut skipped = false;
                move |inv| {
                    if !skipped && *inv == op {
                        skipped = true;
                        false
                    } else {
                        true
                    }
                }
            })
            .collect();
        // Optional pool: announcements of other processes (ours are all
        // mandatory).  Count multiplicities.
        let mut optional: Vec<(Invocation, usize)> = Vec::new();
        {
            let mut own_left: Vec<&Invocation> = self.own_announced.iter().collect();
            for inv in &self.announced {
                if let Some(pos) = own_left.iter().position(|o| *o == inv) {
                    own_left.remove(pos);
                    continue; // one of our own announcements
                }
                match optional.iter_mut().find(|(i, _)| i == inv) {
                    Some((_, count)) => *count += 1,
                    None => optional.push((inv.clone(), 1)),
                }
            }
        }
        // Depth-first search over application orders, memoizing on
        // (state, must-mask, optional counts) — identical in spirit to the
        // weak-consistency checker.
        let q0 = self
            .ty
            .initial_states()
            .into_iter()
            .next()
            .expect("non-empty initial states");
        let mut visited: HashSet<(Value, u64, Vec<usize>)> = HashSet::new();
        self.dfs_justify(
            op,
            &must,
            &optional,
            q0,
            0,
            vec![0; optional.len()],
            &mut visited,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_justify(
        &self,
        op: &Invocation,
        must: &[&Invocation],
        optional: &[(Invocation, usize)],
        state: Value,
        must_mask: u64,
        used: Vec<usize>,
        visited: &mut HashSet<(Value, u64, Vec<usize>)>,
    ) -> bool {
        if !visited.insert((state.clone(), must_mask, used.clone())) {
            return false;
        }
        // Can we finish here?  All our own operations applied, and applying
        // `op` yields r_shared.
        if must_mask.count_ones() as usize == must.len() {
            if let Ok((resp, _)) = self.ty.apply_deterministic(&state, op) {
                if resp == self.r_shared {
                    return true;
                }
            }
        }
        for (i, m) in must.iter().enumerate() {
            if must_mask & (1 << i) != 0 {
                continue;
            }
            if let Ok((_, next)) = self.ty.apply_deterministic(&state, m) {
                if self.dfs_justify(
                    op,
                    must,
                    optional,
                    next,
                    must_mask | (1 << i),
                    used.clone(),
                    visited,
                ) {
                    return true;
                }
            }
        }
        for (gi, (inv, avail)) in optional.iter().enumerate() {
            if used[gi] >= *avail {
                continue;
            }
            if let Ok((_, next)) = self.ty.apply_deterministic(&state, inv) {
                let mut next_used = used.clone();
                next_used[gi] += 1;
                if self.dfs_justify(op, must, optional, next, must_mask, next_used, visited) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch_inc::CasFetchInc;
    use evlin_checker::{eventual, weak_consistency};
    use evlin_history::ObjectUniverse;
    use evlin_sim::prelude::*;
    use evlin_spec::{FetchIncrement, Register};

    /// An inner implementation that satisfies the liveness half of eventual
    /// linearizability (its histories are t-linearizable for some t) but not
    /// weak consistency: the first `garbage` operations globally return the
    /// out-of-left-field value 999.
    #[derive(Debug)]
    struct GarbagePrefixFetchInc {
        inner: CasFetchInc,
        garbage: i64,
    }

    #[derive(Debug)]
    struct GarbageLogic {
        inner: Box<dyn ProcessLogic>,
        garbage: i64,
    }

    impl Implementation for GarbagePrefixFetchInc {
        fn name(&self) -> String {
            "garbage-prefix fetch&increment".into()
        }
        fn processes(&self) -> usize {
            self.inner.processes()
        }
        fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
            self.inner.initial_base_objects()
        }
        fn new_process(&self, p: ProcessId) -> Box<dyn ProcessLogic> {
            Box::new(GarbageLogic {
                inner: self.inner.new_process(p),
                garbage: self.garbage,
            })
        }
    }

    impl ProcessLogic for GarbageLogic {
        fn begin(&mut self, invocation: Invocation) {
            self.inner.begin(invocation);
        }
        fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
            match self.inner.step(previous_response) {
                TaskStep::Complete(v) => {
                    let slot = v.as_int().expect("integer response");
                    if slot < self.garbage {
                        TaskStep::Complete(Value::from(999i64))
                    } else {
                        TaskStep::Complete(v)
                    }
                }
                access => access,
            }
        }
        fn clone_box(&self) -> Box<dyn ProcessLogic> {
            Box::new(GarbageLogic {
                inner: self.inner.clone(),
                garbage: self.garbage,
            })
        }
    }

    fn fi_universe() -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        u.add_object(FetchIncrement::new());
        u
    }

    #[test]
    fn raw_garbage_implementation_violates_weak_consistency() {
        let imp = GarbagePrefixFetchInc {
            inner: CasFetchInc::new(2),
            garbage: 2,
        };
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 3);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100_000);
        assert!(out.completed_all);
        let u = fi_universe();
        assert!(!weak_consistency::is_weakly_consistent(&out.history, &u));
    }

    #[test]
    fn wrapper_restores_weak_consistency() {
        let inner = GarbagePrefixFetchInc {
            inner: CasFetchInc::new(2),
            garbage: 2,
        };
        let imp = Fig1Wrapper::new(inner, Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 3);
        let u = fi_universe();
        for seed in 0..10u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all, "seed {seed}");
            assert!(
                weak_consistency::is_weakly_consistent(&out.history, &u),
                "seed {seed}: wrapper failed to restore weak consistency\n{}",
                out.history
            );
            assert!(eventual::is_eventually_linearizable(&out.history, &u));
        }
    }

    #[test]
    fn wrapper_preserves_good_responses_of_a_linearizable_inner() {
        // Wrapping an already linearizable implementation must keep it
        // linearizable: the verification test accepts every r_shared.
        let imp = Fig1Wrapper::new(CasFetchInc::new(2), Arc::new(FetchIncrement::new()), 2);
        assert!(imp.inner().processes() == 2);
        assert!(imp.name().contains("Figure-1"));
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 3);
        let u = fi_universe();
        for seed in 0..10u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all);
            let report = eventual::analyze(&out.history, &u);
            assert!(report.is_linearizable(), "seed {seed}:\n{}", out.history);
        }
    }

    #[test]
    fn wrapper_works_for_registers_too() {
        // Wrap a register implementation (the inner one simply reads/writes a
        // linearizable register, so it is already correct) to exercise the
        // wrapper with a different object type, including write operations.
        #[derive(Debug)]
        struct DirectRegister {
            processes: usize,
        }
        #[derive(Debug, Clone)]
        struct DirectLogic {
            pending: Option<Invocation>,
            accessed: bool,
        }
        impl Implementation for DirectRegister {
            fn name(&self) -> String {
                "direct register".into()
            }
            fn processes(&self) -> usize {
                self.processes
            }
            fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
                vec![evlin_sim::base::objects::register(Value::from(0i64))]
            }
            fn new_process(&self, _p: ProcessId) -> Box<dyn ProcessLogic> {
                Box::new(DirectLogic {
                    pending: None,
                    accessed: false,
                })
            }
        }
        impl ProcessLogic for DirectLogic {
            fn begin(&mut self, invocation: Invocation) {
                self.pending = Some(invocation);
                self.accessed = false;
            }
            fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
                if !self.accessed {
                    self.accessed = true;
                    TaskStep::Access {
                        object: 0,
                        invocation: self.pending.clone().expect("begin"),
                    }
                } else {
                    TaskStep::Complete(previous_response.expect("register response"))
                }
            }
            fn clone_box(&self) -> Box<dyn ProcessLogic> {
                Box::new(self.clone())
            }
        }

        let imp = Fig1Wrapper::new(
            DirectRegister { processes: 2 },
            Arc::new(Register::new(Value::from(0i64))),
            2,
        );
        let w = Workload::new(vec![
            vec![Register::write(Value::from(5i64)), Register::read()],
            vec![Register::read(), Register::write(Value::from(6i64))],
        ]);
        let mut u = ObjectUniverse::new();
        u.add_object(Register::new(Value::from(0i64)));
        for seed in 0..10u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all);
            let report = eventual::analyze(&out.history, &u);
            assert!(report.is_linearizable(), "seed {seed}:\n{}", out.history);
        }
    }
}
