//! Fetch&increment implementations.
//!
//! Three implementations, matching the roles the paper assigns to this
//! object:
//!
//! * [`CasFetchInc`] — the introduction's baseline: a lock-free (non-blocking)
//!   linearizable fetch&increment built from a compare&swap register, with a
//!   retry loop;
//! * [`NoisyPrefixFetchInc`] — a fetch&increment that performs the same
//!   compare&swap protocol (so every increment is always counted) but, while
//!   the shared counter is still below a configurable warm-up threshold,
//!   returns a *stale, process-local* value instead of the true one.  Its
//!   executions are weakly consistent and stabilize exactly when the shared
//!   counter passes the threshold — the structure exploited by Proposition 18
//!   and exercised by experiment E7.  (For finite warm-up `G = 0` it
//!   coincides with [`CasFetchInc`].)
//! * [`GossipFetchInc`] — a register-only "gossip" attempt: each process
//!   keeps its own increment count in a single-writer register and computes
//!   responses by summing the registers it reads.  Corollary 19 says no
//!   register-only non-blocking implementation can be eventually
//!   linearizable; this one produces duplicate responses under concurrency in
//!   every window of the execution, and the experiments show its minimal
//!   stabilization index chases the end of the history.

use evlin_history::ProcessId;
use evlin_sim::base::{objects, BaseObject};
use evlin_sim::program::{Implementation, ProcessLogic, TaskStep};
use evlin_spec::{CompareAndSwap, Invocation, Register, Value};

// ---------------------------------------------------------------------------
// CasFetchInc
// ---------------------------------------------------------------------------

/// A linearizable, lock-free fetch&increment from one compare&swap register:
/// `loop { v := read(); if cas(v, v+1) then return v }`.
#[derive(Debug, Clone)]
pub struct CasFetchInc {
    processes: usize,
    initial: i64,
}

impl CasFetchInc {
    /// Creates the implementation for `processes` processes, counter starting
    /// at zero.
    pub fn new(processes: usize) -> Self {
        CasFetchInc {
            processes,
            initial: 0,
        }
    }

    /// Creates the implementation with a non-zero initial counter value.
    pub fn starting_at(processes: usize, initial: i64) -> Self {
        CasFetchInc { processes, initial }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum CasPhase {
    Idle,
    Read,
    AwaitRead,
    AwaitCas { expected: i64 },
}

/// Programme state for [`CasFetchInc`].
#[derive(Debug, Clone)]
struct CasLogic {
    phase: CasPhase,
}

impl Implementation for CasFetchInc {
    fn name(&self) -> String {
        "compare&swap fetch&increment (linearizable, lock-free)".into()
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        vec![objects::cas(Value::from(self.initial))]
    }

    fn new_process(&self, _process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(CasLogic {
            phase: CasPhase::Idle,
        })
    }

    // Symmetric: every process runs the identical retry loop and no process
    // id ever enters the programme state, so the engine's symmetry reduction
    // may merge configurations that differ only by a process renaming.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(true)
    }
}

impl ProcessLogic for CasLogic {
    fn begin(&mut self, invocation: Invocation) {
        assert_eq!(invocation.method(), "fetch_inc");
        self.phase = CasPhase::Read;
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.phase.clone() {
            CasPhase::Idle => panic!("step called with no operation in progress"),
            CasPhase::Read => {
                self.phase = CasPhase::AwaitRead;
                TaskStep::Access {
                    object: 0,
                    invocation: CompareAndSwap::read(),
                }
            }
            CasPhase::AwaitRead => {
                let v = previous_response
                    .and_then(|v| v.as_int())
                    .expect("read returns an integer");
                self.phase = CasPhase::AwaitCas { expected: v };
                TaskStep::Access {
                    object: 0,
                    invocation: CompareAndSwap::cas(Value::from(v), Value::from(v + 1)),
                }
            }
            CasPhase::AwaitCas { expected } => {
                let ok = previous_response
                    .and_then(|v| v.as_bool())
                    .expect("cas returns a boolean");
                if ok {
                    self.phase = CasPhase::Idle;
                    TaskStep::Complete(Value::from(expected))
                } else {
                    // Contention: retry, issuing a fresh read whose response
                    // the next step (back in `AwaitRead`) will consume.
                    self.phase = CasPhase::AwaitRead;
                    TaskStep::Access {
                        object: 0,
                        invocation: CompareAndSwap::read(),
                    }
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// NoisyPrefixFetchInc
// ---------------------------------------------------------------------------

/// A fetch&increment whose responses are stale during a global warm-up.
///
/// Every operation performs the full compare&swap protocol, so the shared
/// counter always advances by one per operation; but if the slot obtained is
/// below `warmup`, the operation reports the process's *local* count of its
/// own operations instead of the true slot (duplicated across processes,
/// lower than the true value — the "temporarily inconsistent" counter of the
/// paper's introduction).  Once the shared counter reaches `warmup`, every
/// response is the true slot, so executions stabilize at the point where the
/// warm-up ends.
#[derive(Debug, Clone)]
pub struct NoisyPrefixFetchInc {
    processes: usize,
    warmup: i64,
}

impl NoisyPrefixFetchInc {
    /// Creates the implementation; the first `warmup` operations (globally)
    /// return stale local values.
    pub fn new(processes: usize, warmup: i64) -> Self {
        NoisyPrefixFetchInc { processes, warmup }
    }

    /// The warm-up threshold.
    pub fn warmup(&self) -> i64 {
        self.warmup
    }
}

/// Programme state for [`NoisyPrefixFetchInc`].
#[derive(Debug, Clone)]
struct NoisyLogic {
    inner: CasLogic,
    warmup: i64,
    /// Number of operations this process has completed so far.
    local_count: i64,
}

impl Implementation for NoisyPrefixFetchInc {
    fn name(&self) -> String {
        format!("noisy-prefix fetch&increment (warm-up {})", self.warmup)
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        vec![objects::cas(Value::from(0i64))]
    }

    fn new_process(&self, _process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(NoisyLogic {
            inner: CasLogic {
                phase: CasPhase::Idle,
            },
            warmup: self.warmup,
            local_count: 0,
        })
    }

    // Symmetric: the per-process local count is data, not an identity — the
    // programme never branches on *which* process it is.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(true)
    }
}

impl ProcessLogic for NoisyLogic {
    fn begin(&mut self, invocation: Invocation) {
        self.inner.begin(invocation);
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.inner.step(previous_response) {
            TaskStep::Complete(v) => {
                let slot = v.as_int().expect("fetch&inc returns an integer");
                let response = if slot < self.warmup {
                    // Warm-up: report a stale, process-local value.
                    self.local_count
                } else {
                    slot
                };
                self.local_count += 1;
                TaskStep::Complete(Value::from(response))
            }
            access => access,
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// GossipFetchInc
// ---------------------------------------------------------------------------

/// A register-only attempt at fetch&increment: process `i` stores how many
/// increments it has performed in single-writer register `i` and answers with
/// the sum of the registers it has read (its own count contributing the
/// pre-increment value).
///
/// Per Corollary 19 this cannot be an eventually linearizable implementation:
/// whenever two processes increment concurrently they can obtain the same
/// response, and this keeps happening arbitrarily late in the execution, so
/// no stabilization index works.
#[derive(Debug, Clone)]
pub struct GossipFetchInc {
    processes: usize,
}

impl GossipFetchInc {
    /// Creates the implementation for `processes` processes.
    pub fn new(processes: usize) -> Self {
        GossipFetchInc { processes }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum GossipPhase {
    Idle,
    /// Write own incremented count to own register.
    WriteOwn,
    AwaitWrite,
    /// Read register `k`, accumulating the sum of other processes' counts.
    Scan(usize),
}

/// Programme state for [`GossipFetchInc`].
#[derive(Debug, Clone)]
struct GossipLogic {
    me: ProcessId,
    n: usize,
    own_count: i64,
    sum_others: i64,
    phase: GossipPhase,
}

impl Implementation for GossipFetchInc {
    fn name(&self) -> String {
        "gossip fetch&increment (registers only, not eventually linearizable)".into()
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        (0..self.processes)
            .map(|_| objects::register(Value::from(0i64)))
            .collect()
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(GossipLogic {
            me: process,
            n: self.processes,
            own_count: 0,
            sum_others: 0,
            phase: GossipPhase::Idle,
        })
    }

    // Asymmetric: each programme writes to *its own* single-writer register
    // (`me` is baked into the logic), so process renamings do not map
    // executions to executions.
    fn process_symmetric_hint(&self) -> Option<bool> {
        Some(false)
    }
}

impl ProcessLogic for GossipLogic {
    fn begin(&mut self, invocation: Invocation) {
        assert_eq!(invocation.method(), "fetch_inc");
        self.phase = GossipPhase::WriteOwn;
        self.sum_others = 0;
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.phase.clone() {
            GossipPhase::Idle => panic!("step called with no operation in progress"),
            GossipPhase::WriteOwn => {
                self.own_count += 1;
                self.phase = GossipPhase::AwaitWrite;
                TaskStep::Access {
                    object: self.me.index(),
                    invocation: Register::write(Value::from(self.own_count)),
                }
            }
            GossipPhase::AwaitWrite => {
                let _ack = previous_response;
                self.phase = GossipPhase::Scan(0);
                self.scan_or_finish(0, None)
            }
            GossipPhase::Scan(k) => self.scan_or_finish(k + 1, previous_response),
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }
}

impl GossipLogic {
    fn scan_or_finish(&mut self, next: usize, previous: Option<Value>) -> TaskStep {
        if let Some(v) = previous {
            // Response of the read of register `next - 1` (skip our own).
            if next - 1 != self.me.index() {
                self.sum_others += v.as_int().unwrap_or(0);
            }
        }
        // Find the next register to read, skipping our own.
        let mut k = next;
        while k < self.n && k == self.me.index() {
            k += 1;
        }
        if k < self.n {
            self.phase = GossipPhase::Scan(k);
            TaskStep::Access {
                object: k,
                invocation: Register::read(),
            }
        } else {
            self.phase = GossipPhase::Idle;
            // The value before our own increment: others' counts plus our own
            // previous count.
            TaskStep::Complete(Value::from(self.sum_others + self.own_count - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_checker::{fi, weak_consistency};
    use evlin_history::ObjectUniverse;
    use evlin_sim::prelude::*;
    use evlin_spec::FetchIncrement;

    fn fi_universe() -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        u.add_object(FetchIncrement::new());
        u
    }

    #[test]
    fn cas_fetch_inc_is_linearizable_under_many_schedules() {
        let imp = CasFetchInc::new(3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 5);
        for seed in 0..20u64 {
            let mut s = RandomScheduler::seeded(seed);
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all, "seed {seed}");
            assert_eq!(
                fi::is_linearizable(&out.history, 0),
                Ok(true),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cas_fetch_inc_respects_initial_value() {
        let imp = CasFetchInc::starting_at(1, 7);
        let w = Workload::uniform(1, FetchIncrement::fetch_inc(), 3);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 1000);
        let responses: Vec<_> = out
            .history
            .complete_operations()
            .iter()
            .map(|o| o.response.clone().unwrap())
            .collect();
        assert_eq!(
            responses,
            vec![Value::from(7i64), Value::from(8i64), Value::from(9i64)]
        );
    }

    #[test]
    fn cas_retry_path_still_returns_distinct_values() {
        // The solo-burst scheduler interleaves read and cas steps of
        // different processes, forcing cas failures and retries.
        let imp = CasFetchInc::new(4);
        let w = Workload::uniform(4, FetchIncrement::fetch_inc(), 4);
        let mut s = SoloBurstScheduler::new(2);
        let out = run(&imp, &w, &mut s, 100_000);
        assert!(out.completed_all);
        assert_eq!(fi::is_linearizable(&out.history, 0), Ok(true));
    }

    #[test]
    fn noisy_prefix_is_weakly_consistent_and_stabilizes_at_warmup() {
        let warmup = 4i64;
        let imp = NoisyPrefixFetchInc::new(2, warmup);
        assert_eq!(imp.warmup(), warmup);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 6);
        let u = fi_universe();
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100_000);
        assert!(out.completed_all);
        // Not linearizable (stale duplicates during warm-up)…
        assert_eq!(fi::is_linearizable(&out.history, 0), Ok(false));
        // …but weakly consistent, and the stabilization index is positive yet
        // strictly smaller than the history length (it stops growing once the
        // warm-up is over).
        assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
        let t = fi::min_stabilization(&out.history, 0).unwrap();
        assert!(t > 0);
        assert!(t < out.history.len());
    }

    #[test]
    fn noisy_prefix_with_zero_warmup_is_linearizable() {
        let imp = NoisyPrefixFetchInc::new(2, 0);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 4);
        let mut s = RandomScheduler::seeded(3);
        let out = run(&imp, &w, &mut s, 100_000);
        assert!(out.completed_all);
        assert_eq!(fi::is_linearizable(&out.history, 0), Ok(true));
    }

    #[test]
    fn gossip_duplicates_survive_arbitrarily_late() {
        // Two processes running in lockstep duplicate responses in every
        // round, so the minimal stabilization index keeps chasing the end of
        // the history as it grows — the executable face of Corollary 19.
        let imp = GossipFetchInc::new(2);
        let u = fi_universe();
        let mut previous_t = 0usize;
        for ops in [2usize, 4, 6] {
            let w = Workload::uniform(2, FetchIncrement::fetch_inc(), ops);
            let mut s = RoundRobinScheduler::new();
            let out = run(&imp, &w, &mut s, 100_000);
            assert!(out.completed_all);
            assert!(weak_consistency::is_weakly_consistent(&out.history, &u));
            assert_eq!(fi::is_linearizable(&out.history, 0), Ok(false));
            let t = fi::min_stabilization(&out.history, 0).unwrap();
            assert!(
                t >= previous_t,
                "stabilization index should not shrink as the run grows"
            );
            assert!(
                t * 2 >= out.history.len(),
                "the gossip implementation must keep mis-counting late in the run \
                 (t = {t}, len = {})",
                out.history.len()
            );
            previous_t = t;
        }
    }

    #[test]
    fn symmetry_markers_drive_the_reduction_engine() {
        use evlin_sim::engine::{self, EngineOptions, Reduction, Visit};
        let imp = CasFetchInc::new(3);
        assert_eq!(imp.process_symmetric_hint(), Some(true));
        assert_eq!(GossipFetchInc::new(2).process_symmetric_hint(), Some(false));
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 1);
        let run = |reduction| {
            engine::explore(
                &imp,
                &w,
                &EngineOptions {
                    reduction,
                    workers: Some(1),
                    ..EngineOptions::default()
                },
                |_, _| Visit::Continue,
            )
        };
        let raw = run(Reduction::None);
        let reduced = run(Reduction::SleepSetSymmetry);
        assert!(!raw.truncated && !reduced.truncated);
        assert!(
            reduced.visited < raw.visited,
            "marker-enabled reduction must shrink the CAS state space: {raw:?} vs {reduced:?}"
        );
        // And the verdict is untouched: no interleaving ever duplicates a
        // fetch&inc response (the compare&swap loop is linearizable).
        for reduction in [Reduction::None, Reduction::SleepSetSymmetry] {
            let violation = engine::find_history_violation(
                &imp,
                &w,
                &EngineOptions {
                    reduction,
                    workers: Some(1),
                    ..EngineOptions::default()
                },
                |h| {
                    let responses: Vec<i64> = h
                        .complete_operations()
                        .iter()
                        .filter_map(|o| o.response.as_ref().and_then(|v| v.as_int()))
                        .collect();
                    let mut distinct = responses.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    distinct.len() == responses.len()
                },
            );
            assert!(violation.is_none(), "{reduction:?}");
        }
    }

    #[test]
    fn gossip_solo_runs_are_correct() {
        // Without concurrency the gossip implementation counts correctly —
        // the impossibility only bites under contention.
        let imp = GossipFetchInc::new(2);
        let w = Workload::new(vec![vec![FetchIncrement::fetch_inc(); 5], Vec::new()]);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 10_000);
        assert!(out.completed_all);
        assert_eq!(fi::is_linearizable(&out.history, 0), Ok(true));
    }
}
