//! # evlin-algorithms
//!
//! Executable versions of the constructions in Guerraoui & Ruppert
//! (PODC 2014), written against the `evlin-sim` substrate:
//!
//! * [`prop16`] — Proposition 16: a wait-free, eventually linearizable
//!   consensus implementation from single-writer registers (which may
//!   themselves be only eventually linearizable);
//! * [`fig1`] — Proposition 11 / Figure 1: the announce-and-verify wrapper
//!   that upgrades any implementation satisfying the liveness half of
//!   eventual linearizability ("`t`-linearizable for some `t`") into one that
//!   also satisfies the safety half (weak consistency), using linearizable
//!   registers;
//! * [`test_and_set_ev`] — the trivial eventually linearizable test&set of
//!   Section 4 (no shared objects at all);
//! * [`fetch_inc`] — fetch&increment implementations: the linearizable
//!   compare&swap loop from the introduction, a batching / noisy-prefix
//!   variant whose executions stabilize only after a warm-up (the subject of
//!   the Proposition 18 experiments), and a register-only gossip attempt that
//!   can never stabilize (Corollary 19);
//! * [`local_copy`] — the Theorem 12 transformation `I ↦ I′` that replaces
//!   every shared base object with process-local copies.
//!
//! Every implementation here is a [`evlin_sim::program::Implementation`], so
//! it can be run under any scheduler, explored exhaustively, model-checked
//! with `evlin-checker`, frozen by the Proposition 18 machinery, and
//! benchmarked.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cas_consensus;
pub mod encode;
pub mod fetch_inc;
pub mod fig1;
pub mod local_copy;
pub mod prop16;
pub mod test_and_set_ev;
pub mod universal;

pub use cas_consensus::CasConsensusSim;
pub use fetch_inc::{CasFetchInc, GossipFetchInc, NoisyPrefixFetchInc};
pub use fig1::Fig1Wrapper;
pub use local_copy::LocalCopy;
pub use prop16::Prop16Consensus;
pub use test_and_set_ev::TestAndSetEv;
pub use universal::UniversalConstruction;
