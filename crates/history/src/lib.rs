//! # evlin-history
//!
//! Events, operations and histories of concurrent executions, following
//! Section 3 of Guerraoui & Ruppert (PODC 2014).
//!
//! A *history* is a sequence of invocation and response [`Event`]s, each
//! performed by a process on an object.  This crate provides:
//!
//! * [`History`] — the event sequence, with the projections `H|p`
//!   ([`History::project_process`]) and `H|o` ([`History::project_object`])
//!   used throughout the paper, well-formedness and sequentiality checks,
//!   prefix/suffix slicing, and operation matching;
//! * [`ObjectUniverse`] — the finite set of objects (type + initial state) a
//!   history talks about, needed to decide legality;
//! * [`legal`] — legality of sequential histories with respect to the
//!   objects' sequential specifications;
//! * [`HistoryBuilder`] — an ergonomic way to write histories in tests;
//! * [`generator`] — random legal sequential histories, linearizable-by-
//!   construction concurrent histories, and perturbations used to produce
//!   negative test cases for the checkers.
//!
//! ## Example
//!
//! ```
//! use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
//! use evlin_spec::{Register, Value};
//!
//! let mut universe = ObjectUniverse::new();
//! let reg = universe.add_object(Register::new(Value::from(0i64)));
//!
//! let history = HistoryBuilder::new()
//!     .invoke(ProcessId(0), reg, Register::write(Value::from(1i64)))
//!     .invoke(ProcessId(1), reg, Register::read())
//!     .respond(ProcessId(0), reg, Value::Unit)
//!     .respond(ProcessId(1), reg, Value::from(1i64))
//!     .build();
//!
//! assert!(history.is_well_formed());
//! assert_eq!(history.operations().len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod event;
pub mod generator;
mod history;
mod ids;
pub mod legal;
mod op;
mod universe;

pub use builder::HistoryBuilder;
pub use event::{Event, EventKind};
pub use history::History;
pub use ids::{ObjectId, ProcessId};
pub use op::{OpId, OperationRecord};
pub use universe::ObjectUniverse;

/// Commonly used items re-exported for glob import in downstream crates.
pub mod prelude {
    pub use crate::{
        Event, EventKind, History, HistoryBuilder, ObjectId, ObjectUniverse, OpId, OperationRecord,
        ProcessId,
    };
}
