//! Operations: a matched invocation/response pair within a history.

use crate::{ObjectId, ProcessId};
use evlin_spec::{Invocation, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an operation within a history.
///
/// Operations are numbered by the position of their invocation event among
/// all invocation events of the history (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OpId(pub usize);

impl OpId {
    /// The numeric index of the operation.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An operation extracted from a history: its invocation, its response (if it
/// terminated) and the positions of both events in the history.
///
/// "An operation consists of an invocation event and its matching response
/// event (if it exists)" (paper, Section 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationRecord {
    /// The operation's identifier (position among invocations).
    pub id: OpId,
    /// The invoking process.
    pub process: ProcessId,
    /// The object the operation is applied to.
    pub object: ObjectId,
    /// The invocation (method + arguments).
    pub invocation: Invocation,
    /// The response value, or `None` if the operation is pending.
    pub response: Option<Value>,
    /// Index of the invocation event in the history.
    pub invoke_index: usize,
    /// Index of the response event in the history, if the operation completed.
    pub respond_index: Option<usize>,
}

impl OperationRecord {
    /// Returns `true` if the operation received its response in the history.
    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }

    /// Returns `true` if the operation is still pending at the end of the
    /// history.
    pub fn is_pending(&self) -> bool {
        self.response.is_none()
    }

    /// Returns `true` if this operation's response precedes `other`'s
    /// invocation, i.e. this operation *precedes* `other` in the real-time
    /// order of the history.
    pub fn precedes(&self, other: &OperationRecord) -> bool {
        match self.respond_index {
            Some(r) => r < other.invoke_index,
            None => false,
        }
    }
}

impl fmt::Display for OperationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.response {
            Some(r) => write!(
                f,
                "{} {} {} on {} -> {}",
                self.id, self.process, self.invocation, self.object, r
            ),
            None => write!(
                f,
                "{} {} {} on {} (pending)",
                self.id, self.process, self.invocation, self.object
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: usize, invoke: usize, respond: Option<usize>) -> OperationRecord {
        OperationRecord {
            id: OpId(id),
            process: ProcessId(0),
            object: ObjectId(0),
            invocation: Invocation::nullary("read"),
            response: respond.map(|_| Value::Unit),
            invoke_index: invoke,
            respond_index: respond,
        }
    }

    #[test]
    fn completion_predicates() {
        assert!(op(0, 0, Some(1)).is_complete());
        assert!(op(0, 0, None).is_pending());
    }

    #[test]
    fn precedes_uses_real_time_order() {
        let a = op(0, 0, Some(1));
        let b = op(1, 2, Some(3));
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        // A pending operation precedes nothing.
        let pending = op(2, 0, None);
        assert!(!pending.precedes(&b));
        // Overlapping operations precede each other in neither direction.
        let c = op(3, 0, Some(3));
        let d = op(4, 1, Some(2));
        assert!(!c.precedes(&d));
        assert!(!d.precedes(&c));
    }

    #[test]
    fn display_is_informative() {
        assert!(format!("{}", op(0, 0, Some(1))).contains("->"));
        assert!(format!("{}", op(0, 0, None)).contains("pending"));
    }
}
