//! A fluent builder for writing histories in tests and examples.

use crate::{History, ObjectId, ProcessId};
use evlin_spec::{Invocation, Value};

/// Builds a [`History`] event by event.
///
/// The builder is non-consuming-friendly: every method takes and returns
/// `self` so one-liners chain nicely, and [`HistoryBuilder::build`] produces
/// the history.
///
/// # Example
///
/// The fetch&increment counterexample from Section 3.2 of the paper (first
/// four events):
///
/// ```
/// use evlin_history::{HistoryBuilder, ProcessId, ObjectId};
/// use evlin_spec::{FetchIncrement, Value};
///
/// let x = ObjectId(0);
/// let h = HistoryBuilder::new()
///     .complete(ProcessId(0), x, FetchIncrement::fetch_inc(), Value::from(0i64))
///     .complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(0i64))
///     .build();
/// assert_eq!(h.len(), 4);
/// assert!(h.is_well_formed());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryBuilder {
    history: History,
}

impl HistoryBuilder {
    /// Creates a builder holding an empty history.
    pub fn new() -> Self {
        HistoryBuilder {
            history: History::new(),
        }
    }

    /// Appends an invocation event.
    pub fn invoke(mut self, process: ProcessId, object: ObjectId, invocation: Invocation) -> Self {
        self.history.push_invoke(process, object, invocation);
        self
    }

    /// Appends a response event.
    pub fn respond(mut self, process: ProcessId, object: ObjectId, value: Value) -> Self {
        self.history.push_respond(process, object, value);
        self
    }

    /// Appends an invocation immediately followed by its response — one
    /// complete operation with no concurrency.
    pub fn complete(
        self,
        process: ProcessId,
        object: ObjectId,
        invocation: Invocation,
        response: Value,
    ) -> Self {
        self.invoke(process, object, invocation)
            .respond(process, object, response)
    }

    /// Appends all events of another history.
    pub fn extend_from(mut self, other: &History) -> Self {
        self.history.extend(other.iter().cloned());
        self
    }

    /// Finishes building and returns the history.
    pub fn build(self) -> History {
        self.history
    }
}

impl From<HistoryBuilder> for History {
    fn from(b: HistoryBuilder) -> History {
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::Register;

    #[test]
    fn builds_interleaved_history() {
        let h = HistoryBuilder::new()
            .invoke(
                ProcessId(0),
                ObjectId(0),
                Register::write(Value::from(1i64)),
            )
            .invoke(ProcessId(1), ObjectId(0), Register::read())
            .respond(ProcessId(1), ObjectId(0), Value::from(0i64))
            .respond(ProcessId(0), ObjectId(0), Value::Unit)
            .build();
        assert_eq!(h.len(), 4);
        assert!(h.is_well_formed());
        assert!(!h.is_sequential());
    }

    #[test]
    fn complete_adds_two_events() {
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                ObjectId(0),
                Register::read(),
                Value::from(0i64),
            )
            .build();
        assert_eq!(h.len(), 2);
        assert!(h.is_sequential());
    }

    #[test]
    fn extend_from_concatenates() {
        let a = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                ObjectId(0),
                Register::read(),
                Value::from(0i64),
            )
            .build();
        let b = HistoryBuilder::new()
            .extend_from(&a)
            .extend_from(&a)
            .build();
        assert_eq!(b.len(), 4);
        let via_into: History = HistoryBuilder::new().extend_from(&a).into();
        assert_eq!(via_into, a);
    }
}
