//! Legality of sequential histories.
//!
//! A sequential history is *legal* if, for each object `o`, the subsequence
//! `H|o` conforms to `o`'s sequential specification starting from its initial
//! state (paper, Section 3).  Because object types may have (finite)
//! non-determinism, legality is decided by tracking the *set* of states an
//! object could be in after each operation.

use crate::{History, ObjectId, ObjectUniverse, OperationRecord};
use evlin_spec::{Invocation, Value};
use std::collections::BTreeSet;

/// One step of a candidate sequential execution: an invocation on an object
/// together with the response it is supposed to return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqStep {
    /// The object the operation is applied to.
    pub object: ObjectId,
    /// The invocation.
    pub invocation: Invocation,
    /// The expected response.
    pub response: Value,
}

impl SeqStep {
    /// Convenience constructor.
    pub fn new(object: ObjectId, invocation: Invocation, response: Value) -> Self {
        SeqStep {
            object,
            invocation,
            response,
        }
    }
}

impl From<&OperationRecord> for SeqStep {
    /// Converts a completed operation record into a sequential step.
    ///
    /// # Panics
    ///
    /// Panics if the operation is pending (has no response).
    fn from(op: &OperationRecord) -> Self {
        SeqStep {
            object: op.object,
            invocation: op.invocation.clone(),
            response: op
                .response
                .clone()
                .expect("cannot build a sequential step from a pending operation"),
        }
    }
}

/// Checks whether a sequence of (invocation, response) steps is legal with
/// respect to the universe's sequential specifications.
///
/// Steps on different objects are independent; for each object the possible
/// state set starts at `{q0}` and each step keeps only the successor states
/// reachable with the step's response.  The sequence is legal iff no object's
/// possible state set ever becomes empty.
pub fn is_legal_step_sequence(steps: &[SeqStep], universe: &ObjectUniverse) -> bool {
    let mut states: Vec<Option<BTreeSet<Value>>> = vec![None; universe.len()];
    for step in steps {
        let idx = step.object.index();
        if idx >= universe.len() {
            return false;
        }
        let ty = universe.object_type(step.object);
        let possible = states[idx].get_or_insert_with(|| {
            let mut s = BTreeSet::new();
            s.insert(universe.initial_state(step.object).clone());
            s
        });
        let mut next: BTreeSet<Value> = BTreeSet::new();
        for q in possible.iter() {
            for q2 in ty.next_states_for_response(q, &step.invocation, &step.response) {
                next.insert(q2);
            }
        }
        if next.is_empty() {
            return false;
        }
        *possible = next;
    }
    true
}

/// Checks whether a *sequential* history is legal.
///
/// Returns `false` if the history is not sequential.  A trailing pending
/// invocation (allowed by the definition of a sequential history) is ignored
/// for legality purposes.
pub fn is_legal_sequential(history: &History, universe: &ObjectUniverse) -> bool {
    if !history.is_sequential() {
        return false;
    }
    let steps: Vec<SeqStep> = history
        .complete_operations()
        .iter()
        .map(SeqStep::from)
        .collect();
    is_legal_step_sequence(&steps, universe)
}

/// Replays a sequence of invocations against deterministic objects and
/// returns the responses the objects would produce, or `None` if some type is
/// not deterministic or some invocation is not enabled.
///
/// This is the workhorse used to *construct* linearizations and to implement
/// local simulation (Theorem 12).
pub fn replay_deterministic(
    invocations: &[(ObjectId, Invocation)],
    universe: &ObjectUniverse,
) -> Option<Vec<Value>> {
    let mut states: Vec<Value> = universe
        .object_ids()
        .iter()
        .map(|id| universe.initial_state(*id).clone())
        .collect();
    let mut responses = Vec::with_capacity(invocations.len());
    for (object, inv) in invocations {
        let idx = object.index();
        if idx >= states.len() {
            return None;
        }
        let ty = universe.object_type(*object);
        match ty.apply_deterministic(&states[idx], inv) {
            Ok((resp, next)) => {
                states[idx] = next;
                responses.push(resp);
            }
            Err(_) => return None,
        }
    }
    Some(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, ProcessId};
    use evlin_spec::{Consensus, FetchIncrement, Register, Value};

    fn universe() -> (ObjectUniverse, ObjectId, ObjectId) {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let f = u.add_object(FetchIncrement::new());
        (u, r, f)
    }

    #[test]
    fn legal_register_sequence() {
        let (u, r, _) = universe();
        let steps = vec![
            SeqStep::new(r, Register::read(), Value::from(0i64)),
            SeqStep::new(r, Register::write(Value::from(4i64)), Value::Unit),
            SeqStep::new(r, Register::read(), Value::from(4i64)),
        ];
        assert!(is_legal_step_sequence(&steps, &u));
    }

    #[test]
    fn illegal_register_read() {
        let (u, r, _) = universe();
        let steps = vec![
            SeqStep::new(r, Register::write(Value::from(4i64)), Value::Unit),
            SeqStep::new(r, Register::read(), Value::from(0i64)), // stale
        ];
        assert!(!is_legal_step_sequence(&steps, &u));
    }

    #[test]
    fn fetch_inc_values_must_count_up() {
        let (u, _, f) = universe();
        let ok = vec![
            SeqStep::new(f, FetchIncrement::fetch_inc(), Value::from(0i64)),
            SeqStep::new(f, FetchIncrement::fetch_inc(), Value::from(1i64)),
        ];
        assert!(is_legal_step_sequence(&ok, &u));
        let dup = vec![
            SeqStep::new(f, FetchIncrement::fetch_inc(), Value::from(0i64)),
            SeqStep::new(f, FetchIncrement::fetch_inc(), Value::from(0i64)),
        ];
        assert!(!is_legal_step_sequence(&dup, &u));
    }

    #[test]
    fn sequential_history_legality() {
        let (u, r, f) = universe();
        let good = HistoryBuilder::new()
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .complete(
                ProcessId(1),
                f,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                f,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert!(is_legal_sequential(&good, &u));

        let bad_resp = HistoryBuilder::new()
            .complete(ProcessId(0), r, Register::read(), Value::from(9i64))
            .build();
        assert!(!is_legal_sequential(&bad_resp, &u));

        // Not sequential at all.
        let concurrent = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::read())
            .invoke(ProcessId(1), r, Register::read())
            .respond(ProcessId(0), r, Value::from(0i64))
            .respond(ProcessId(1), r, Value::from(0i64))
            .build();
        assert!(!is_legal_sequential(&concurrent, &u));
    }

    #[test]
    fn trailing_pending_invocation_is_tolerated() {
        let (u, r, _) = universe();
        let h = HistoryBuilder::new()
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .invoke(ProcessId(0), r, Register::read())
            .build();
        assert!(h.is_sequential());
        assert!(is_legal_sequential(&h, &u));
    }

    #[test]
    fn consensus_legality_enforces_agreement_with_first() {
        let mut u = ObjectUniverse::new();
        let c = u.add_object(Consensus::new());
        let good = vec![
            SeqStep::new(c, Consensus::propose(Value::from(3i64)), Value::from(3i64)),
            SeqStep::new(c, Consensus::propose(Value::from(5i64)), Value::from(3i64)),
        ];
        assert!(is_legal_step_sequence(&good, &u));
        let bad = vec![
            SeqStep::new(c, Consensus::propose(Value::from(3i64)), Value::from(3i64)),
            SeqStep::new(c, Consensus::propose(Value::from(5i64)), Value::from(5i64)),
        ];
        assert!(!is_legal_step_sequence(&bad, &u));
    }

    #[test]
    fn replay_deterministic_produces_spec_responses() {
        let (u, r, f) = universe();
        let invs = vec![
            (f, FetchIncrement::fetch_inc()),
            (f, FetchIncrement::fetch_inc()),
            (r, Register::write(Value::from(2i64))),
            (r, Register::read()),
        ];
        let resp = replay_deterministic(&invs, &u).unwrap();
        assert_eq!(
            resp,
            vec![
                Value::from(0i64),
                Value::from(1i64),
                Value::Unit,
                Value::from(2i64)
            ]
        );
        // Unknown invocation makes replay fail.
        let bad = vec![(r, Invocation::nullary("bogus"))];
        assert!(replay_deterministic(&bad, &u).is_none());
    }

    #[test]
    fn out_of_range_object_is_illegal() {
        let (u, _, _) = universe();
        let steps = vec![SeqStep::new(
            ObjectId(99),
            Register::read(),
            Value::from(0i64),
        )];
        assert!(!is_legal_step_sequence(&steps, &u));
        assert!(replay_deterministic(&[(ObjectId(99), Register::read())], &u).is_none());
    }
}
