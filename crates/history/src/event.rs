//! Invocation and response events.

use crate::{ObjectId, ProcessId};
use evlin_spec::{Invocation, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The payload of an event: either an operation invocation or a response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// An operation invocation.
    Invoke(Invocation),
    /// An operation response carrying the returned value.
    Respond(Value),
}

impl EventKind {
    /// Returns `true` if this is an invocation event.
    pub fn is_invoke(&self) -> bool {
        matches!(self, EventKind::Invoke(_))
    }

    /// Returns `true` if this is a response event.
    pub fn is_respond(&self) -> bool {
        matches!(self, EventKind::Respond(_))
    }
}

/// A single event `⟨p, o, x⟩` of a history: process `p` either invokes an
/// operation on object `o` or receives a response from it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The process performing the event.
    pub process: ProcessId,
    /// The object the event refers to.
    pub object: ObjectId,
    /// Invocation or response.
    pub kind: EventKind,
}

impl Event {
    /// Creates an invocation event.
    pub fn invoke(process: ProcessId, object: ObjectId, invocation: Invocation) -> Self {
        Event {
            process,
            object,
            kind: EventKind::Invoke(invocation),
        }
    }

    /// Creates a response event.
    pub fn respond(process: ProcessId, object: ObjectId, value: Value) -> Self {
        Event {
            process,
            object,
            kind: EventKind::Respond(value),
        }
    }

    /// Returns `true` if this is an invocation event.
    pub fn is_invoke(&self) -> bool {
        self.kind.is_invoke()
    }

    /// Returns `true` if this is a response event.
    pub fn is_respond(&self) -> bool {
        self.kind.is_respond()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Invoke(inv) => write!(f, "⟨{}, {}, {}⟩", self.process, self.object, inv),
            EventKind::Respond(v) => write!(f, "⟨{}, {}, ret {}⟩", self.process, self.object, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let inv = Event::invoke(ProcessId(0), ObjectId(1), Invocation::nullary("read"));
        assert!(inv.is_invoke());
        assert!(!inv.is_respond());

        let resp = Event::respond(ProcessId(0), ObjectId(1), Value::from(3i64));
        assert!(resp.is_respond());
        assert!(!resp.is_invoke());
    }

    #[test]
    fn display_matches_paper_notation() {
        let inv = Event::invoke(ProcessId(2), ObjectId(0), Invocation::nullary("fetch_inc"));
        assert_eq!(format!("{inv}"), "⟨p2, o0, fetch_inc()⟩");
        let resp = Event::respond(ProcessId(2), ObjectId(0), Value::from(5i64));
        assert_eq!(format!("{resp}"), "⟨p2, o0, ret 5⟩");
    }
}
