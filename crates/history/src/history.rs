//! The [`History`] type: a sequence of events with the projections and
//! structural predicates used throughout the paper.

use crate::{Event, EventKind, ObjectId, OpId, OperationRecord, ProcessId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A history: a finite sequence of invocation and response events describing
/// a computation of the distributed system (paper, Section 3).
///
/// Infinite histories are represented in this workspace by long finite
/// histories together with statements quantified over all their prefixes; the
/// structural helpers here ([`History::prefix`], [`History::events`], the
/// projections) are what the checkers in `evlin-checker` build on.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Creates a history from a vector of events.
    pub fn from_events(events: Vec<Event>) -> Self {
        History { events }
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Appends an invocation event.
    pub fn push_invoke(
        &mut self,
        process: ProcessId,
        object: ObjectId,
        invocation: evlin_spec::Invocation,
    ) {
        self.push(Event::invoke(process, object, invocation));
    }

    /// Appends a response event.
    pub fn push_respond(&mut self, process: ProcessId, object: ObjectId, value: evlin_spec::Value) {
        self.push(Event::respond(process, object, value));
    }

    /// The number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The prefix consisting of the first `n` events (all events if `n`
    /// exceeds the length).
    pub fn prefix(&self, n: usize) -> History {
        History {
            events: self.events.iter().take(n).cloned().collect(),
        }
    }

    /// The suffix obtained by removing the first `t` events — the `H'` of
    /// Definition 2.
    pub fn suffix(&self, t: usize) -> History {
        History {
            events: self.events.iter().skip(t).cloned().collect(),
        }
    }

    /// Concatenates two histories.
    pub fn concat(&self, other: &History) -> History {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        History { events }
    }

    /// The projection `H|p`: the subsequence of events performed by `process`.
    pub fn project_process(&self, process: ProcessId) -> History {
        History {
            events: self
                .events
                .iter()
                .filter(|e| e.process == process)
                .cloned()
                .collect(),
        }
    }

    /// The projection `H|o`: the subsequence of events at `object`.
    pub fn project_object(&self, object: ObjectId) -> History {
        self.project_object_indexed(object).0
    }

    /// Like [`History::project_object`], but also returns, for each event of
    /// the projection, its index in the original history.  Lemma 7's proof
    /// ("choose `t` large enough so that the first `t` events of `H` include
    /// the first `t_o` events of `H|o`") needs exactly this mapping.
    pub fn project_object_indexed(&self, object: ObjectId) -> (History, Vec<usize>) {
        let mut events = Vec::new();
        let mut indices = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.object == object {
                events.push(e.clone());
                indices.push(i);
            }
        }
        (History { events }, indices)
    }

    /// The set of processes that appear in the history.
    pub fn processes(&self) -> Vec<ProcessId> {
        let set: BTreeSet<ProcessId> = self.events.iter().map(|e| e.process).collect();
        set.into_iter().collect()
    }

    /// The set of objects that appear in the history.
    pub fn objects(&self) -> Vec<ObjectId> {
        let set: BTreeSet<ObjectId> = self.events.iter().map(|e| e.object).collect();
        set.into_iter().collect()
    }

    /// Matches invocations with their responses and returns one
    /// [`OperationRecord`] per invocation, ordered by invocation position.
    ///
    /// Matching assumes the history is well-formed (each process's
    /// subsequence is sequential), which is what the paper assumes of every
    /// history: the response matching an invocation by process `p` is the
    /// next response event by `p`.
    pub fn operations(&self) -> Vec<OperationRecord> {
        let mut ops: Vec<OperationRecord> = Vec::new();
        // For each process, the index (into `ops`) of its pending operation.
        let mut pending: std::collections::BTreeMap<ProcessId, usize> =
            std::collections::BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match &e.kind {
                EventKind::Invoke(inv) => {
                    let id = OpId(ops.len());
                    pending.insert(e.process, ops.len());
                    ops.push(OperationRecord {
                        id,
                        process: e.process,
                        object: e.object,
                        invocation: inv.clone(),
                        response: None,
                        invoke_index: i,
                        respond_index: None,
                    });
                }
                EventKind::Respond(v) => {
                    if let Some(&idx) = pending.get(&e.process) {
                        ops[idx].response = Some(v.clone());
                        ops[idx].respond_index = Some(i);
                        pending.remove(&e.process);
                    }
                    // A response with no pending invocation makes the history
                    // ill-formed; `operations` ignores it, `is_well_formed`
                    // reports it.
                }
            }
        }
        ops
    }

    /// The operations that completed (received a response) in the history.
    pub fn complete_operations(&self) -> Vec<OperationRecord> {
        self.operations()
            .into_iter()
            .filter(|op| op.is_complete())
            .collect()
    }

    /// The operations that are still pending at the end of the history.
    pub fn pending_operations(&self) -> Vec<OperationRecord> {
        self.operations()
            .into_iter()
            .filter(|op| op.is_pending())
            .collect()
    }

    /// Whether the history is *well-formed*: for each process `p`, `H|p` is
    /// sequential — invocations and responses by `p` strictly alternate
    /// starting with an invocation, and each response is on the same object
    /// as the invocation it matches.
    pub fn is_well_formed(&self) -> bool {
        let mut pending: std::collections::BTreeMap<ProcessId, ObjectId> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Invoke(_) => {
                    if pending.contains_key(&e.process) {
                        return false; // invocation while another op is pending
                    }
                    pending.insert(e.process, e.object);
                }
                EventKind::Respond(_) => match pending.get(&e.process) {
                    Some(obj) if *obj == e.object => {
                        pending.remove(&e.process);
                    }
                    _ => return false, // response without matching invocation
                },
            }
        }
        true
    }

    /// Whether the history is *sequential*: it starts with an invocation and
    /// each invocation (except possibly the last) is immediately followed by
    /// its matching response.
    pub fn is_sequential(&self) -> bool {
        let mut i = 0;
        while i < self.events.len() {
            let e = &self.events[i];
            if !e.is_invoke() {
                return false;
            }
            if i + 1 == self.events.len() {
                return true; // trailing pending invocation is allowed
            }
            let r = &self.events[i + 1];
            if !r.is_respond() || r.process != e.process || r.object != e.object {
                return false;
            }
            i += 2;
        }
        true
    }

    /// Returns true if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &History) -> bool {
        self.len() <= other.len() && self.events[..] == other.events[..self.len()]
    }

    /// Renames every process in place: process `p` becomes `map[p.index()]`.
    ///
    /// Used by the simulator's symmetry reduction, which rewrites whole
    /// configurations (including their recorded histories) under a process
    /// permutation before merging symmetric states.
    ///
    /// # Panics
    ///
    /// Panics if some event's process index is not covered by `map`.
    pub fn rename_processes(&mut self, map: &[ProcessId]) {
        for e in &mut self.events {
            e.process = map[e.process.index()];
        }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:4}: {e}")?;
        }
        Ok(())
    }
}

impl FromIterator<Event> for History {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for History {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for History {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{Invocation, Value};

    fn p(i: usize) -> ProcessId {
        ProcessId(i)
    }
    fn o(i: usize) -> ObjectId {
        ObjectId(i)
    }

    fn sample() -> History {
        // p0: write(1) on o0          [0, 2]
        // p1: read()  on o0           [1, 3]
        // p0: read()  on o1 (pending) [4]
        History::from_events(vec![
            Event::invoke(p(0), o(0), Invocation::unary("write", Value::from(1i64))),
            Event::invoke(p(1), o(0), Invocation::nullary("read")),
            Event::respond(p(0), o(0), Value::Unit),
            Event::respond(p(1), o(0), Value::from(1i64)),
            Event::invoke(p(0), o(1), Invocation::nullary("read")),
        ])
    }

    #[test]
    fn lengths_prefix_suffix() {
        let h = sample();
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
        assert_eq!(h.prefix(2).len(), 2);
        assert_eq!(h.prefix(99).len(), 5);
        assert_eq!(h.suffix(3).len(), 2);
        assert!(h.prefix(3).is_prefix_of(&h));
        assert!(!h.suffix(1).is_prefix_of(&h));
    }

    #[test]
    fn projections() {
        let h = sample();
        assert_eq!(h.project_process(p(0)).len(), 3);
        assert_eq!(h.project_process(p(1)).len(), 2);
        assert_eq!(h.project_object(o(0)).len(), 4);
        assert_eq!(h.project_object(o(1)).len(), 1);
        let (proj, idx) = h.project_object_indexed(o(0));
        assert_eq!(proj.len(), 4);
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert_eq!(h.processes(), vec![p(0), p(1)]);
        assert_eq!(h.objects(), vec![o(0), o(1)]);
    }

    #[test]
    fn operations_matching() {
        let h = sample();
        let ops = h.operations();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].response, Some(Value::Unit));
        assert_eq!(ops[1].response, Some(Value::from(1i64)));
        assert!(ops[2].is_pending());
        assert_eq!(h.complete_operations().len(), 2);
        assert_eq!(h.pending_operations().len(), 1);
        assert!(ops[0].precedes(&ops[2]));
        assert!(!ops[0].precedes(&ops[1]));
    }

    #[test]
    fn well_formedness() {
        assert!(sample().is_well_formed());

        // Response without invocation.
        let bad = History::from_events(vec![Event::respond(p(0), o(0), Value::Unit)]);
        assert!(!bad.is_well_formed());

        // Two invocations by the same process without a response in between.
        let bad = History::from_events(vec![
            Event::invoke(p(0), o(0), Invocation::nullary("read")),
            Event::invoke(p(0), o(1), Invocation::nullary("read")),
        ]);
        assert!(!bad.is_well_formed());

        // Response on a different object than the pending invocation.
        let bad = History::from_events(vec![
            Event::invoke(p(0), o(0), Invocation::nullary("read")),
            Event::respond(p(0), o(1), Value::Unit),
        ]);
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn sequentiality() {
        let seq = History::from_events(vec![
            Event::invoke(p(0), o(0), Invocation::nullary("read")),
            Event::respond(p(0), o(0), Value::from(0i64)),
            Event::invoke(p(1), o(0), Invocation::nullary("read")),
        ]);
        assert!(seq.is_sequential());
        assert!(!sample().is_sequential());
        assert!(History::new().is_sequential());
    }

    #[test]
    fn concat_and_collect() {
        let h = sample();
        let doubled = h.concat(&h);
        assert_eq!(doubled.len(), 10);
        let collected: History = h.iter().cloned().collect();
        assert_eq!(collected, h);
        let mut extended = History::new();
        extended.extend(h.clone());
        assert_eq!(extended, h);
    }

    #[test]
    fn display_lists_events() {
        let text = format!("{}", sample());
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("write"));
    }

    #[test]
    fn rename_processes_swaps_identities() {
        let mut h = sample();
        h.rename_processes(&[p(1), p(0)]);
        assert_eq!(h.project_process(p(1)).len(), 3);
        assert_eq!(h.project_process(p(0)).len(), 2);
        // Renaming twice with the same transposition restores the original.
        h.rename_processes(&[p(1), p(0)]);
        assert_eq!(h, sample());
    }
}
