//! Random history generation.
//!
//! The checkers in `evlin-checker` need three kinds of inputs:
//!
//! 1. **legal sequential histories** — produced by replaying random
//!    invocations against the sequential specifications
//!    ([`random_sequential_legal`]);
//! 2. **linearizable-by-construction concurrent histories** — produced by
//!    taking a legal sequential history as the intended linearization and
//!    stretching operations so they overlap ([`concurrentize`]); by
//!    construction the original sequential history is a witness
//!    linearization, so a sound checker must accept the result;
//! 3. **likely-violating histories** — produced by corrupting responses of a
//!    linearizable history ([`perturb_responses`]), used as negative test
//!    cases and for differential testing of the checkers.

use crate::{Event, History, ObjectUniverse, ProcessId};
use evlin_spec::Value;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`random_sequential_legal`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of processes issuing operations.
    pub processes: usize,
    /// Total number of operations to generate.
    pub operations: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            processes: 2,
            operations: 10,
        }
    }
}

/// Generates a random *legal sequential* history over the universe: each
/// operation picks a random process, object and sampled invocation, and the
/// response is obtained from the sequential specification (choosing uniformly
/// among the transition relation's outcomes for non-deterministic types).
pub fn random_sequential_legal<R: Rng>(
    universe: &ObjectUniverse,
    spec: &WorkloadSpec,
    rng: &mut R,
) -> History {
    let mut history = History::new();
    let mut states: Vec<Value> = universe
        .object_ids()
        .iter()
        .map(|id| universe.initial_state(*id).clone())
        .collect();
    let object_ids = universe.object_ids();
    if object_ids.is_empty() || spec.processes == 0 {
        return history;
    }
    let mut generated = 0;
    let mut attempts = 0;
    while generated < spec.operations && attempts < spec.operations * 20 {
        attempts += 1;
        let process = ProcessId(rng.gen_range(0..spec.processes));
        let object = *object_ids.choose(rng).expect("non-empty");
        let ty = universe.object_type(object);
        let invs = ty.sample_invocations();
        let Some(inv) = invs.choose(rng) else {
            continue;
        };
        let outcomes = ty.transitions(&states[object.index()], inv);
        let Some(outcome) = outcomes.choose(rng) else {
            continue; // invocation not enabled in the current state
        };
        history.push(Event::invoke(process, object, inv.clone()));
        history.push(Event::respond(process, object, outcome.response.clone()));
        states[object.index()] = outcome.next_state.clone();
        generated += 1;
    }
    history
}

/// Turns a legal sequential history into a concurrent one that is
/// linearizable by construction, using the sequential order as the witness
/// linearization.
///
/// Each operation's response may be delayed past the invocations of up to
/// `max_overlap` later operations (of other processes), which creates
/// overlapping operations while preserving:
///
/// * per-process sequentiality (well-formedness), and
/// * the property that the original sequential order respects the real-time
///   order of the output (an operation's invocation is never moved later and
///   its response never earlier than its slot).
pub fn concurrentize<R: Rng>(sequential: &History, max_overlap: usize, rng: &mut R) -> History {
    let ops = sequential.complete_operations();
    let mut out = History::new();
    // Pending responses: (remaining delay, event). A process with a pending
    // response cannot invoke again until the response is flushed.
    let mut pending: Vec<(usize, Event)> = Vec::new();

    let flush_ready = |pending: &mut Vec<(usize, Event)>, out: &mut History| {
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 == 0 {
                let (_, e) = pending.remove(i);
                out.push(e);
            } else {
                i += 1;
            }
        }
    };

    for op in &ops {
        // Decrement delays.
        for entry in pending.iter_mut() {
            entry.0 = entry.0.saturating_sub(1);
        }
        // The invoking process must not have a pending response.
        if let Some(pos) = pending.iter().position(|(_, e)| e.process == op.process) {
            let (_, e) = pending.remove(pos);
            out.push(e);
        }
        flush_ready(&mut pending, &mut out);
        out.push(Event::invoke(op.process, op.object, op.invocation.clone()));
        let delay = if max_overlap == 0 {
            0
        } else {
            rng.gen_range(0..=max_overlap)
        };
        let resp = Event::respond(
            op.process,
            op.object,
            op.response.clone().expect("complete operation"),
        );
        if delay == 0 {
            out.push(resp);
        } else {
            pending.push((delay, resp));
        }
    }
    // Flush everything that is still pending, in order.
    pending.sort_by_key(|(d, _)| *d);
    for (_, e) in pending {
        out.push(e);
    }
    out
}

/// Corrupts up to `count` responses of completed operations by replacing them
/// with a different integer value, producing histories that are very likely
/// not linearizable (and often not even weakly consistent).
///
/// Returns the corrupted history and the number of responses actually
/// changed.
pub fn perturb_responses<R: Rng>(history: &History, count: usize, rng: &mut R) -> (History, usize) {
    let mut events: Vec<Event> = history.events().to_vec();
    let respond_indices: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_respond())
        .map(|(i, _)| i)
        .collect();
    if respond_indices.is_empty() {
        return (history.clone(), 0);
    }
    let mut changed = 0;
    for _ in 0..count {
        let &idx = respond_indices.choose(rng).expect("non-empty");
        if let crate::EventKind::Respond(v) = &events[idx].kind {
            let new_value = Value::from(rng.gen_range(100..1_000) as i64);
            if *v != new_value {
                events[idx] = Event::respond(events[idx].process, events[idx].object, new_value);
                changed += 1;
            }
        }
    }
    (History::from_events(events), changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legal::is_legal_sequential;
    use evlin_spec::{FetchIncrement, Register};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe() -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        u.add_object(Register::new(Value::from(0i64)));
        u.add_object(FetchIncrement::new());
        u
    }

    #[test]
    fn random_sequential_histories_are_legal() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..20u64 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let spec = WorkloadSpec {
                processes: 3,
                operations: 15,
            };
            let h = random_sequential_legal(&u, &spec, &mut rng2);
            assert!(h.is_sequential());
            assert!(h.is_well_formed());
            assert!(is_legal_sequential(&h, &u));
            let _ = &mut rng;
        }
    }

    #[test]
    fn concurrentize_preserves_well_formedness_and_ops() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(7);
        let spec = WorkloadSpec {
            processes: 4,
            operations: 30,
        };
        let seq = random_sequential_legal(&u, &spec, &mut rng);
        let conc = concurrentize(&seq, 3, &mut rng);
        assert!(conc.is_well_formed());
        assert_eq!(
            conc.complete_operations().len(),
            seq.complete_operations().len()
        );
        // Same multiset of (process, invocation, response).
        let mut a: Vec<_> = seq
            .complete_operations()
            .iter()
            .map(|o| (o.process, o.invocation.clone(), o.response.clone()))
            .collect();
        let mut b: Vec<_> = conc
            .complete_operations()
            .iter()
            .map(|o| (o.process, o.invocation.clone(), o.response.clone()))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrentize_with_zero_overlap_is_identity_shape() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(3);
        let spec = WorkloadSpec {
            processes: 2,
            operations: 10,
        };
        let seq = random_sequential_legal(&u, &spec, &mut rng);
        let conc = concurrentize(&seq, 0, &mut rng);
        assert!(conc.is_sequential());
        assert_eq!(conc, seq);
    }

    #[test]
    fn perturbation_changes_some_response() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(11);
        let spec = WorkloadSpec {
            processes: 2,
            operations: 10,
        };
        let seq = random_sequential_legal(&u, &spec, &mut rng);
        let (bad, changed) = perturb_responses(&seq, 3, &mut rng);
        assert!(changed > 0);
        assert_ne!(bad, seq);
        assert_eq!(bad.len(), seq.len());
    }

    #[test]
    fn same_seed_yields_identical_histories() {
        // Seed-determinism: every generator stage (sequential generation,
        // concurrentization, perturbation) driven by the same `rand` seed
        // must produce byte-for-byte identical output, so experiments and
        // failures are reproducible from the seed alone.
        let u = universe();
        let spec = WorkloadSpec {
            processes: 3,
            operations: 25,
        };
        for seed in [0u64, 1, 42, u64::MAX] {
            let run = |seed: u64| {
                let mut rng = StdRng::seed_from_u64(seed);
                let seq = random_sequential_legal(&u, &spec, &mut rng);
                let conc = concurrentize(&seq, 3, &mut rng);
                let (bad, changed) = perturb_responses(&conc, 2, &mut rng);
                (seq, conc, bad, changed)
            };
            let (seq_a, conc_a, bad_a, changed_a) = run(seed);
            let (seq_b, conc_b, bad_b, changed_b) = run(seed);
            assert_eq!(
                seq_a, seq_b,
                "sequential generation diverged at seed {seed}"
            );
            assert_eq!(conc_a, conc_b, "concurrentize diverged at seed {seed}");
            assert_eq!(bad_a, bad_b, "perturbation diverged at seed {seed}");
            assert_eq!(changed_a, changed_b);
        }
        // And different seeds give different histories (with these sizes a
        // collision would indicate the rng is ignoring its seed).
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(2);
        assert_ne!(
            random_sequential_legal(&u, &spec, &mut rng_a),
            random_sequential_legal(&u, &spec, &mut rng_b),
        );
    }

    #[test]
    fn empty_universe_and_empty_history_edge_cases() {
        let empty = ObjectUniverse::new();
        let mut rng = StdRng::seed_from_u64(0);
        let h = random_sequential_legal(&empty, &WorkloadSpec::default(), &mut rng);
        assert!(h.is_empty());
        let (p, changed) = perturb_responses(&History::new(), 5, &mut rng);
        assert!(p.is_empty());
        assert_eq!(changed, 0);
    }
}
