//! Process and object identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the `n` processes of the system.
///
/// Processes are numbered from `0`; the paper writes `p1, …, pn` but indexing
/// from zero matches Rust collections.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The numeric index of the process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Identifies a shared object within an [`crate::ObjectUniverse`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub usize);

impl ObjectId {
    /// The numeric index of the object.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<usize> for ObjectId {
    fn from(i: usize) -> Self {
        ObjectId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(format!("{}", ProcessId(3)), "p3");
        assert_eq!(format!("{}", ObjectId(0)), "o0");
        assert_eq!(ProcessId(7).index(), 7);
        assert_eq!(ObjectId(2).index(), 2);
    }

    #[test]
    fn conversion_from_usize() {
        assert_eq!(ProcessId::from(4), ProcessId(4));
        assert_eq!(ObjectId::from(4), ObjectId(4));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(ObjectId(0) < ObjectId(5));
    }
}
