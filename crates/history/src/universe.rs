//! The set of shared objects a history refers to.

use crate::ObjectId;
use evlin_spec::{ObjectType, Value};
use std::fmt;
use std::sync::Arc;

/// The finite collection of shared objects (type + chosen initial state) that
/// a history talks about.
///
/// Legality of sequential histories (and hence every consistency condition)
/// is defined relative to each object's sequential specification and initial
/// state; an `ObjectUniverse` bundles those so checkers can be called with a
/// history and a universe.
///
/// Note that the paper's Proposition 9 (locality of eventual linearizability)
/// requires the number of objects to be finite — which an `ObjectUniverse`
/// always is.  The counterexample with infinitely many registers is explored
/// in experiment E3 by sweeping the universe size.
#[derive(Clone, Default)]
pub struct ObjectUniverse {
    objects: Vec<(Arc<dyn ObjectType>, Value)>,
}

impl ObjectUniverse {
    /// Creates an empty universe.
    pub fn new() -> Self {
        ObjectUniverse {
            objects: Vec::new(),
        }
    }

    /// Adds an object of the given type, initialized to the type's first
    /// initial state, and returns its identifier.
    pub fn add_object<T: ObjectType + 'static>(&mut self, ty: T) -> ObjectId {
        let q0 = ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        self.add_object_with_state(ty, q0)
    }

    /// Adds an object with an explicitly chosen initial state.
    pub fn add_object_with_state<T: ObjectType + 'static>(
        &mut self,
        ty: T,
        initial: Value,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len());
        self.objects.push((Arc::new(ty), initial));
        id
    }

    /// Adds an already shared object type with an explicit initial state.
    pub fn add_shared(&mut self, ty: Arc<dyn ObjectType>, initial: Value) -> ObjectId {
        let id = ObjectId(self.objects.len());
        self.objects.push((ty, initial));
        id
    }

    /// The number of objects in the universe.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the universe contains no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The type of object `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an object of this universe.
    pub fn object_type(&self, id: ObjectId) -> &Arc<dyn ObjectType> {
        &self.objects[id.index()].0
    }

    /// The initial state of object `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an object of this universe.
    pub fn initial_state(&self, id: ObjectId) -> &Value {
        &self.objects[id.index()].1
    }

    /// Replaces the initial state of object `id`.
    ///
    /// The online monitor in `evlin-checker` uses this to re-root a universe
    /// at the frontier state reached by an already-verified history prefix:
    /// checking the next segment of a stream against the re-rooted universe
    /// is exactly checking the whole history against the original one.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an object of this universe.
    pub fn set_initial_state(&mut self, id: ObjectId, state: Value) {
        self.objects[id.index()].1 = state;
    }

    /// Iterates over `(id, type, initial state)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Arc<dyn ObjectType>, &Value)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, (ty, q0))| (ObjectId(i), ty, q0))
    }

    /// All object identifiers of the universe.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        (0..self.objects.len()).map(ObjectId).collect()
    }
}

impl fmt::Debug for ObjectUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut dbg = f.debug_list();
        for (id, ty, q0) in self.iter() {
            dbg.entry(&format_args!("{id}: {} (init {q0})", ty.name()));
        }
        dbg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{FetchIncrement, Register};

    #[test]
    fn add_and_query_objects() {
        let mut u = ObjectUniverse::new();
        assert!(u.is_empty());
        let r = u.add_object(Register::new(Value::from(0i64)));
        let f = u.add_object_with_state(FetchIncrement::new(), Value::from(5i64));
        assert_eq!(u.len(), 2);
        assert_eq!(r, ObjectId(0));
        assert_eq!(f, ObjectId(1));
        assert_eq!(u.object_type(r).name(), "register");
        assert_eq!(u.initial_state(f), &Value::from(5i64));
        assert_eq!(u.object_ids(), vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn add_shared_reuses_arc() {
        let ty: Arc<dyn ObjectType> = Arc::new(Register::new(Value::from(0i64)));
        let mut u = ObjectUniverse::new();
        let a = u.add_shared(ty.clone(), Value::from(0i64));
        let b = u.add_shared(ty, Value::from(1i64));
        assert_ne!(a, b);
        assert_eq!(u.initial_state(b), &Value::from(1i64));
    }

    #[test]
    fn debug_output_mentions_types() {
        let mut u = ObjectUniverse::new();
        u.add_object(Register::new(Value::from(0i64)));
        let text = format!("{u:?}");
        assert!(text.contains("register"));
    }
}
