//! Pluggable visited-set storage for the exploration engine.
//!
//! The engine's deduplication set is the state ceiling of every exhaustive
//! run: PR 4/5 cut the *number* of visited states by orders of magnitude and
//! made the dedup key a single incrementally-maintained Zobrist field read,
//! but the key *set* itself still had to fit in RAM.  This module puts that
//! set behind the [`VisitedStore`] trait and ships three backends:
//!
//! * [`StoreConfig::Mem`] — the historical in-memory sharded
//!   `HashSet<(key, depth)>`.  Bit-identical stats and memory accounting to
//!   the engine before the seam existed; the default.
//! * [`StoreConfig::Prefix`] — a fingerprint-prefix-sharded in-memory store:
//!   each `(key, depth)` pair is folded to a single 64-bit *record* and
//!   routed to one of `2^shards_log2` shards by its top fingerprint bits
//!   ([`crate::zobrist::prefix_shard`]), the same routing the partitioner
//!   uses, so per-shard occupancy is balanced and observable per prefix
//!   range.  Nothing spills; the budget only pre-sizes shard capacity.
//! * [`StoreConfig::Spill`] — the prefix-sharded store with a per-shard
//!   resident budget: when a shard's active set reaches its budget it is
//!   flushed to disk as a compressed sorted *run* (delta-varint encoding
//!   with restart points, see `docs/CHECKPOINT.md`), and membership checks
//!   consult an in-memory Bloom filter + fence index per run before touching
//!   the file, so the hot path stays a couple of word mixes for fresh keys.
//!
//! All three backends expose the same [`StoreReport`] (entry count, runs
//! written, and a resident / spilled / filter byte breakdown) and can
//! [`VisitedStore::snapshot`] themselves into a directory as part of a
//! checkpoint ([`crate::checkpoint`]), from which [`restore_store`] rebuilds
//! an equivalent store after a process restart — including a hard kill.
//!
//! ## Exactness
//!
//! [`MemStore`] stores `(key, depth)` pairs verbatim, so it is exactly the
//! pre-seam dedup set.  The sharded backends store
//! `mix2(key, depth)` — one avalanched 64-bit word per pair — so two
//! distinct pairs collide with probability `2^-64`, the same collision
//! class already accepted for the Zobrist fingerprints that feed `key`.
//! Bloom filters only ever produce false *positives*, which the subsequent
//! run probe resolves exactly against the stored records; a record absent
//! from every filter is definitively fresh.  `crates/sim/tests/`
//! `store_differential.rs` checks all three backends against each other on
//! seeded random configurations.

use crate::zobrist;
use std::collections::HashSet;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Byte accounting of a visited store, split by residence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreBytes {
    /// Bytes held in RAM by the active (unspilled) record sets.
    pub resident: usize,
    /// Bytes written to disk as sorted runs (headers + payload).
    pub spilled: usize,
    /// Bytes held in RAM by the per-run Bloom filters.
    pub filter: usize,
}

impl StoreBytes {
    /// Total footprint across residences.
    pub fn total(&self) -> usize {
        self.resident + self.spilled + self.filter
    }
}

/// A point-in-time summary of a visited store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Distinct records stored (active + spilled).
    pub entries: usize,
    /// Sorted runs flushed to disk so far (0 for in-memory backends).
    pub runs_written: usize,
    /// Byte breakdown (see [`StoreBytes`]).
    pub bytes: StoreBytes,
}

/// The visited-set seam of the exploration engine.
///
/// A store is shared by every worker of one exploration, so insertions must
/// be linearizable per key: for each distinct `(key, depth)` pair exactly
/// one caller across all threads observes `true`.  Stats determinism across
/// worker counts follows — the *set* of first-visits is a function of the
/// reachable keys, not of interleaving.
///
/// Disk-backed implementations that hit an I/O error during [`insert`]
/// (which cannot return one) panic with the failing path: a half-written
/// visited set would silently unprune states, so dying loudly is the only
/// sound response mid-exploration.
///
/// [`insert`]: VisitedStore::insert
pub trait VisitedStore: Send + Sync {
    /// Records `(key, depth)`; returns whether it was absent before (the
    /// caller should expand the child iff `true`).
    fn insert(&self, key: u64, depth: usize) -> bool;

    /// Batched [`insert`](VisitedStore::insert): pushes one freshness flag
    /// per pair onto `fresh`, in order.  The engine probes all children of a
    /// node in one call, letting backends amortize locking; the default is
    /// the obvious loop, and every override must be observationally
    /// identical to it.
    fn insert_batch(&self, pairs: &[(u64, usize)], fresh: &mut Vec<bool>) {
        fresh.extend(pairs.iter().map(|&(k, d)| self.insert(k, d)));
    }

    /// Current entry count and byte breakdown.
    fn report(&self) -> StoreReport;

    /// Writes the store's in-memory state into `dir` as sorted-run sidecar
    /// files (named with checkpoint sequence `seq`) and returns the manifest
    /// describing every file needed to rebuild the store.  Must *not*
    /// mutate the store: the active sets are dumped, not flushed, so a
    /// resumed exploration's future run boundaries — and with them the
    /// final [`StoreReport`] — match the uninterrupted run's exactly.
    fn snapshot(&self, dir: &Path, seq: u64) -> io::Result<StoreManifest>;
}

/// Selects and sizes a visited-store backend.  `Copy` so it can ride inside
/// [`crate::engine::EngineOptions`]; directory choices are made at build
/// time ([`StoreConfig::build`] / [`StoreConfig::build_in`]), not carried
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreConfig {
    /// The historical in-memory sharded `(key, depth)` set (default).
    #[default]
    Mem,
    /// Fingerprint-prefix-sharded, fully resident.  `shard_budget` (bytes)
    /// only pre-sizes each shard's capacity.
    Prefix {
        /// log2 of the shard count (`0` = one shard).
        shards_log2: u32,
        /// Advisory per-shard capacity in bytes (8 per record).
        shard_budget: usize,
    },
    /// Fingerprint-prefix-sharded with spill-to-disk: a shard whose active
    /// set reaches `shard_budget` bytes is flushed as a sorted run.
    Spill {
        /// log2 of the shard count (`0` = one shard).
        shards_log2: u32,
        /// Hard per-shard resident budget in bytes (8 per record); the
        /// post-insert resident size of every shard stays below it.
        shard_budget: usize,
    },
}

/// Monotonic counter distinguishing spill directories created by one
/// process (combined with the pid for cross-process uniqueness).
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

impl StoreConfig {
    /// The backend's display name for tables, bench ids and logs.
    pub fn label(&self) -> &'static str {
        match self {
            StoreConfig::Mem => "mem",
            StoreConfig::Prefix { .. } => "prefix",
            StoreConfig::Spill { .. } => "spill",
        }
    }

    /// Builds the store.  `mem_shards` sizes the [`Mem`](StoreConfig::Mem)
    /// backend's lock sharding (the engine passes 1 sequentially and a
    /// multiple of the worker count in parallel; the key *set* is the same
    /// either way).  A [`Spill`](StoreConfig::Spill) store gets a fresh
    /// private directory under the system temp dir, removed when the store
    /// is dropped; use [`build_in`](StoreConfig::build_in) to keep runs in
    /// a caller-owned directory (checkpointing does).
    pub fn build(&self, mem_shards: usize) -> io::Result<Box<dyn VisitedStore>> {
        match *self {
            StoreConfig::Mem => Ok(Box::new(MemStore::new(mem_shards))),
            StoreConfig::Prefix { .. } => Ok(Box::new(ShardedStore::new(*self, None, false)?)),
            StoreConfig::Spill { .. } => {
                let dir = std::env::temp_dir().join(format!(
                    "evlin-spill-{}-{}",
                    std::process::id(),
                    SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                Ok(Box::new(ShardedStore::new(*self, Some(dir), true)?))
            }
        }
    }

    /// Like [`build`](StoreConfig::build), but a spill store writes its runs
    /// into `dir` (created if missing) and leaves them on disk when dropped —
    /// the checkpointing mode, where the run files outlive the process.
    pub fn build_in(&self, mem_shards: usize, dir: &Path) -> io::Result<Box<dyn VisitedStore>> {
        match *self {
            StoreConfig::Spill { .. } => Ok(Box::new(ShardedStore::new(
                *self,
                Some(dir.to_path_buf()),
                false,
            )?)),
            _ => self.build(mem_shards),
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory backend (the historical dedup set, verbatim)
// ---------------------------------------------------------------------------

/// The historical in-memory sharded dedup set: `(key, depth)` pairs hashed
/// into `shards` lock-sharded hash sets by `key % shards`.  Every count and
/// byte reported is identical to the engine's pre-seam accounting.
pub struct MemStore {
    shards: Vec<Mutex<HashSet<(u64, usize)>>>,
}

impl MemStore {
    /// An empty store with `shards.max(1)` lock shards.
    pub fn new(shards: usize) -> Self {
        MemStore {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
        }
    }

    fn shard_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }
}

impl VisitedStore for MemStore {
    fn insert(&self, key: u64, depth: usize) -> bool {
        self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert((key, depth))
    }

    fn insert_batch(&self, pairs: &[(u64, usize)], fresh: &mut Vec<bool>) {
        if self.shards.len() == 1 {
            // The sequential engine path: one lock per node instead of one
            // per child.  Insert order within the batch is preserved, so
            // duplicate pairs inside one batch resolve exactly as the loop
            // would.
            let mut set = self.shards[0]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            fresh.extend(pairs.iter().map(|&(k, d)| set.insert((k, d))));
        } else {
            fresh.extend(pairs.iter().map(|&(k, d)| self.insert(k, d)));
        }
    }

    fn report(&self) -> StoreReport {
        let entries: usize = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .len()
            })
            .sum();
        StoreReport {
            entries,
            runs_written: 0,
            bytes: StoreBytes {
                resident: entries * std::mem::size_of::<(u64, usize)>(),
                spilled: 0,
                filter: 0,
            },
        }
    }

    fn snapshot(&self, dir: &Path, seq: u64) -> io::Result<StoreManifest> {
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = shard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let mut pairs: Vec<(u64, usize)> = guard.iter().copied().collect();
            drop(guard);
            pairs.sort_unstable();
            let active = if pairs.is_empty() {
                None
            } else {
                let name = sidecar_name(i, seq);
                Some(write_pairs_run(&dir.join(&name), name, &pairs)?)
            };
            shards.push(ShardManifest {
                runs: Vec::new(),
                active,
            });
        }
        Ok(StoreManifest {
            config: StoreConfig::Mem,
            next_seq: 0,
            shards,
        })
    }
}

// ---------------------------------------------------------------------------
// Prefix-sharded backend (resident or spilling)
// ---------------------------------------------------------------------------

/// Folds a `(key, depth)` dedup pair into the single 64-bit *record* the
/// sharded backends store and route on.  Avalanched, so its top bits are a
/// uniform shard/partition prefix.
#[inline]
pub fn record_of(key: u64, depth: usize) -> u64 {
    zobrist::mix2(key, depth as u64)
}

/// Number of records between restart points in a sorted run (each restart
/// stores its full key and anchors one fence), bounding both the decode
/// work of a single membership probe and the fence index size.
pub const RUN_RESTART_INTERVAL: usize = 256;

/// The fingerprint-prefix-sharded store: records routed by their top
/// `shards_log2` bits, one active `HashSet<u64>` per shard, optionally
/// spilling full shards to disk as sorted runs ([`StoreConfig::Spill`]).
pub struct ShardedStore {
    config: StoreConfig,
    shards_log2: u32,
    /// Per-shard resident budget in bytes; spilling flushes at this line.
    shard_budget: usize,
    /// Whether full shards flush to disk (false = Prefix backend).
    spill: bool,
    dir: Option<PathBuf>,
    delete_on_drop: bool,
    next_seq: AtomicU64,
    shards: Vec<Mutex<Shard>>,
}

struct Shard {
    active: HashSet<u64>,
    runs: Vec<Run>,
    /// Reused encode/flush buffer.
    scratch: Vec<u8>,
    /// Reused probe block buffer.
    block: Vec<u8>,
    /// Reused sort buffer for flushes.
    sorted: Vec<u64>,
}

/// One immutable sorted run on disk plus its in-memory probe accelerators.
struct Run {
    meta: RunMeta,
    file: File,
    bloom: Bloom,
    fences: Vec<Fence>,
}

/// A restart-point index entry: the first (full) key of a block and its
/// byte offset within the run payload.
#[derive(Debug, Clone, Copy)]
struct Fence {
    first_key: u64,
    offset: u64,
}

/// A blocked Bloom-style filter over one run's records: power-of-two bit
/// count (≥ 64, ~8 bits per record), 3 probes derived from two `mix`
/// rounds.  No false negatives by construction.
struct Bloom {
    words: Vec<u64>,
    mask: u64,
}

impl Bloom {
    fn build(records: &[u64]) -> Bloom {
        let bits = (records.len() as u64 * 8).next_power_of_two().max(64);
        let mut bloom = Bloom {
            words: vec![0u64; (bits / 64) as usize],
            mask: bits - 1,
        };
        for &r in records {
            for idx in bloom.indices(r) {
                bloom.words[(idx / 64) as usize] |= 1 << (idx % 64);
            }
        }
        bloom
    }

    #[inline]
    fn indices(&self, record: u64) -> [u64; 3] {
        let h1 = zobrist::mix(record);
        // Odd stride so the probe sequence walks the whole power-of-two
        // table.
        let h2 = zobrist::mix(h1) | 1;
        [
            h1 & self.mask,
            h1.wrapping_add(h2) & self.mask,
            h1.wrapping_add(h2.wrapping_mul(2)) & self.mask,
        ]
    }

    #[inline]
    fn may_contain(&self, record: u64) -> bool {
        self.indices(record)
            .iter()
            .all(|&idx| self.words[(idx / 64) as usize] & (1 << (idx % 64)) != 0)
    }

    fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl ShardedStore {
    fn new(config: StoreConfig, dir: Option<PathBuf>, delete_on_drop: bool) -> io::Result<Self> {
        let (shards_log2, shard_budget, spill) = match config {
            StoreConfig::Prefix {
                shards_log2,
                shard_budget,
            } => (shards_log2, shard_budget, false),
            StoreConfig::Spill {
                shards_log2,
                shard_budget,
            } => (shards_log2, shard_budget, true),
            StoreConfig::Mem => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "Mem config does not build a ShardedStore",
                ))
            }
        };
        assert!(shards_log2 < 24, "2^{shards_log2} shards is unreasonable");
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        let capacity = (shard_budget / 8).min(1 << 20);
        Ok(ShardedStore {
            config,
            shards_log2,
            shard_budget: shard_budget.max(8),
            spill,
            dir,
            delete_on_drop,
            next_seq: AtomicU64::new(0),
            shards: (0..1usize << shards_log2)
                .map(|_| {
                    Mutex::new(Shard {
                        active: HashSet::with_capacity(capacity),
                        runs: Vec::new(),
                        scratch: Vec::new(),
                        block: Vec::new(),
                        sorted: Vec::new(),
                    })
                })
                .collect(),
        })
    }

    /// Inserts a pre-folded record; shared by `insert` and `insert_batch`.
    fn insert_record(&self, record: u64) -> bool {
        let shard_index = zobrist::prefix_shard(record, self.shards_log2);
        let mut shard = self.shards[shard_index]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if shard.active.contains(&record) {
            return false;
        }
        // Newest runs first: recently spilled records are the likeliest
        // repeats in a depth-first walk.
        for ri in (0..shard.runs.len()).rev() {
            let shard = &mut *shard;
            if run_contains(&mut shard.runs[ri], record, &mut shard.block)
                .unwrap_or_else(|e| panic!("visited-store run probe failed: {e}"))
            {
                return false;
            }
        }
        shard.active.insert(record);
        if self.spill && shard.active.len() * 8 >= self.shard_budget {
            self.flush_shard(shard_index, &mut shard)
                .unwrap_or_else(|e| panic!("visited-store spill failed: {e}"));
        }
        true
    }

    /// Flushes `shard`'s active set as one sorted run file and clears it.
    fn flush_shard(&self, shard_index: usize, shard: &mut Shard) -> io::Result<()> {
        let dir = self
            .dir
            .as_ref()
            .expect("spill stores always have a directory");
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        shard.sorted.clear();
        shard.sorted.extend(shard.active.iter().copied());
        shard.sorted.sort_unstable();
        let name = format!("run-{shard_index}-{seq}.evr");
        let shard = &mut *shard;
        let (meta, file, bloom, fences) =
            write_keys_run(&dir.join(&name), name, &shard.sorted, &mut shard.scratch)?;
        shard.runs.push(Run {
            meta,
            file,
            bloom,
            fences,
        });
        shard.active.clear();
        Ok(())
    }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        if self.delete_on_drop {
            if let Some(dir) = &self.dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

impl VisitedStore for ShardedStore {
    fn insert(&self, key: u64, depth: usize) -> bool {
        self.insert_record(record_of(key, depth))
    }

    fn report(&self) -> StoreReport {
        let mut report = StoreReport::default();
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            report.entries += shard.active.len();
            report.bytes.resident += shard.active.len() * 8;
            for run in &shard.runs {
                report.entries += run.meta.count as usize;
                report.runs_written += 1;
                report.bytes.spilled += run.meta.bytes as usize;
                report.bytes.filter += run.bloom.bytes();
            }
        }
        report
    }

    fn snapshot(&self, dir: &Path, seq: u64) -> io::Result<StoreManifest> {
        std::fs::create_dir_all(dir)?;
        if self.spill {
            // The manifest references run files by name inside `dir`; a
            // spill store built elsewhere cannot be snapshotted into a
            // different directory without copying runs, which checkpointing
            // never needs (it builds the store with `build_in`).
            let own = self
                .dir
                .as_ref()
                .expect("spill stores always have a directory");
            if own != dir {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "spill store writes runs under {} but was asked to snapshot into {}",
                        own.display(),
                        dir.display()
                    ),
                ));
            }
        }
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let mut guard = shard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let shard = &mut *guard;
            shard.sorted.clear();
            shard.sorted.extend(shard.active.iter().copied());
            shard.sorted.sort_unstable();
            let active = if shard.sorted.is_empty() {
                None
            } else {
                let name = sidecar_name(i, seq);
                let (meta, _, _, _) =
                    write_keys_run(&dir.join(&name), name, &shard.sorted, &mut shard.scratch)?;
                Some(meta)
            };
            shards.push(ShardManifest {
                runs: shard.runs.iter().map(|r| r.meta.clone()).collect(),
                active,
            });
        }
        Ok(StoreManifest {
            config: self.config,
            next_seq: self.next_seq.load(Ordering::Relaxed),
            shards,
        })
    }
}

// ---------------------------------------------------------------------------
// Manifests and restore
// ---------------------------------------------------------------------------

/// What a sorted-run file stores per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Pre-folded 64-bit records (sharded backends).
    Keys,
    /// Verbatim `(key, depth)` dedup pairs ([`MemStore`] sidecars).
    Pairs,
}

impl RecordKind {
    /// The on-disk `kind` field value.
    pub fn code(self) -> u16 {
        match self {
            RecordKind::Keys => 0,
            RecordKind::Pairs => 1,
        }
    }

    fn from_code(code: u16) -> io::Result<Self> {
        match code {
            0 => Ok(RecordKind::Keys),
            1 => Ok(RecordKind::Pairs),
            other => Err(invalid(format!("unknown run record kind {other}"))),
        }
    }
}

/// Metadata of one sorted-run file, as referenced by a [`StoreManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// File name (relative to the checkpoint/store directory).
    pub file: String,
    /// Record layout.
    pub kind: RecordKind,
    /// Number of records.
    pub count: u64,
    /// Smallest record (key for [`RecordKind::Pairs`]).
    pub min: u64,
    /// Largest record (key for [`RecordKind::Pairs`]).
    pub max: u64,
    /// `fold_words` checksum over the decoded record words.
    pub checksum: u64,
    /// Total file size in bytes (header + payload).
    pub bytes: u64,
}

/// Per-shard slice of a [`StoreManifest`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardManifest {
    /// Spilled runs, oldest first (probe order is newest first).
    pub runs: Vec<RunMeta>,
    /// Sidecar dump of the active set at snapshot time, if non-empty.
    pub active: Option<RunMeta>,
}

/// Everything needed to rebuild a [`VisitedStore`] from a directory of run
/// files: the backend configuration, the run-naming sequence counter and
/// one [`ShardManifest`] per shard.  Serialized into the checkpoint file by
/// [`crate::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// The backend this manifest describes.
    pub config: StoreConfig,
    /// Next run sequence number (so a resumed store never reuses a name).
    pub next_seq: u64,
    /// Per-shard run lists and active-set sidecars.
    pub shards: Vec<ShardManifest>,
}

impl StoreManifest {
    /// Every file name the manifest references (runs + sidecars), used by
    /// the checkpointer to garbage-collect orphaned `.evr` files.
    pub fn referenced_files(&self) -> impl Iterator<Item = &str> {
        self.shards.iter().flat_map(|s| {
            s.runs
                .iter()
                .map(|r| r.file.as_str())
                .chain(s.active.iter().map(|r| r.file.as_str()))
        })
    }
}

/// Rebuilds the store a [`StoreManifest`] describes from the run files in
/// `dir`, verifying every checksum.  `mem_shards` re-sizes the
/// [`Mem`](StoreConfig::Mem) backend's lock sharding (shard assignment is
/// recomputed per key, so the count may differ from snapshot time).
pub fn restore_store(
    manifest: &StoreManifest,
    dir: &Path,
    mem_shards: usize,
) -> io::Result<Box<dyn VisitedStore>> {
    match manifest.config {
        StoreConfig::Mem => {
            let store = MemStore::new(mem_shards);
            for shard in &manifest.shards {
                if let Some(meta) = &shard.active {
                    for (key, depth) in read_pairs_run(&dir.join(&meta.file), meta)? {
                        store.insert(key, depth);
                    }
                }
            }
            Ok(Box::new(store))
        }
        StoreConfig::Prefix { shards_log2, .. } | StoreConfig::Spill { shards_log2, .. } => {
            let spill = matches!(manifest.config, StoreConfig::Spill { .. });
            let store =
                ShardedStore::new(manifest.config, spill.then(|| dir.to_path_buf()), false)?;
            if manifest.shards.len() != 1usize << shards_log2 {
                return Err(invalid(format!(
                    "manifest has {} shards but the config declares {}",
                    manifest.shards.len(),
                    1usize << shards_log2
                )));
            }
            store.next_seq.store(manifest.next_seq, Ordering::Relaxed);
            for (i, shard_manifest) in manifest.shards.iter().enumerate() {
                let mut guard = store.shards[i]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                for meta in &shard_manifest.runs {
                    if !spill {
                        return Err(invalid(
                            "prefix store manifest references spilled runs".to_string(),
                        ));
                    }
                    guard.runs.push(open_keys_run(&dir.join(&meta.file), meta)?);
                }
                if let Some(meta) = &shard_manifest.active {
                    let (records, _) = read_keys_run(&dir.join(&meta.file), meta)?;
                    guard.active.extend(records);
                }
            }
            Ok(Box::new(store))
        }
    }
}

// ---------------------------------------------------------------------------
// Sorted-run codec (see docs/CHECKPOINT.md for the byte-level spec)
// ---------------------------------------------------------------------------

/// Run-file magic: `b"EVRN"`.
pub const RUN_MAGIC: [u8; 4] = *b"EVRN";
/// Current run-format version.
pub const RUN_VERSION: u16 = 1;
/// Run header size in bytes.
pub const RUN_HEADER_BYTES: usize = 40;

fn sidecar_name(shard: usize, seq: u64) -> String {
    format!("active-{shard}-{seq}.evr")
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// LEB128 append.
fn push_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// LEB128 read, advancing `pos`.
fn read_varint(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| invalid("truncated varint in run payload".to_string()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(invalid("varint overflows 64 bits".to_string()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn header_bytes(kind: RecordKind, count: u64, min: u64, max: u64, checksum: u64) -> [u8; 40] {
    let mut header = [0u8; RUN_HEADER_BYTES];
    header[0..4].copy_from_slice(&RUN_MAGIC);
    header[4..6].copy_from_slice(&RUN_VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&kind.code().to_le_bytes());
    header[8..16].copy_from_slice(&count.to_le_bytes());
    header[16..24].copy_from_slice(&min.to_le_bytes());
    header[24..32].copy_from_slice(&max.to_le_bytes());
    header[32..40].copy_from_slice(&checksum.to_le_bytes());
    header
}

fn parse_header(header: &[u8; RUN_HEADER_BYTES], path: &Path) -> io::Result<RunHeader> {
    if header[0..4] != RUN_MAGIC {
        return Err(invalid(format!("{}: bad run magic", path.display())));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != RUN_VERSION {
        return Err(invalid(format!(
            "{}: run version {version} (supported: {RUN_VERSION})",
            path.display()
        )));
    }
    Ok(RunHeader {
        kind: RecordKind::from_code(u16::from_le_bytes([header[6], header[7]]))?,
        count: u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")),
        min: u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")),
        max: u64::from_le_bytes(header[24..32].try_into().expect("8 bytes")),
        checksum: u64::from_le_bytes(header[32..40].try_into().expect("8 bytes")),
    })
}

struct RunHeader {
    kind: RecordKind,
    count: u64,
    min: u64,
    max: u64,
    checksum: u64,
}

/// Encodes sorted `records` into `buf` (cleared) with a restart point every
/// [`RUN_RESTART_INTERVAL`] records, returning the fence index.
fn encode_keys(records: &[u64], buf: &mut Vec<u8>) -> Vec<Fence> {
    buf.clear();
    let mut fences = Vec::with_capacity(records.len() / RUN_RESTART_INTERVAL + 1);
    let mut previous = 0u64;
    for (i, &record) in records.iter().enumerate() {
        if i % RUN_RESTART_INTERVAL == 0 {
            fences.push(Fence {
                first_key: record,
                offset: buf.len() as u64,
            });
            push_varint(buf, record);
        } else {
            push_varint(buf, record - previous);
        }
        previous = record;
    }
    fences
}

/// Attaches the offending path to an I/O error (std leaves it off, which
/// makes store failures undiagnosable from the message alone).
pub(crate) fn annotate(err: io::Error, path: &Path) -> io::Error {
    io::Error::new(err.kind(), format!("{}: {err}", path.display()))
}

/// Writes sorted `records` as a [`RecordKind::Keys`] run at `path` and
/// returns its metadata plus the reopened file and probe accelerators.
fn write_keys_run(
    path: &Path,
    name: String,
    records: &[u64],
    scratch: &mut Vec<u8>,
) -> io::Result<(RunMeta, File, Bloom, Vec<Fence>)> {
    debug_assert!(
        records.windows(2).all(|w| w[0] < w[1]),
        "records sorted+unique"
    );
    let fences = encode_keys(records, scratch);
    let checksum = zobrist::fold_words(RecordKind::Keys.code() as u64, records);
    let (min, max) = match (records.first(), records.last()) {
        (Some(&min), Some(&max)) => (min, max),
        _ => (0, 0),
    };
    let header = header_bytes(RecordKind::Keys, records.len() as u64, min, max, checksum);
    let mut writer = File::create(path).map_err(|e| annotate(e, path))?;
    writer.write_all(&header)?;
    writer.write_all(scratch)?;
    writer.sync_all()?;
    drop(writer);
    // Reopen read-only: the returned handle serves `run_contains` block
    // reads (a `File::create` handle is write-only).
    let file = File::open(path).map_err(|e| annotate(e, path))?;
    let meta = RunMeta {
        file: name,
        kind: RecordKind::Keys,
        count: records.len() as u64,
        min,
        max,
        checksum,
        bytes: (RUN_HEADER_BYTES + scratch.len()) as u64,
    };
    Ok((meta, file, Bloom::build(records), fences))
}

/// Writes sorted `(key, depth)` pairs as a [`RecordKind::Pairs`] run: key
/// delta-encoded with restarts like [`RecordKind::Keys`] (equal keys yield
/// delta 0), depth appended verbatim as a varint after each key.
fn write_pairs_run(path: &Path, name: String, pairs: &[(u64, usize)]) -> io::Result<RunMeta> {
    debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "pairs sorted+unique");
    let mut buf = Vec::new();
    let mut previous = 0u64;
    for (i, &(key, depth)) in pairs.iter().enumerate() {
        if i % RUN_RESTART_INTERVAL == 0 {
            push_varint(&mut buf, key);
        } else {
            push_varint(&mut buf, key - previous);
        }
        push_varint(&mut buf, depth as u64);
        previous = key;
    }
    let words: Vec<u64> = pairs.iter().flat_map(|&(k, d)| [k, d as u64]).collect();
    let checksum = zobrist::fold_words(RecordKind::Pairs.code() as u64, &words);
    let (min, max) = match (pairs.first(), pairs.last()) {
        (Some(&(min, _)), Some(&(max, _))) => (min, max),
        _ => (0, 0),
    };
    let header = header_bytes(RecordKind::Pairs, pairs.len() as u64, min, max, checksum);
    let mut file = File::create(path).map_err(|e| annotate(e, path))?;
    file.write_all(&header)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    Ok(RunMeta {
        file: name,
        kind: RecordKind::Pairs,
        count: pairs.len() as u64,
        min,
        max,
        checksum,
        bytes: (RUN_HEADER_BYTES + buf.len()) as u64,
    })
}

/// Reads a whole run file, verifying header fields against `meta`.
fn read_run_payload(path: &Path, meta: &RunMeta) -> io::Result<(RunHeader, Vec<u8>)> {
    let mut file = File::open(path).map_err(|e| annotate(e, path))?;
    let mut header = [0u8; RUN_HEADER_BYTES];
    file.read_exact(&mut header)?;
    let header = parse_header(&header, path)?;
    if header.kind != meta.kind
        || header.count != meta.count
        || header.min != meta.min
        || header.max != meta.max
        || header.checksum != meta.checksum
    {
        return Err(invalid(format!(
            "{}: run header disagrees with its manifest entry",
            path.display()
        )));
    }
    let mut payload = Vec::new();
    file.read_to_end(&mut payload)?;
    if (RUN_HEADER_BYTES + payload.len()) as u64 != meta.bytes {
        return Err(invalid(format!(
            "{}: run is {} bytes, manifest says {}",
            path.display(),
            RUN_HEADER_BYTES + payload.len(),
            meta.bytes
        )));
    }
    Ok((header, payload))
}

/// Fully decodes a [`RecordKind::Keys`] run, verifying its checksum, and
/// returns the records plus payload size.
fn read_keys_run(path: &Path, meta: &RunMeta) -> io::Result<(Vec<u64>, usize)> {
    let (header, payload) = read_run_payload(path, meta)?;
    if header.kind != RecordKind::Keys {
        return Err(invalid(format!("{}: expected a Keys run", path.display())));
    }
    let mut records = Vec::with_capacity(header.count as usize);
    let mut pos = 0usize;
    let mut previous = 0u64;
    for i in 0..header.count as usize {
        let value = read_varint(&payload, &mut pos)?;
        let record = if i % RUN_RESTART_INTERVAL == 0 {
            value
        } else {
            previous
                .checked_add(value)
                .ok_or_else(|| invalid(format!("{}: key delta overflow", path.display())))?
        };
        records.push(record);
        previous = record;
    }
    if pos != payload.len() {
        return Err(invalid(format!(
            "{}: trailing payload bytes",
            path.display()
        )));
    }
    if zobrist::fold_words(RecordKind::Keys.code() as u64, &records) != header.checksum {
        return Err(invalid(format!(
            "{}: run checksum mismatch",
            path.display()
        )));
    }
    Ok((records, payload.len()))
}

/// Fully decodes a [`RecordKind::Pairs`] run, verifying its checksum.
fn read_pairs_run(path: &Path, meta: &RunMeta) -> io::Result<Vec<(u64, usize)>> {
    let (header, payload) = read_run_payload(path, meta)?;
    if header.kind != RecordKind::Pairs {
        return Err(invalid(format!("{}: expected a Pairs run", path.display())));
    }
    let mut pairs = Vec::with_capacity(header.count as usize);
    let mut pos = 0usize;
    let mut previous = 0u64;
    for i in 0..header.count as usize {
        let value = read_varint(&payload, &mut pos)?;
        let key = if i % RUN_RESTART_INTERVAL == 0 {
            value
        } else {
            previous
                .checked_add(value)
                .ok_or_else(|| invalid(format!("{}: key delta overflow", path.display())))?
        };
        let depth = read_varint(&payload, &mut pos)? as usize;
        pairs.push((key, depth));
        previous = key;
    }
    if pos != payload.len() {
        return Err(invalid(format!(
            "{}: trailing payload bytes",
            path.display()
        )));
    }
    let words: Vec<u64> = pairs.iter().flat_map(|&(k, d)| [k, d as u64]).collect();
    if zobrist::fold_words(RecordKind::Pairs.code() as u64, &words) != header.checksum {
        return Err(invalid(format!(
            "{}: run checksum mismatch",
            path.display()
        )));
    }
    Ok(pairs)
}

/// Reopens a [`RecordKind::Keys`] run for probing: full decode once (which
/// verifies the checksum) to rebuild the Bloom filter and fence index, then
/// the records are dropped — membership probes go through the file.
fn open_keys_run(path: &Path, meta: &RunMeta) -> io::Result<Run> {
    let (records, payload_len) = read_keys_run(path, meta)?;
    let mut fences = Vec::with_capacity(records.len() / RUN_RESTART_INTERVAL + 1);
    // Rebuild fence offsets by re-encoding lengths, not by storing them:
    // the payload is a pure function of the records, so offsets are too.
    let mut scratch = Vec::with_capacity(payload_len);
    fences.extend(encode_keys(&records, &mut scratch));
    debug_assert_eq!(scratch.len(), payload_len);
    Ok(Run {
        meta: meta.clone(),
        file: File::open(path).map_err(|e| annotate(e, path))?,
        bloom: Bloom::build(&records),
        fences,
    })
}

/// Membership probe against one run: range check, Bloom filter, fence
/// binary search, then a single block read (≤ [`RUN_RESTART_INTERVAL`]
/// records decoded) from the file.
fn run_contains(run: &mut Run, record: u64, block: &mut Vec<u8>) -> io::Result<bool> {
    if record < run.meta.min || record > run.meta.max || !run.bloom.may_contain(record) {
        return Ok(false);
    }
    // Last fence whose first key is <= record.
    let idx = match run.fences.partition_point(|f| f.first_key <= record) {
        0 => return Ok(false),
        n => n - 1,
    };
    if run.fences[idx].first_key == record {
        return Ok(true);
    }
    let start = run.fences[idx].offset;
    let end = run
        .fences
        .get(idx + 1)
        .map_or(run.meta.bytes - RUN_HEADER_BYTES as u64, |f| f.offset);
    block.resize((end - start) as usize, 0);
    run.file
        .seek(SeekFrom::Start(RUN_HEADER_BYTES as u64 + start))?;
    run.file.read_exact(block)?;
    let mut pos = 0usize;
    let mut key = read_varint(block, &mut pos)?;
    while key < record && pos < block.len() {
        key = key
            .checked_add(read_varint(block, &mut pos)?)
            .ok_or_else(|| invalid("key delta overflow in run block".to_string()))?;
    }
    Ok(key == record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "evlin-store-test-{tag}-{}-{}",
            std::process::id(),
            SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    /// Deterministic pseudo-random records for codec tests.
    fn sample_records(count: usize, seed: u64) -> Vec<u64> {
        let mut records: Vec<u64> = (0..count as u64).map(|i| zobrist::mix2(seed, i)).collect();
        records.sort_unstable();
        records.dedup();
        records
    }

    #[test]
    fn keys_run_roundtrips_across_restart_boundaries() {
        let dir = temp_dir("roundtrip");
        let records = sample_records(1000, 7);
        assert!(records.len() > RUN_RESTART_INTERVAL * 3);
        let mut scratch = Vec::new();
        let (meta, _, _, fences) =
            write_keys_run(&dir.join("r.evr"), "r.evr".into(), &records, &mut scratch).unwrap();
        assert_eq!(meta.count as usize, records.len());
        assert_eq!(fences.len(), records.len().div_ceil(RUN_RESTART_INTERVAL));
        let (decoded, _) = read_keys_run(&dir.join("r.evr"), &meta).unwrap();
        assert_eq!(decoded, records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_probe_finds_every_present_and_no_absent_record() {
        let dir = temp_dir("probe");
        let records = sample_records(700, 11);
        let mut scratch = Vec::new();
        let (meta, _, _, _) =
            write_keys_run(&dir.join("r.evr"), "r.evr".into(), &records, &mut scratch).unwrap();
        let mut run = open_keys_run(&dir.join("r.evr"), &meta).unwrap();
        let mut block = Vec::new();
        for &r in &records {
            assert!(
                run_contains(&mut run, r, &mut block).unwrap(),
                "lost {r:#x}"
            );
        }
        let present: HashSet<u64> = records.iter().copied().collect();
        for i in 0..2000u64 {
            let absent = zobrist::mix2(999, i);
            if !present.contains(&absent) {
                assert!(!run_contains(&mut run, absent, &mut block).unwrap());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let records = sample_records(500, 3);
        let bloom = Bloom::build(&records);
        for &r in &records {
            assert!(bloom.may_contain(r));
        }
    }

    #[test]
    fn mem_store_has_set_semantics_and_exact_byte_accounting() {
        let store = MemStore::new(4);
        assert!(store.insert(10, 1));
        assert!(!store.insert(10, 1));
        assert!(store.insert(10, 2), "same key at another depth is fresh");
        assert!(store.insert(11, 1));
        let mut fresh = Vec::new();
        store.insert_batch(&[(10, 1), (12, 0), (12, 0)], &mut fresh);
        assert_eq!(fresh, [false, true, false]);
        let report = store.report();
        assert_eq!(report.entries, 4);
        assert_eq!(report.runs_written, 0);
        assert_eq!(
            report.bytes.resident,
            4 * std::mem::size_of::<(u64, usize)>()
        );
        assert_eq!(report.bytes.spilled + report.bytes.filter, 0);
    }

    #[test]
    fn spill_store_flushes_runs_and_respects_resident_budget() {
        let config = StoreConfig::Spill {
            shards_log2: 2,
            shard_budget: 256,
        };
        let store = config.build(1).unwrap();
        let mut inserted = Vec::new();
        for i in 0..4000u64 {
            let key = zobrist::mix(i);
            assert!(store.insert(key, 3), "fresh key {i} rejected");
            inserted.push(key);
            // The satellite invariant: post-insert resident bytes never
            // exceed shards × budget (each shard flushes at its line).
            let report = store.report();
            assert!(
                report.bytes.resident <= 4 * 256,
                "resident {} exceeds the configured budget after insert {i}",
                report.bytes.resident
            );
        }
        let report = store.report();
        assert_eq!(report.entries, 4000);
        assert!(report.runs_written > 0, "budget 256 must force spills");
        assert!(report.bytes.spilled > 0 && report.bytes.filter > 0);
        // Every record stays a duplicate across flush boundaries…
        for &key in &inserted {
            assert!(!store.insert(key, 3), "spilled key resurfaced as fresh");
        }
        // …and fresh records stay fresh (different depth salts the record).
        assert!(store.insert(inserted[0], 4));
        assert_eq!(store.report().entries, 4001);
    }

    #[test]
    fn prefix_store_routes_by_top_bits_and_never_spills() {
        let config = StoreConfig::Prefix {
            shards_log2: 3,
            shard_budget: 64,
        };
        let store = ShardedStore::new(config, None, false).unwrap();
        for i in 0..500u64 {
            assert!(store.insert(zobrist::mix(i), 0));
        }
        let report = store.report();
        assert_eq!((report.entries, report.runs_written), (500, 0));
        assert_eq!(report.bytes.resident, 500 * 8);
        // Routing agrees with the shared prefix function.
        let record = record_of(zobrist::mix(1), 0);
        let expected = zobrist::prefix_shard(record, 3);
        let occupied: Vec<usize> = (0..8)
            .filter(|&i| !store.shards[i].lock().unwrap().active.is_empty())
            .collect();
        assert!(occupied.contains(&expected));
        assert!(occupied.len() > 1, "500 mixed records must span shards");
    }

    #[test]
    fn snapshot_restore_roundtrips_membership_and_bytes() {
        for config in [
            StoreConfig::Mem,
            StoreConfig::Prefix {
                shards_log2: 2,
                shard_budget: 1024,
            },
            StoreConfig::Spill {
                shards_log2: 2,
                shard_budget: 128,
            },
        ] {
            let dir = temp_dir(config.label());
            let store = config.build_in(2, &dir).unwrap();
            // Salt the keys away from `mix(small)`: with `key == mix(depth)`
            // the folded record degenerates to `mix(0)` for every depth (the
            // 2⁻⁶⁴ collision class hit on purpose), which is not what this
            // test is about.
            let pairs: Vec<(u64, usize)> = (0..600u64)
                .map(|i| (zobrist::mix(0x5eed ^ i), (i % 5) as usize))
                .collect();
            for (i, &(k, d)) in pairs.iter().enumerate() {
                assert!(
                    store.insert(k, d),
                    "{}: fresh pair {i} rejected",
                    config.label()
                );
            }
            let before = store.report();
            let manifest = store.snapshot(&dir, 42).unwrap();
            assert_eq!(manifest.config, config);
            // Snapshot must not mutate: the live store still reports the
            // same breakdown and still rejects duplicates.
            assert_eq!(store.report(), before);
            assert!(!store.insert(pairs[0].0, pairs[0].1));
            drop(store);

            let restored = restore_store(&manifest, &dir, 2).unwrap();
            for &(k, d) in &pairs {
                assert!(!restored.insert(k, d), "{}: lost a record", config.label());
            }
            assert!(restored.insert(zobrist::mix(9999), 1));
            let after = restored.report();
            assert_eq!(after.entries, before.entries + 1, "{}", config.label());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn restore_rejects_corrupted_runs() {
        let dir = temp_dir("corrupt");
        let config = StoreConfig::Spill {
            shards_log2: 0,
            shard_budget: 64,
        };
        let store = config.build_in(1, &dir).unwrap();
        for i in 0..200u64 {
            store.insert(zobrist::mix(i), 0);
        }
        let manifest = store.snapshot(&dir, 0).unwrap();
        drop(store);
        // Flip one payload byte of the first referenced file.
        let victim = dir.join(manifest.referenced_files().next().unwrap());
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        std::fs::write(&victim, &bytes).unwrap();
        let err = match restore_store(&manifest, &dir, 1) {
            Ok(_) => panic!("restore accepted a corrupted run"),
            Err(err) => err,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_temp_directory_is_removed_on_drop() {
        let config = StoreConfig::Spill {
            shards_log2: 0,
            shard_budget: 64,
        };
        let store = config.build(1).unwrap();
        for i in 0..100u64 {
            store.insert(zobrist::mix(i), 0);
        }
        // Reach inside to learn the directory, then drop.
        let report = store.report();
        assert!(report.runs_written > 0);
        drop(store);
        // The directory name is private; instead assert the *next* build
        // gets a distinct directory and also cleans up.
        let again = config.build(1).unwrap();
        assert!(
            again.insert(zobrist::mix(0), 0),
            "fresh store must be empty"
        );
    }
}
