//! Implementations of high-level objects as step state machines.
//!
//! An *implementation* of an object type (paper, Section 3) provides a
//! programme each process follows to perform each operation; the programme
//! repeatedly accesses shared base objects and eventually returns a response.
//! Here a programme is written as an explicit state machine so that the
//! simulator can execute it one atomic step at a time and so that whole
//! configurations (including the programme's control state) can be cloned for
//! exhaustive exploration.

use crate::base::BaseObject;
use evlin_history::ProcessId;
use evlin_spec::{Invocation, Value};
use std::fmt;

/// The next action of a process's programme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStep {
    /// Access base object number `object` (an index into the implementation's
    /// base-object vector) with `invocation`.  The response will be passed to
    /// the next call of [`ProcessLogic::step`].
    Access {
        /// Index of the base object to access.
        object: usize,
        /// The invocation to apply to it.
        invocation: Invocation,
    },
    /// The current high-level operation is complete with the given response.
    Complete(Value),
}

/// The per-process programme state of an implementation: both the persistent
/// local variables the process keeps across operations and the control state
/// of the operation currently being executed.
///
/// Programme state is `Send` so that configurations can migrate between the
/// worker threads of the parallel explorer.
pub trait ProcessLogic: fmt::Debug + Send + Sync {
    /// Starts executing a new high-level operation.
    ///
    /// Called exactly once per operation, before the first [`ProcessLogic::step`]
    /// call for that operation.
    fn begin(&mut self, invocation: Invocation);

    /// Performs one atomic step of the current operation.
    ///
    /// `previous_response` is `None` on the first step of an operation and
    /// otherwise carries the response of the base-object access requested by
    /// the previous step.
    fn step(&mut self, previous_response: Option<Value>) -> TaskStep;

    /// Clones the programme state.
    fn clone_box(&self) -> Box<dyn ProcessLogic>;

    /// The number of distinct *transient-fault corruptions* of this
    /// programme state that the fault-injection layer ([`crate::fault`]) may
    /// apply — a deterministic function of the current state.  The default
    /// (0) marks the programme as uncorruptible.
    fn corruption_count(&self) -> usize {
        0
    }

    /// Corrupts the programme state to its `index`-th enumerable corruption.
    ///
    /// # Panics
    ///
    /// May panic when `index >= corruption_count()`; the default panics
    /// unconditionally (programmes declaring no corruptions are never asked).
    fn corrupt(&mut self, index: usize) {
        panic!("programme state declares no corruptions (corrupt({index}))");
    }
}

impl Clone for Box<dyn ProcessLogic> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// An implementation of a high-level object from base objects: a factory for
/// the shared base objects and for each process's programme.
///
/// Implementations are `Sync` so that the parallel explorer can share one
/// implementation by reference across its worker threads; the factory
/// methods take `&self` and all provided implementations are plain data.
pub trait Implementation: fmt::Debug + Sync {
    /// A short name of the implemented object / algorithm (diagnostics).
    fn name(&self) -> String;

    /// The number of processes the implementation is instantiated for.
    fn processes(&self) -> usize;

    /// Creates the shared base objects, in their initial states.
    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>>;

    /// Creates the programme state for process `process`.
    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic>;

    /// Whether the implementation is *process-symmetric*: every process runs
    /// the same programme and no process id is embedded in programme state,
    /// so renaming processes maps executions to executions.
    ///
    /// Consulted by the symmetry reduction of [`crate::engine`]:
    /// `Some(false)` vetoes canonicalization outright (the right marker for
    /// algorithms whose programmes announce or scan by identity),
    /// `Some(true)` asserts symmetry even when the structural check is
    /// inconclusive (a soundness promise — the engine still requires every
    /// base object to declare its process-id dependence), and `None` (the
    /// default) lets the engine decide structurally by comparing the initial
    /// [`ProcessLogic`] states and workloads.
    fn process_symmetric_hint(&self) -> Option<bool> {
        None
    }
}

/// A trivial implementation useful in tests and as the degenerate case of the
/// Theorem 12 construction: it uses **no shared base objects** and implements
/// an object by running the sequential specification on a process-local copy.
///
/// For a trivial type (Definition 13) this is a correct linearizable
/// implementation; for a non-trivial type it is merely weakly consistent —
/// which is exactly the dichotomy Proposition 14 establishes.
#[derive(Debug, Clone)]
pub struct LocalSpecImplementation {
    ty: std::sync::Arc<dyn evlin_spec::ObjectType>,
    processes: usize,
}

impl LocalSpecImplementation {
    /// Creates the implementation for `processes` processes.
    pub fn new(ty: std::sync::Arc<dyn evlin_spec::ObjectType>, processes: usize) -> Self {
        LocalSpecImplementation { ty, processes }
    }
}

/// Programme state for [`LocalSpecImplementation`].
#[derive(Debug, Clone)]
pub struct LocalSpecLogic {
    ty: std::sync::Arc<dyn evlin_spec::ObjectType>,
    state: Value,
    current: Option<Invocation>,
}

impl Implementation for LocalSpecImplementation {
    fn name(&self) -> String {
        format!("local-copy {}", self.ty.name())
    }

    fn processes(&self) -> usize {
        self.processes
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        Vec::new()
    }

    fn new_process(&self, _process: ProcessId) -> Box<dyn ProcessLogic> {
        let state = self
            .ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        Box::new(LocalSpecLogic {
            ty: self.ty.clone(),
            state,
            current: None,
        })
    }
}

impl ProcessLogic for LocalSpecLogic {
    fn begin(&mut self, invocation: Invocation) {
        self.current = Some(invocation);
    }

    fn step(&mut self, _previous_response: Option<Value>) -> TaskStep {
        let inv = self
            .current
            .take()
            .expect("step called without a pending operation");
        let (resp, next) = self
            .ty
            .apply_deterministic(&self.state, &inv)
            .expect("local specification application failed");
        self.state = next;
        TaskStep::Complete(resp)
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(self.clone())
    }

    // A transient fault rewrites the process's *local copy* to any other
    // nearby reachable spec state — the programme-state analogue of
    // corrupting a shared [`crate::base::SpecObject`].
    fn corruption_count(&self) -> usize {
        self.corruption_states().len()
    }

    fn corrupt(&mut self, index: usize) {
        let states = self.corruption_states();
        self.state = states
            .get(index)
            .unwrap_or_else(|| {
                panic!(
                    "corrupt({index}) out of range for local {} ({} corruptions)",
                    self.ty.name(),
                    states.len()
                )
            })
            .clone();
    }
}

impl LocalSpecLogic {
    /// The states a transient fault may corrupt the local copy to (see
    /// [`crate::base::SpecObject`]'s identical enumeration).
    fn corruption_states(&self) -> Vec<Value> {
        let initial = self
            .ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        self.ty
            .reachable_states(&initial, crate::fault::CORRUPTION_STATE_CAP)
            .into_iter()
            .filter(|s| s != &self.state)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{FetchIncrement, TestAndSet};
    use std::sync::Arc;

    #[test]
    fn local_spec_implementation_runs_without_shared_objects() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        assert_eq!(imp.processes(), 2);
        assert!(imp.initial_base_objects().is_empty());
        assert!(imp.name().contains("fetch&increment"));

        let mut p0 = imp.new_process(ProcessId(0));
        let mut p1 = imp.new_process(ProcessId(1));
        p0.begin(FetchIncrement::fetch_inc());
        assert_eq!(p0.step(None), TaskStep::Complete(Value::from(0i64)));
        p0.begin(FetchIncrement::fetch_inc());
        assert_eq!(p0.step(None), TaskStep::Complete(Value::from(1i64)));
        // p1 has its own copy: it also sees 0 first (no communication).
        p1.begin(FetchIncrement::fetch_inc());
        assert_eq!(p1.step(None), TaskStep::Complete(Value::from(0i64)));
    }

    #[test]
    fn cloning_programme_state_preserves_local_variables() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 1);
        let mut p = imp.new_process(ProcessId(0));
        p.begin(TestAndSet::test_and_set());
        assert_eq!(p.step(None), TaskStep::Complete(Value::from(0i64)));
        let mut q = p.clone();
        p.begin(TestAndSet::test_and_set());
        q.begin(TestAndSet::test_and_set());
        assert_eq!(p.step(None), TaskStep::Complete(Value::from(1i64)));
        assert_eq!(q.step(None), TaskStep::Complete(Value::from(1i64)));
    }
}
