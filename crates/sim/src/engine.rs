//! The unified exhaustive-exploration engine with pluggable reduction.
//!
//! Every exhaustive quantifier in this workspace ("every history of this
//! implementation is linearizable", "some reachable configuration is
//! stable", …) is discharged by walking the tree of interleavings of process
//! steps.  This module is the single walker behind all of them — the
//! [`crate::explorer`] functions, the valency analysis and the stability
//! search are thin facades over it — and it fights the combinatorial
//! explosion with two classical reductions, selected by a pluggable
//! [`ReductionStrategy`]:
//!
//! * **Sleep sets** (Godefroid-style dynamic partial-order reduction,
//!   [`SleepSets`]): after exploring a step of process `p`, sibling branches
//!   carry `p` in their *sleep set* for as long as `p`'s pending step
//!   commutes with theirs, so only one order of each commuting pair is
//!   expanded.  Commutation is decided by the step-independence oracle
//!   [`crate::config::Config::peek_step_shape`]: two steps commute iff both
//!   are mid-operation base-object accesses touching disjoint objects (or the
//!   same object without writing) — steps that record history events never
//!   commute, which is exactly what keeps every history-collecting visitor
//!   exact: pruned schedules produce histories *identical* to retained ones.
//! * **Process-symmetry canonicalization** ([`SymmetryReduction`]): for
//!   symmetric programs (detected structurally from the initial
//!   [`crate::program::ProcessLogic`] states, vetoable/assertable through
//!   [`crate::program::Implementation::process_symmetric_hint`]), every
//!   configuration is physically rewritten into the least representative of
//!   its orbit under process renaming before deduplication, merging the `n!`
//!   renamed copies of each reachable state.  Sound for process-symmetric
//!   verdicts (linearizability, weak consistency, …, which never mention
//!   identities); the histories the visitor sees are canonical renamings.
//!
//! Both reductions preserve the *set of distinct terminal histories* (exactly
//! for sleep sets, up to process renaming for symmetry), hence every verdict
//! computed from them; `crates/sim/tests/reduction_differential.rs` checks
//! this against the unreduced engine on seeded random configurations, and the
//! determinism suite checks that [`ExploreStats`] are identical across worker
//! counts and runs.

use crate::config::{Config, StepOutcome, StepShape};
use crate::fault::{self, FaultStep};
use crate::program::Implementation;
use crate::store::{StoreBytes, StoreConfig, VisitedStore};
use crate::workload::Workload;
use crate::zobrist;
use evlin_history::{History, ProcessId};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum number of steps along any path / configurations visited.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum number of steps along any single execution path.
    pub max_depth: usize,
    /// Maximum total number of configurations to visit (safety valve).
    pub max_configs: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_depth: 64,
            max_configs: 500_000,
        }
    }
}

/// Statistics about an exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of configurations visited (including the initial one).
    pub visited: usize,
    /// Number of terminal configurations reached (quiescent or at depth
    /// bound).
    pub terminals: usize,
    /// Number of child configurations *not* expanded because the reduction
    /// strategy slept them or deduplication had already seen them.
    pub pruned: usize,
    /// Total bytes held by the engine's visited store at the end of the run
    /// (resident + spilled + filter — see [`ExploreStats::store_bytes`]; 0
    /// when deduplication is off).  For the default in-memory backend this
    /// is entries × entry size, a function of the visited key *set*, so it
    /// is identical across worker counts — the engine's peak-memory
    /// accounting for the E12 tables.
    pub bytes_allocated: usize,
    /// Byte breakdown of the visited store by residence (all zero when
    /// deduplication is off).  `bytes_allocated == store_bytes.total()`.
    pub store_bytes: StoreBytes,
    /// Sorted runs written by a spilling visited store (0 for the resident
    /// backends).
    pub store_runs: usize,
    /// Whether the exploration was truncated by `max_configs`.
    pub truncated: bool,
}

/// What the visitor can tell the engine after seeing a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Keep exploring from this configuration.
    Continue,
    /// Do not explore successors of this configuration (but keep exploring
    /// its siblings).
    Prune,
    /// Abort the entire exploration (e.g. a counterexample was found).
    Stop,
}

/// Bitmask of sleeping processes: bit `i` set means process `i` is asleep
/// (its pending step is covered by an already-explored sibling order).
pub type SleepMask = u64;

/// One child edge of an exploration node: either a process takes its next
/// atomic step, or the environment injects one transient fault (see
/// [`crate::fault`]).  Fault children only exist while the configuration's
/// fault budget is positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildStep {
    /// Process `p` takes its next atomic step.
    Exec(ProcessId),
    /// A transient fault corrupts one component of the configuration.
    Fault(FaultStep),
}

/// Appends the fault children of `config` to an expansion, each with an
/// *empty* sleep mask: a corruption can change any component, so it is
/// dependent with every pending step — it must never be slept (it is not a
/// process, so it cannot be), and after it fires every sleeping process
/// wakes.  Every provided strategy threads its expansion through this helper,
/// which is what keeps fault-bounded reduced exploration verdict-identical to
/// the unreduced engine (checked by `crates/sim/tests/fault_differential.rs`).
/// No-op when the budget is 0.
fn push_fault_children(config: &Config, out: &mut Vec<(ChildStep, SleepMask)>) {
    config.for_each_fault(|f| out.push((ChildStep::Fault(f), 0)));
}

/// The reduction applied by the engine, as a plain selectable value.
///
/// Each variant resolves (via [`Reduction::strategy`]) to a concrete
/// [`ReductionStrategy`]; custom strategies can be plugged in directly
/// through [`explore_with`] / [`explore_shared_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// No reduction: today's raw-tree semantics.
    #[default]
    None,
    /// Sleep-set dynamic partial-order reduction.
    SleepSet,
    /// Process-symmetry canonicalization (forces deduplication on).
    Symmetry,
    /// Both: sleep sets over canonicalized configurations.
    SleepSetSymmetry,
}

impl Reduction {
    /// The strategy's display name (matches [`ReductionStrategy::name`] of
    /// the strategy this variant resolves to) — the single source of truth
    /// for experiment tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            Reduction::None => "none",
            Reduction::SleepSet => "sleep-set",
            Reduction::Symmetry => "symmetry",
            Reduction::SleepSetSymmetry => "sleep-set+symmetry",
        }
    }

    /// Builds the strategy for exploring from `root`.  `hint` is the
    /// implementation's symmetry marker
    /// ([`Implementation::process_symmetric_hint`]); pass `None` to decide
    /// structurally (the right thing when exploring from a mid-execution
    /// configuration).
    pub fn strategy(self, root: &Config, hint: Option<bool>) -> Box<dyn ReductionStrategy> {
        match self {
            Reduction::None => Box::new(NoReduction),
            Reduction::SleepSet => Box::new(SleepSets),
            Reduction::Symmetry => Box::new(SymmetryReduction::detect(root, hint)),
            Reduction::SleepSetSymmetry => Box::new(SleepSetSymmetry {
                symmetry: SymmetryReduction::detect(root, hint),
            }),
        }
    }
}

/// A pluggable state-space reduction.
///
/// The engine drives the traversal (budgets, deduplication, parallel
/// subtree-stealing); a strategy only decides *which* children of a node to
/// expand ([`ReductionStrategy::expand`]) and how to rewrite a freshly
/// produced configuration into a canonical representative
/// ([`ReductionStrategy::normalize`]).  Both must be deterministic functions
/// of their arguments — that is what makes [`ExploreStats`] identical across
/// worker counts and runs.
pub trait ReductionStrategy: fmt::Debug + Send + Sync {
    /// A short name for tables and diagnostics.
    fn name(&self) -> &'static str;

    /// Whether the strategy only prunes through the deduplication set (the
    /// engine force-enables dedup when this is true).  Canonicalizing
    /// strategies merge renamed configurations this way.
    fn requires_dedup(&self) -> bool {
        false
    }

    /// Whether the strategy folds *permuted* fingerprints
    /// ([`Config::canonical_permutation`]): only then does the engine ask
    /// configurations to maintain the per-(process, rename-target) history
    /// rows, which plain deduplication never reads.
    fn uses_rename_components(&self) -> bool {
        false
    }

    /// Rewrites `config` into its canonical representative, renaming the
    /// sleep mask along.  The default keeps the configuration as-is.
    fn normalize(&self, _config: &mut Config, _mask: &mut SleepMask) {}

    /// Appends the children of `config` to expand — each a [`ChildStep`]
    /// (an enabled process, or an injectable transient fault while the
    /// configuration's budget lasts) together with the child's sleep mask —
    /// to `out` (cleared by the engine), in deterministic order.  `enabled`
    /// is the precomputed list of enabled processes.  Process children left
    /// out are counted as pruned by the engine; every strategy must emit the
    /// *same* fault children (via the engine's shared helper), since faults
    /// never commute with anything.  The buffer is reused across nodes, which
    /// keeps expansion allocation-free; `config` is mutable only so shape
    /// classification can go through the step-shape memo.
    fn expand(
        &self,
        config: &mut Config,
        enabled: &[ProcessId],
        sleep: SleepMask,
        out: &mut Vec<(ChildStep, SleepMask)>,
    );
}

/// The identity strategy: expand every enabled process, canonicalize nothing.
#[derive(Debug, Clone, Copy)]
pub struct NoReduction;

impl ReductionStrategy for NoReduction {
    fn name(&self) -> &'static str {
        Reduction::None.label()
    }

    fn expand(
        &self,
        config: &mut Config,
        enabled: &[ProcessId],
        _sleep: SleepMask,
        out: &mut Vec<(ChildStep, SleepMask)>,
    ) {
        out.extend(enabled.iter().map(|&p| (ChildStep::Exec(p), 0)));
        push_fault_children(config, out);
    }
}

/// Whether the pending steps with shapes `a` and `b` commute at the current
/// configuration (see [`StepShape`]).
fn independent(a: StepShape, b: StepShape) -> bool {
    match (a, b) {
        (
            StepShape::Access {
                object: oa,
                writes: wa,
            },
            StepShape::Access {
                object: ob,
                writes: wb,
            },
        ) => oa != ob || (!wa && !wb),
        _ => false,
    }
}

/// Sleep-set dynamic partial-order reduction.
///
/// At a node with sleep set `S`, only processes outside `S` are expanded; the
/// `i`-th expanded process `p` hands its child the sleep set
/// `{ q ∈ S ∪ {earlier siblings} : step(q) commutes with step(p) here }`.
/// Every pruned schedule is a commutation of a retained one, so the set of
/// reachable terminal configurations — and with it every terminal history —
/// is preserved exactly.
#[derive(Debug, Clone, Copy)]
pub struct SleepSets;

impl ReductionStrategy for SleepSets {
    fn name(&self) -> &'static str {
        Reduction::SleepSet.label()
    }

    fn expand(
        &self,
        config: &mut Config,
        enabled: &[ProcessId],
        sleep: SleepMask,
        out: &mut Vec<(ChildStep, SleepMask)>,
    ) {
        debug_assert!(
            config.processes() <= SleepMask::BITS as usize,
            "sleep masks hold at most {} processes",
            SleepMask::BITS
        );
        if enabled.len() <= 1 {
            out.extend(enabled.iter().map(|&p| (ChildStep::Exec(p), 0)));
            push_fault_children(config, out);
            return;
        }
        // Shapes live on the stack (one slot per possible mask bit), so
        // expansion allocates nothing beyond the reused output buffer; each
        // enabled process is classified exactly once per expansion, so the
        // per-configuration memo would only add its bookkeeping here.
        let mut shapes = [None::<StepShape>; SleepMask::BITS as usize];
        for &p in enabled {
            shapes[p.index()] = config.peek_step_shape(p);
        }
        let mut slept = sleep;
        for &p in enabled {
            if sleep & (1 << p.index()) != 0 {
                continue;
            }
            let shape = shapes[p.index()].expect("enabled process has a next step");
            let mut child_mask: SleepMask = 0;
            let mut bits = slept;
            while bits != 0 {
                let q = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // A sleeping process that somehow lost its step (it cannot,
                // but stay conservative) is simply woken.
                if shapes[q].is_some_and(|sq| independent(shape, sq)) {
                    child_mask |= 1 << q;
                }
            }
            out.push((ChildStep::Exec(p), child_mask));
            slept |= 1 << p.index();
        }
        // Faults are dependent with everything: their children sleep no one.
        push_fault_children(config, out);
    }
}

/// Process-symmetry canonicalization.
///
/// Applicable when the program is process-symmetric: every process starts
/// with the same programme state and workload (checked structurally on the
/// root, or asserted/vetoed by
/// [`Implementation::process_symmetric_hint`]) and every base object declares
/// its process-id dependence ([`crate::base::PidDependence`]).  Each
/// configuration is then rewritten into the least fingerprint of its orbit
/// under the `n!` process renamings, so deduplication merges all symmetric
/// copies; when inapplicable the strategy degrades to plain deduplication.
///
/// The visitor sees canonical renamings of real executions — correct for any
/// process-symmetric verdict, and exactly why the differential suite compares
/// *canonicalized* history sets for this strategy.
#[derive(Debug)]
pub struct SymmetryReduction {
    /// All permutations of the process ids (identity first); empty when the
    /// reduction is inapplicable.
    perms: Vec<Vec<usize>>,
}

impl SymmetryReduction {
    /// Largest process count for which canonicalization is attempted: each
    /// visited configuration is hashed once per permutation, so the cost
    /// grows as `n!`.
    pub const MAX_PROCESSES: usize = 6;

    /// Decides applicability against `root` (see the type docs) and builds
    /// the permutation table.
    pub fn detect(root: &Config, hint: Option<bool>) -> Self {
        let n = root.processes();
        let applicable = (2..=Self::MAX_PROCESSES).contains(&n)
            && root.base_objects_permutable()
            && match hint {
                Some(false) => false,
                Some(true) => true,
                None => root.processes_structurally_symmetric(),
            };
        SymmetryReduction {
            perms: if applicable {
                permutations(n)
            } else {
                Vec::new()
            },
        }
    }

    /// Whether canonicalization is active (false = plain dedup fallback).
    pub fn is_applicable(&self) -> bool {
        !self.perms.is_empty()
    }

    fn canonicalize(&self, config: &mut Config, mask: &mut SleepMask) {
        if self.perms.is_empty() {
            return;
        }
        // `perms[0]` is the identity; `canonical_permutation` picks the
        // first index achieving the minimal key, which keeps
        // canonicalization idempotent.
        let best = config.canonical_permutation(&self.perms);
        if best != 0 {
            let perm = &self.perms[best];
            config.apply_permutation(perm);
            *mask = permute_mask(*mask, perm);
        }
    }
}

impl ReductionStrategy for SymmetryReduction {
    fn name(&self) -> &'static str {
        Reduction::Symmetry.label()
    }

    fn requires_dedup(&self) -> bool {
        true
    }

    fn uses_rename_components(&self) -> bool {
        self.is_applicable()
    }

    fn normalize(&self, config: &mut Config, mask: &mut SleepMask) {
        self.canonicalize(config, mask);
    }

    fn expand(
        &self,
        config: &mut Config,
        enabled: &[ProcessId],
        sleep: SleepMask,
        out: &mut Vec<(ChildStep, SleepMask)>,
    ) {
        NoReduction.expand(config, enabled, sleep, out)
    }
}

/// Sleep sets over canonicalized configurations: the sleep-set expansion
/// runs in canonical coordinates, so sibling orders are well-defined per
/// orbit and the merged state graph stays deterministic.
#[derive(Debug)]
pub struct SleepSetSymmetry {
    /// The canonicalization half (detected against the root).
    pub symmetry: SymmetryReduction,
}

impl ReductionStrategy for SleepSetSymmetry {
    fn name(&self) -> &'static str {
        Reduction::SleepSetSymmetry.label()
    }

    fn requires_dedup(&self) -> bool {
        true
    }

    fn uses_rename_components(&self) -> bool {
        self.symmetry.is_applicable()
    }

    fn normalize(&self, config: &mut Config, mask: &mut SleepMask) {
        self.symmetry.canonicalize(config, mask);
    }

    fn expand(
        &self,
        config: &mut Config,
        enabled: &[ProcessId],
        sleep: SleepMask,
        out: &mut Vec<(ChildStep, SleepMask)>,
    ) {
        SleepSets.expand(config, enabled, sleep, out)
    }
}

/// All permutations of `0..n` in lexicographic order (identity first) — the
/// renaming table [`SymmetryReduction`] canonicalizes with, exposed so that
/// differential tests can canonicalize histories with the *same* orbit
/// enumeration the engine uses for configurations.
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    loop {
        out.push(current.clone());
        // Standard next-permutation: find the rightmost ascent, swap with the
        // smallest larger element to its right, reverse the tail.
        let Some(i) = (0..n.saturating_sub(1))
            .rev()
            .find(|&i| current[i] < current[i + 1])
        else {
            return out;
        };
        let j = (i + 1..n)
            .rev()
            .find(|&j| current[j] > current[i])
            .expect("an ascent guarantees a larger element");
        current.swap(i, j);
        current[i + 1..].reverse();
    }
}

/// Applies a process renaming to a sleep mask.
fn permute_mask(mask: SleepMask, perm: &[usize]) -> SleepMask {
    let mut out = 0;
    let mut bits = mask;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        out |= 1 << perm[i];
    }
    out
}

/// Options of one engine run.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Depth and size bounds.
    pub limits: ExploreOptions,
    /// Worker count: `1` runs strictly sequentially; larger values (or
    /// `None` = rayon's thread count) size the stealable subtree frontier of
    /// the parallel path.  Actual parallelism always comes from the global
    /// rayon pool (`RAYON_NUM_THREADS`).
    pub workers: Option<usize>,
    /// How many independent subtrees to carve out per worker (parallel path).
    pub subtrees_per_worker: usize,
    /// Merge configurations reached at the same depth with identical state,
    /// recorded history *and sleep mask*.  Forced on by canonicalizing
    /// strategies.
    pub dedup: bool,
    /// The reduction to apply.
    pub reduction: Reduction,
    /// Transient-fault budget installed on the root: at most this many
    /// [`FaultStep`]s along any explored schedule (see [`crate::fault`]).
    /// 0 (the default) keeps exploration bit-identical to the fault-free
    /// engine.  When exploring from an explicit root that already carries a
    /// positive budget, 0 here leaves that budget untouched.
    pub fault_budget: usize,
    /// Which visited-store backend holds the dedup set (see
    /// [`crate::store`]).  The default in-memory backend is bit-identical
    /// to the pre-seam engine; the spill backend bounds resident memory.
    /// Ignored while deduplication is off.
    pub store: StoreConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            limits: ExploreOptions::default(),
            workers: None,
            subtrees_per_worker: 8,
            dedup: false,
            reduction: Reduction::None,
            fault_budget: 0,
            store: StoreConfig::Mem,
        }
    }
}

impl EngineOptions {
    /// The assumed worker count (resolving `None` against the rayon pool).
    pub fn effective_workers(&self) -> usize {
        self.workers
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }
}

/// The `(fingerprint, sleep-mask, fault-budget)` dedup key of a
/// configuration: a couple of word mixes over the maintained Zobrist
/// fingerprint (a field read since the incremental-fingerprint refactor).
/// [`fault::budget_salt`] is 0 for budget 0, so fault-free keys are
/// unchanged; configurations differing only in remaining budget have
/// different futures and must not merge.  The checkpoint partitioner routes
/// on this same key, which is what makes per-partition visited sets line up
/// with the key ranges exactly.
#[inline]
pub(crate) fn dedup_key(config: &Config, mask: SleepMask) -> u64 {
    zobrist::mix2(
        config.fingerprint(),
        mask ^ fault::budget_salt(config.fault_budget()),
    )
}

/// Shared mutable state of one exploration (used by the sequential path too,
/// with trivial contention).
pub(crate) struct Shared<'a> {
    /// Configurations the whole exploration may still visit (`max_configs`
    /// budget).  Decremented per visit; exhaustion marks truncation.
    pub(crate) budget: AtomicUsize,
    /// Set by `Visit::Stop` (and by budget exhaustion) to halt all workers.
    pub(crate) stopped: AtomicBool,
    /// Whether the budget ran out anywhere.
    pub(crate) truncated: AtomicBool,
    /// The visited store; `None` when deduplication is off.
    pub(crate) store: Option<&'a dyn VisitedStore>,
}

impl Shared<'_> {
    pub(crate) fn claim_visit(&self) -> bool {
        let mut current = self.budget.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                self.truncated.store(true, Ordering::Relaxed);
                self.stopped.store(true, Ordering::Relaxed);
                return false;
            }
            match self.budget.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Whether `(config, mask)` at `depth` is seen for the first time (always
    /// true when deduplication is off): one [`dedup_key`] computation and one
    /// store probe.  Children of a node are probed in a single batched store
    /// call instead (see [`visit_one`]); this entry point serves roots.
    pub(crate) fn first_visit(&self, config: &Config, depth: usize, mask: SleepMask) -> bool {
        match self.store {
            None => true,
            Some(store) => store.insert(dedup_key(config, mask), depth),
        }
    }

    /// Folds the store's final byte accounting into `stats` (the
    /// deterministic peak-memory figures) and latches the truncation flag.
    pub(crate) fn finish_stats(&self, stats: &mut ExploreStats) {
        if let Some(store) = self.store {
            let report = store.report();
            stats.store_bytes = report.bytes;
            stats.bytes_allocated = report.bytes.total();
            stats.store_runs = report.runs_written;
        }
        stats.truncated = self.truncated.load(Ordering::Relaxed);
    }
}

/// Reusable per-walker buffers: the enabled-process list, the expansion
/// output and the batched child-probe staging, cleared and refilled once per
/// visited node so the hot loop allocates nothing after warm-up.
#[derive(Default)]
pub(crate) struct WalkScratch {
    enabled: Vec<ProcessId>,
    children: Vec<(ChildStep, SleepMask)>,
    /// Stepped-and-normalized children awaiting their store verdict.
    pending: Vec<(Config, SleepMask, ChildStep)>,
    /// Their dedup keys, probed in one batched store call per node.
    keys: Vec<(u64, usize)>,
    /// The store's per-child freshness verdicts.
    fresh: Vec<bool>,
}

/// Visits one configuration: claims budget, invokes the visitor, classifies
/// terminals, expands children through the strategy and hands the surviving
/// ones to `emit` (together with the [`ChildStep`] edge that produced each,
/// which the checkpointer records as the frontier path).  Returns `false`
/// when exploration should halt (budget exhausted or `Visit::Stop`).
///
/// The configuration is passed *by value* so the last expanded child can be
/// stepped in place instead of cloned — one whole-configuration clone saved
/// per interior node, on top of the reused `scratch` buffers.
///
/// All of a node's children are probed against the visited store in *one*
/// [`VisitedStore::insert_batch`] call, amortizing backend locking (and, for
/// the spill backend, run probes) across the branching factor.  Insert order
/// within the batch equals the sequential per-child order, and stepping a
/// child never reads the store, so batching is observationally identical to
/// per-child probing — the bit-identical-stats tests pin this.
#[allow(clippy::too_many_arguments)] // one call frame of the hot loop
pub(crate) fn visit_one<V, E>(
    mut config: Config,
    depth: usize,
    mask: SleepMask,
    visitor: &mut V,
    strategy: &dyn ReductionStrategy,
    shared: &Shared<'_>,
    stats: &mut ExploreStats,
    max_depth: usize,
    scratch: &mut WalkScratch,
    mut emit: E,
) -> bool
where
    V: FnMut(&Config, usize) -> Visit,
    E: FnMut(Config, usize, SleepMask, ChildStep),
{
    if !shared.claim_visit() {
        return false;
    }
    stats.visited += 1;
    match visitor(&config, depth) {
        Visit::Stop => {
            shared.stopped.store(true, Ordering::Relaxed);
            return false;
        }
        Visit::Prune => return true,
        Visit::Continue => {}
    }
    config.enabled_into(&mut scratch.enabled);
    if scratch.enabled.is_empty() || depth >= max_depth {
        stats.terminals += 1;
        return true;
    }
    scratch.children.clear();
    strategy.expand(&mut config, &scratch.enabled, mask, &mut scratch.children);
    // Only *process* children count against the enabled set: fault children
    // are extras on top of it, never replacements for a pruned process.
    let exec_children = scratch
        .children
        .iter()
        .filter(|(c, _)| matches!(c, ChildStep::Exec(_)))
        .count();
    stats.pruned += scratch.enabled.len() - exec_children;
    let count = scratch.children.len();
    let mut parent = Some(config);
    scratch.pending.clear();
    for ci in 0..count {
        let (child_step, child_mask) = scratch.children[ci];
        let mut child = if ci + 1 == count {
            parent.take().expect("parent is moved out only once")
        } else {
            parent
                .as_ref()
                .expect("parent alive before last child")
                .clone()
        };
        match child_step {
            ChildStep::Exec(p) => {
                if matches!(child.step(p), StepOutcome::Idle) {
                    continue;
                }
            }
            ChildStep::Fault(f) => {
                if !child.apply_fault(&f) {
                    continue;
                }
            }
        }
        let mut mask = child_mask;
        strategy.normalize(&mut child, &mut mask);
        scratch.pending.push((child, mask, child_step));
    }
    match shared.store {
        None => {
            for (child, mask, step) in scratch.pending.drain(..) {
                emit(child, depth + 1, mask, step);
            }
        }
        Some(store) => {
            scratch.keys.clear();
            scratch.keys.extend(
                scratch
                    .pending
                    .iter()
                    .map(|(child, mask, _)| (dedup_key(child, *mask), depth + 1)),
            );
            scratch.fresh.clear();
            store.insert_batch(&scratch.keys, &mut scratch.fresh);
            for (i, (child, mask, step)) in scratch.pending.drain(..).enumerate() {
                if scratch.fresh[i] {
                    emit(child, depth + 1, mask, step);
                } else {
                    stats.pruned += 1;
                }
            }
        }
    }
    true
}

/// Explores all executions of `implementation` on `workload` sequentially,
/// calling `visitor` on every visited configuration with its depth.
pub fn explore<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
    visitor: F,
) -> ExploreStats
where
    F: FnMut(&Config, usize) -> Visit,
{
    let root = Config::initial(implementation, workload);
    let strategy = options
        .reduction
        .strategy(&root, implementation.process_symmetric_hint());
    explore_with(root, strategy.as_ref(), options, visitor)
}

/// Like [`explore`], but from an explicit root configuration (used by the
/// valency and stability analyses, which start mid-execution).  Symmetry
/// applicability is decided structurally against the given root.
pub fn explore_config<F>(root: Config, options: &EngineOptions, visitor: F) -> ExploreStats
where
    F: FnMut(&Config, usize) -> Visit,
{
    let strategy = options.reduction.strategy(&root, None);
    explore_with(root, strategy.as_ref(), options, visitor)
}

/// The sequential engine path with an explicit (possibly custom) strategy.
pub fn explore_with<F>(
    mut root: Config,
    strategy: &dyn ReductionStrategy,
    options: &EngineOptions,
    mut visitor: F,
) -> ExploreStats
where
    F: FnMut(&Config, usize) -> Visit,
{
    let dedup_on = options.dedup || strategy.requires_dedup();
    let store: Option<Box<dyn VisitedStore>> = if dedup_on {
        Some(
            options
                .store
                .build(1)
                .expect("failed to build the visited store"),
        )
    } else {
        None
    };
    let shared = Shared {
        budget: AtomicUsize::new(options.limits.max_configs),
        stopped: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        store: store.as_deref(),
    };
    let mut stats = ExploreStats::default();
    let mut mask: SleepMask = 0;
    // Fingerprints are only read by the dedup set; don't pay for maintaining
    // them on pure tree walks.
    root.set_fingerprint_tracking(dedup_on, strategy.uses_rename_components());
    if options.fault_budget > 0 {
        root.set_fault_budget(options.fault_budget);
    }
    strategy.normalize(&mut root, &mut mask);
    let mut stack: Vec<(Config, usize, SleepMask)> = Vec::new();
    if shared.first_visit(&root, 0, mask) {
        stack.push((root, 0, mask));
    }
    let mut scratch = WalkScratch::default();
    while let Some((config, depth, mask)) = stack.pop() {
        if !visit_one(
            config,
            depth,
            mask,
            &mut visitor,
            strategy,
            &shared,
            &mut stats,
            options.limits.max_depth,
            &mut scratch,
            |child, d, m, _| stack.push((child, d, m)),
        ) {
            break;
        }
    }
    shared.finish_stats(&mut stats);
    stats
}

/// Explores all executions of `implementation` on `workload` with
/// subtree-stealing workers (semantics of [`explore`]; the visitor is shared,
/// hence `Fn + Sync`).
///
/// Determinism: visited/terminal/pruned counts equal the sequential path's
/// exactly, for any worker count — without dedup because the reduced tree's
/// node count is traversal-order independent, with dedup because expansion is
/// a function of the `(state, history, sleep-mask, depth)` key, so the set of
/// reachable keys is too.  Only `Visit::Stop` and `max_configs` truncation
/// are inherently order-sensitive.
pub fn explore_shared<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
    visitor: F,
) -> ExploreStats
where
    F: Fn(&Config, usize) -> Visit + Sync,
{
    let root = Config::initial(implementation, workload);
    let strategy = options
        .reduction
        .strategy(&root, implementation.process_symmetric_hint());
    explore_shared_with(root, strategy.as_ref(), options, visitor)
}

/// The parallel engine path with an explicit (possibly custom) strategy.
pub fn explore_shared_with<F>(
    mut root: Config,
    strategy: &dyn ReductionStrategy,
    options: &EngineOptions,
    visitor: F,
) -> ExploreStats
where
    F: Fn(&Config, usize) -> Visit + Sync,
{
    let workers = options.effective_workers();
    let target_frontier = workers * options.subtrees_per_worker.max(1);
    let dedup_on = options.dedup || strategy.requires_dedup();
    let store: Option<Box<dyn VisitedStore>> = if dedup_on {
        Some(
            options
                .store
                .build((workers * 4).max(16))
                .expect("failed to build the visited store"),
        )
    } else {
        None
    };
    let shared = Shared {
        budget: AtomicUsize::new(options.limits.max_configs),
        stopped: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        store: store.as_deref(),
    };

    // Phase 1: sequential breadth-first expansion of the root region until
    // enough independent subtree roots exist to keep every worker busy.
    let mut stats = ExploreStats::default();
    let mut frontier: VecDeque<(Config, usize, SleepMask)> = VecDeque::new();
    let mut mask: SleepMask = 0;
    root.set_fingerprint_tracking(dedup_on, strategy.uses_rename_components());
    if options.fault_budget > 0 {
        root.set_fault_budget(options.fault_budget);
    }
    strategy.normalize(&mut root, &mut mask);
    if shared.first_visit(&root, 0, mask) {
        frontier.push_back((root, 0, mask));
    }
    let mut scratch = WalkScratch::default();
    while frontier.len() < target_frontier {
        let Some((config, depth, mask)) = frontier.pop_front() else {
            break;
        };
        let mut shim = |c: &Config, d: usize| visitor(c, d);
        if !visit_one(
            config,
            depth,
            mask,
            &mut shim,
            strategy,
            &shared,
            &mut stats,
            options.limits.max_depth,
            &mut scratch,
            |child, d, m, _| frontier.push_back((child, d, m)),
        ) {
            break;
        }
    }

    // Phase 2: workers steal subtree roots from the frontier and explore
    // each subtree depth-first, all sharing the visitor, the visit budget
    // and (when enabled) the merged dedup set.
    let subtree_stats: Vec<ExploreStats> = frontier
        .into_iter()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(config, depth, mask)| {
            let mut local = ExploreStats::default();
            let mut scratch = WalkScratch::default();
            let mut stack: Vec<(Config, usize, SleepMask)> = vec![(config, depth, mask)];
            while let Some((config, depth, mask)) = stack.pop() {
                if shared.stopped.load(Ordering::Relaxed) {
                    break;
                }
                let mut shim = |c: &Config, d: usize| visitor(c, d);
                if !visit_one(
                    config,
                    depth,
                    mask,
                    &mut shim,
                    strategy,
                    &shared,
                    &mut local,
                    options.limits.max_depth,
                    &mut scratch,
                    |child, d, m, _| stack.push((child, d, m)),
                ) {
                    break;
                }
            }
            local
        })
        .collect();

    for s in subtree_stats {
        stats.visited += s.visited;
        stats.terminals += s.terminals;
        stats.pruned += s.pruned;
    }
    shared.finish_stats(&mut stats);
    stats
}

/// Collects the history of every terminal configuration (quiescent or at the
/// depth bound): the one engine path behind both
/// [`crate::explorer::terminal_histories`] and
/// [`crate::explorer::terminal_histories_par`], selected by
/// [`EngineOptions::workers`].  The result is sorted deterministically (by
/// debug encoding) for every worker count.
pub fn terminal_histories(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
) -> Vec<History> {
    let max_depth = options.limits.max_depth;
    let mut histories = if options.effective_workers() <= 1 {
        let mut out = Vec::new();
        explore(implementation, workload, options, |config, depth| {
            if config.is_quiescent() || depth >= max_depth {
                out.push(config.history().clone());
            }
            Visit::Continue
        });
        out
    } else {
        let out = Mutex::new(Vec::new());
        explore_shared(implementation, workload, options, |config, depth| {
            if config.is_quiescent() || depth >= max_depth {
                out.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .push(config.history().clone());
            }
            Visit::Continue
        });
        out.into_inner().unwrap_or_else(|p| p.into_inner())
    };
    histories.sort_by_cached_key(|h| format!("{h:?}"));
    histories
}

/// Checks `predicate` against the history of every reachable configuration
/// and returns a violating history if one exists: the one engine path behind
/// [`crate::explorer::find_history_violation`] and its `_par` twin.  With one
/// worker the *first* violation in DFS order is returned; with several, *a*
/// violation (there is no meaningful "first" under concurrency).
pub fn find_history_violation<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
    predicate: F,
) -> Option<History>
where
    F: Fn(&History) -> bool + Sync,
{
    if options.effective_workers() <= 1 {
        let mut violation = None;
        explore(implementation, workload, options, |config, _| {
            if !predicate(config.history()) {
                violation = Some(config.history().clone());
                Visit::Stop
            } else {
                Visit::Continue
            }
        });
        violation
    } else {
        let violation = Mutex::new(None);
        explore_shared(implementation, workload, options, |config, _| {
            if !predicate(config.history()) {
                *violation
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) =
                    Some(config.history().clone());
                Visit::Stop
            } else {
                Visit::Continue
            }
        });
        violation.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::{objects, BaseObject};
    use crate::program::{LocalSpecImplementation, ProcessLogic, TaskStep};
    use evlin_spec::{FetchIncrement, Invocation, Register, Value};
    use std::sync::Arc;

    /// A two-phase fetch&increment over one shared register per process:
    /// write your own slot, then read the others — plenty of commuting
    /// accesses for the sleep sets to prune, and a process id baked into the
    /// programme state (so symmetry must detect asymmetry structurally).
    #[derive(Debug, Clone)]
    struct ScanCounter {
        processes: usize,
    }

    #[derive(Debug, Clone)]
    struct ScanLogic {
        me: usize,
        n: usize,
        count: i64,
        at: usize,
        sum: i64,
        running: bool,
    }

    impl Implementation for ScanCounter {
        fn name(&self) -> String {
            "scan counter".into()
        }
        fn processes(&self) -> usize {
            self.processes
        }
        fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
            (0..self.processes)
                .map(|_| objects::register(Value::from(0i64)))
                .collect()
        }
        fn new_process(&self, p: ProcessId) -> Box<dyn ProcessLogic> {
            Box::new(ScanLogic {
                me: p.index(),
                n: self.processes,
                count: 0,
                at: 0,
                sum: 0,
                running: false,
            })
        }
        fn process_symmetric_hint(&self) -> Option<bool> {
            Some(false)
        }
    }

    impl ProcessLogic for ScanLogic {
        fn begin(&mut self, _invocation: Invocation) {
            self.running = true;
            self.at = 0;
            self.sum = 0;
            self.count += 1;
        }
        fn step(&mut self, previous: Option<Value>) -> TaskStep {
            if self.at == 0 {
                self.at = 1;
                return TaskStep::Access {
                    object: self.me,
                    invocation: Register::write(Value::from(self.count)),
                };
            }
            if self.at > 1 {
                self.sum += previous.and_then(|v| v.as_int()).unwrap_or(0);
            }
            // Scan the other processes' registers in index order.
            let k = (0..self.n).filter(|&k| k != self.me).nth(self.at - 1);
            match k {
                Some(object) => {
                    self.at += 1;
                    TaskStep::Access {
                        object,
                        invocation: Register::read(),
                    }
                }
                None => {
                    self.running = false;
                    TaskStep::Complete(Value::from(self.sum + self.count - 1))
                }
            }
        }
        fn clone_box(&self) -> Box<dyn ProcessLogic> {
            Box::new(self.clone())
        }
    }

    fn fi_local(n: usize) -> LocalSpecImplementation {
        LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), n)
    }

    fn options(reduction: Reduction) -> EngineOptions {
        EngineOptions {
            reduction,
            workers: Some(1),
            ..EngineOptions::default()
        }
    }

    #[test]
    fn no_reduction_matches_raw_tree_counts() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let stats = explore(&imp, &w, &options(Reduction::None), |_, _| Visit::Continue);
        assert_eq!((stats.visited, stats.terminals, stats.pruned), (5, 2, 0));
    }

    #[test]
    fn sleep_sets_prune_commuting_register_scans() {
        let imp = ScanCounter { processes: 3 };
        let w = Workload::uniform(3, Invocation::nullary("fetch_inc"), 1);
        let raw = explore(&imp, &w, &options(Reduction::None), |_, _| Visit::Continue);
        let reduced = explore(&imp, &w, &options(Reduction::SleepSet), |_, _| {
            Visit::Continue
        });
        assert!(!raw.truncated && !reduced.truncated);
        assert!(
            reduced.visited < raw.visited,
            "sleep sets must prune: raw {raw:?}, reduced {reduced:?}"
        );
        assert!(reduced.pruned > 0);
        // Every distinct terminal history is preserved exactly.
        let collect = |r: Reduction| {
            let mut hs = Vec::new();
            explore(&imp, &w, &options(r), |c, d| {
                if c.is_quiescent() || d >= 64 {
                    hs.push(format!("{:?}", c.history()));
                }
                Visit::Continue
            });
            hs.sort();
            hs.dedup();
            hs
        };
        assert_eq!(collect(Reduction::None), collect(Reduction::SleepSet));
    }

    #[test]
    fn symmetry_canonicalization_merges_renamed_configs() {
        let imp = fi_local(3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        let raw = explore(&imp, &w, &options(Reduction::None), |_, _| Visit::Continue);
        let reduced = explore(&imp, &w, &options(Reduction::Symmetry), |_, _| {
            Visit::Continue
        });
        assert!(!raw.truncated && !reduced.truncated);
        assert!(
            reduced.visited * 2 < raw.visited,
            "symmetry must merge orbits: raw {raw:?}, reduced {reduced:?}"
        );
    }

    #[test]
    fn symmetry_detection_vetoes_and_degrades() {
        // Hint veto: the scan counter embeds process ids.
        let scan = ScanCounter { processes: 2 };
        let root = Config::initial(
            &scan,
            &Workload::uniform(2, Invocation::nullary("fetch_inc"), 1),
        );
        assert!(!SymmetryReduction::detect(&root, scan.process_symmetric_hint()).is_applicable());
        // Structural veto: asymmetric workload.
        let imp = fi_local(2);
        let skew = Config::initial(
            &imp,
            &Workload::new(vec![vec![FetchIncrement::fetch_inc()], Vec::new()]),
        );
        assert!(!SymmetryReduction::detect(&skew, None).is_applicable());
        // Applicable: uniform workload over identical programmes.
        let fair = Config::initial(&imp, &Workload::uniform(2, FetchIncrement::fetch_inc(), 1));
        assert!(SymmetryReduction::detect(&fair, None).is_applicable());
    }

    #[test]
    fn combined_reduction_beats_either_alone_and_keeps_verdicts() {
        let imp = fi_local(4);
        let w = Workload::uniform(4, FetchIncrement::fetch_inc(), 2);
        let run = |r: Reduction| explore(&imp, &w, &options(r), |_, _| Visit::Continue);
        let raw = run(Reduction::None);
        let combined = run(Reduction::SleepSetSymmetry);
        assert!(!raw.truncated && !combined.truncated);
        assert!(
            combined.visited * 5 <= raw.visited,
            "raw {raw:?} vs {combined:?}"
        );
        // The local-copy fetch&inc duplicates responses in some interleaving;
        // the reduced engines must still find that violation.
        for r in [
            Reduction::None,
            Reduction::SleepSet,
            Reduction::Symmetry,
            Reduction::SleepSetSymmetry,
        ] {
            let violation = find_history_violation(
                &imp,
                &w,
                &EngineOptions {
                    reduction: r,
                    workers: Some(1),
                    ..EngineOptions::default()
                },
                |h| {
                    h.complete_operations()
                        .iter()
                        .filter(|o| o.response == Some(Value::from(0i64)))
                        .count()
                        < 2
                },
            );
            assert!(violation.is_some(), "strategy {r:?} lost the violation");
        }
    }

    #[test]
    fn stats_identical_across_worker_counts() {
        let imp = fi_local(3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        for reduction in [
            Reduction::None,
            Reduction::SleepSet,
            Reduction::Symmetry,
            Reduction::SleepSetSymmetry,
        ] {
            let reference = explore(&imp, &w, &options(reduction), |_, _| Visit::Continue);
            for workers in [1, 2, 4, 8] {
                let parallel = explore_shared(
                    &imp,
                    &w,
                    &EngineOptions {
                        reduction,
                        workers: Some(workers),
                        subtrees_per_worker: 4,
                        ..EngineOptions::default()
                    },
                    |_, _| Visit::Continue,
                );
                assert_eq!(
                    parallel, reference,
                    "{reduction:?} diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn fault_budget_multiplies_the_tree_and_every_strategy_keeps_verdicts() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let fault_options = |r: Reduction| EngineOptions {
            reduction: r,
            workers: Some(1),
            fault_budget: 1,
            ..EngineOptions::default()
        };
        let clean = explore(&imp, &w, &options(Reduction::None), |_, _| Visit::Continue);
        let faulty = explore(&imp, &w, &fault_options(Reduction::None), |_, _| {
            Visit::Continue
        });
        assert!(!clean.truncated && !faulty.truncated);
        assert!(
            faulty.visited > clean.visited,
            "fault children must widen the tree: clean {clean:?}, faulty {faulty:?}"
        );
        // Terminal-history sets are identical across strategies (symmetry
        // canonicalizes, but fi_local histories of a uniform workload are
        // closed under renaming only as a *set*, so compare canonical forms
        // through sorting the debug encodings of all renamings' minima — for
        // this 2-process uniform case plain sleep-set equality suffices).
        let collect = |o: &EngineOptions| {
            let mut hs = Vec::new();
            explore(&imp, &w, o, |c, d| {
                if c.is_quiescent() || d >= 64 {
                    hs.push(format!("{:?}", c.history()));
                }
                Visit::Continue
            });
            hs.sort();
            hs.dedup();
            hs
        };
        assert_eq!(
            collect(&fault_options(Reduction::None)),
            collect(&fault_options(Reduction::SleepSet)),
        );
    }

    #[test]
    fn zero_budget_exploration_is_bit_identical_to_fault_free() {
        // The k=0 path must not perturb stats, keys or dedup behaviour.
        let imp = fi_local(3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        for reduction in [
            Reduction::None,
            Reduction::SleepSet,
            Reduction::Symmetry,
            Reduction::SleepSetSymmetry,
        ] {
            let base = explore(&imp, &w, &options(reduction), |_, _| Visit::Continue);
            let zero = explore(
                &imp,
                &w,
                &EngineOptions {
                    reduction,
                    workers: Some(1),
                    fault_budget: 0,
                    ..EngineOptions::default()
                },
                |_, _| Visit::Continue,
            );
            assert_eq!(base, zero, "{reduction:?} diverged at budget 0");
        }
    }

    #[test]
    fn fault_stats_identical_across_worker_counts() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        for reduction in [
            Reduction::None,
            Reduction::SleepSet,
            Reduction::SleepSetSymmetry,
        ] {
            let reference = explore(
                &imp,
                &w,
                &EngineOptions {
                    reduction,
                    workers: Some(1),
                    fault_budget: 1,
                    ..EngineOptions::default()
                },
                |_, _| Visit::Continue,
            );
            for workers in [2, 4] {
                let parallel = explore_shared(
                    &imp,
                    &w,
                    &EngineOptions {
                        reduction,
                        workers: Some(workers),
                        subtrees_per_worker: 4,
                        fault_budget: 1,
                        ..EngineOptions::default()
                    },
                    |_, _| Visit::Continue,
                );
                assert_eq!(
                    parallel, reference,
                    "{reduction:?} diverged at {workers} workers with faults"
                );
            }
        }
    }

    #[test]
    fn permutation_table_is_lexicographic_with_identity_first() {
        let perms = permutations(3);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2]);
        assert_eq!(perms[5], vec![2, 1, 0]);
        assert_eq!(permute_mask(0b101, &[2, 1, 0]), 0b101);
        assert_eq!(permute_mask(0b011, &[1, 2, 0]), 0b110);
    }

    #[test]
    fn terminal_histories_sorted_and_worker_independent() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
        let seq = terminal_histories(&imp, &w, &options(Reduction::None));
        let par = terminal_histories(
            &imp,
            &w,
            &EngineOptions {
                workers: Some(4),
                subtrees_per_worker: 4,
                ..EngineOptions::default()
            },
        );
        assert_eq!(seq, par);
        assert!(!seq.is_empty());
    }
}
