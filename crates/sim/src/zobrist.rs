//! Keyed mixing for incremental, Zobrist-style structural fingerprints.
//!
//! Classic Zobrist hashing assigns every *(position, content)* pair an
//! independent random key and identifies a composite state with the XOR of
//! the keys of its parts; because XOR is its own inverse, changing one part
//! updates the fingerprint in O(1) instead of rehashing the whole state.
//! Rather than materialize a key table, this module derives each key on
//! demand by running the part's coordinates through a splitmix64 finalizer
//! chain — a standard table-free variant with the same independence
//! properties (each key is a pseudo-random function of its coordinates).
//!
//! [`crate::config::Config`] folds one [`component`] per base object, per
//! process state and per recorded history event into a maintained
//! fingerprint, so `Config::fingerprint()` — the deduplication key of the
//! exploration engine — is a field read instead of a full-state
//! serialization.  The checker kernel uses the same construction for its
//! incremental visited-cache keys.

use std::hash::{Hash, Hasher};

/// The splitmix64 finalizer: a cheap bijective avalanche function.  Every
/// output bit depends on every input bit, which is what makes the derived
/// component keys behave like independent random table entries.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes two words into one (order-sensitive).
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix(a ^ mix(b))
}

/// Domain-separation tag for base-object components.
pub const TAG_OBJECT: u64 = 0x6f62_6a65_6374_0001;
/// Domain-separation tag for process-state components.
pub const TAG_PROCESS: u64 = 0x7072_6f63_6573_0002;
/// Domain-separation tag for history-event components.
pub const TAG_EVENT: u64 = 0x6576_656e_7400_0003;

/// The derived Zobrist key of one part of a composite state: `tag` selects
/// the part kind, `slot` its position, `content` a hash of its value.  The
/// fingerprint of the whole state is the XOR of its parts' components.
#[inline]
pub fn component(tag: u64, slot: u64, content: u64) -> u64 {
    mix(tag ^ mix2(slot, content))
}

/// Folds a slice of words into one fingerprint, one `mix` round per word.
///
/// This is the batch counterpart of [`component`]: where the incremental
/// fingerprint XORs independently keyed parts so single-part updates are
/// O(1), `fold_words` hashes a whole *run* of words whose identity is their
/// order — an event frame, a segment's packed event stream — in a single
/// word-at-a-time sweep.  The fold is order-sensitive (each word is mixed
/// with the running state before the next) and length-separated (`seed`
/// plus a final length fold), so a frame split at a different boundary
/// produces a different fingerprint while the concatenated stream hash is a
/// pure function of the word sequence.
#[inline]
pub fn fold_words(seed: u64, words: &[u64]) -> u64 {
    let mut acc = mix(seed ^ TAG_FOLD);
    for &w in words {
        acc = mix(acc ^ w);
    }
    mix(acc ^ (words.len() as u64))
}

/// Domain-separation tag for [`fold_words`] batch fingerprints.
pub const TAG_FOLD: u64 = 0x666f_6c64_0000_0004;

/// The top `bits` bits of a fingerprint, right-aligned: the *prefix* used to
/// route a key to a shard or partition.  Because every fingerprint in this
/// workspace goes through [`mix`] (an avalanching bijection), the high bits
/// are uniformly distributed, so prefix routing balances shards without a
/// second hash.  `bits == 0` yields `0` (the one-shard / one-partition
/// degenerate case — shifting by 64 would be undefined).
#[inline]
pub fn prefix(key: u64, bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        key >> (64 - bits)
    }
}

/// The shard index of `key` among `1 << shards_log2` prefix shards: the
/// [`prefix`] of `shards_log2` bits, as a `usize`.  This is the single
/// routing function shared by the prefix-sharded visited stores
/// ([`crate::store`]) and the fingerprint-range partitioner
/// ([`crate::checkpoint::partition_ranges`]), which is what makes a
/// partitioned exploration's per-partition stores line up with the key
/// ranges exactly.
#[inline]
pub fn prefix_shard(key: u64, shards_log2: u32) -> usize {
    prefix(key, shards_log2) as usize
}

/// The Fx hash function (as used by rustc): a fast non-cryptographic word
/// mixer used to reduce part *contents* (debug renderings, `Hash` impls) to
/// the `content` word of a [`component`].  Identical to the hasher the
/// checker kernel uses for its hot-path tables.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-chunked mixing: `hash_debug` streams whole debug renderings
        // through here once per step on the tracked hot paths, so one mix
        // round per 8 bytes (plus a tail) matters — byte-at-a-time would be
        // ~8× the work.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            let mut tail = [0u8; 8];
            tail[..remainder.len()].copy_from_slice(remainder);
            // Fold the tail length in so "ab" + "c" ≠ "abc" + "".
            self.add(u64::from_le_bytes(tail) ^ (remainder.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Streams a value's `Debug` rendering straight into a hasher, so content
/// hashing allocates no intermediate strings.
struct HashWriter<'a, H: Hasher>(&'a mut H);

impl<H: Hasher> std::fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// The content hash of a value's `Debug` rendering (used for trait objects —
/// programme states, base objects — whose only uniform structural view is
/// their debug output, which for the state machines in this workspace prints
/// every field).
pub fn hash_debug(value: &dyn std::fmt::Debug) -> u64 {
    use std::fmt::Write as _;
    let mut hasher = FxHasher::default();
    write!(HashWriter(&mut hasher), "{value:?}").expect("hashing cannot fail");
    hasher.finish()
}

/// The content hash of a `Hash` value.
pub fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_avalanches_single_bits() {
        // Flipping one input bit must flip roughly half the output bits.
        for bit in 0..64 {
            let a = mix(0);
            let b = mix(1u64 << bit);
            let flipped = (a ^ b).count_ones();
            assert!(
                (8..=56).contains(&flipped),
                "bit {bit}: only {flipped} output bits flipped"
            );
        }
    }

    #[test]
    fn components_separate_domains_and_slots() {
        let c = component(TAG_OBJECT, 0, 42);
        assert_ne!(c, component(TAG_PROCESS, 0, 42));
        assert_ne!(c, component(TAG_OBJECT, 1, 42));
        assert_ne!(c, component(TAG_OBJECT, 0, 43));
        // XOR self-inverse: folding a component twice removes it.
        assert_eq!(c ^ c, 0);
    }

    #[test]
    fn debug_and_hash_content_hashes_are_deterministic() {
        assert_eq!(hash_debug(&(1, "x")), hash_debug(&(1, "x")));
        assert_ne!(hash_debug(&(1, "x")), hash_debug(&(2, "x")));
        assert_eq!(hash_of("abc"), hash_of("abc"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn fold_words_is_order_and_length_sensitive() {
        assert_eq!(fold_words(0, &[1, 2, 3]), fold_words(0, &[1, 2, 3]));
        assert_ne!(fold_words(0, &[1, 2, 3]), fold_words(0, &[3, 2, 1]));
        assert_ne!(fold_words(0, &[1, 2]), fold_words(0, &[1, 2, 0]));
        assert_ne!(fold_words(0, &[]), fold_words(0, &[0]));
        assert_ne!(fold_words(0, &[1]), fold_words(1, &[1]));
    }

    #[test]
    fn fold_words_chains_across_chunks() {
        // Folding a stream in chunks, threading the accumulator as the next
        // seed, must be sensitive to the chunk boundary only through the
        // explicit length folds — i.e. re-chunking changes the value (each
        // chunk folds its own length), while identical chunking is stable.
        let a = fold_words(fold_words(7, &[1, 2]), &[3, 4]);
        let b = fold_words(fold_words(7, &[1, 2]), &[3, 4]);
        assert_eq!(a, b);
        assert_ne!(a, fold_words(fold_words(7, &[1, 2, 3]), &[4]));
    }
}
