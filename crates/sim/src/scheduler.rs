//! Schedulers: the adversary that chooses which process takes the next step.

use crate::config::Config;
use evlin_history::ProcessId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Chooses which enabled process takes the next atomic step.
pub trait Scheduler {
    /// Returns the process to step next, or `None` to stop the run (e.g. all
    /// interesting processes are crashed or the configuration is quiescent).
    fn next(&mut self, config: &Config) -> Option<ProcessId>;
}

/// Deterministic round-robin over the enabled processes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    last: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobinScheduler { last: 0 }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, config: &Config) -> Option<ProcessId> {
        let n = config.processes();
        if n == 0 {
            return None;
        }
        for offset in 1..=n {
            let candidate = ProcessId((self.last + offset) % n);
            if config.is_enabled(candidate) {
                self.last = candidate.index();
                return Some(candidate);
            }
        }
        None
    }
}

/// Uniformly random choice among enabled processes, from a seeded generator
/// so runs are reproducible.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with the given seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, config: &Config) -> Option<ProcessId> {
        let enabled = config.enabled_processes();
        enabled.choose(&mut self.rng).copied()
    }
}

/// An adversarial scheduler that runs one process for a burst of steps before
/// switching to the next — the "unusually high contention" / "swapped out"
/// pattern the introduction of the paper describes, and the kind of schedule
/// that maximizes staleness for eventually consistent implementations.
#[derive(Debug, Clone)]
pub struct SoloBurstScheduler {
    burst: usize,
    remaining_in_burst: usize,
    current: usize,
}

impl SoloBurstScheduler {
    /// Creates a scheduler that gives each process `burst` consecutive steps.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero.
    pub fn new(burst: usize) -> Self {
        assert!(burst > 0, "burst length must be positive");
        SoloBurstScheduler {
            burst,
            remaining_in_burst: burst,
            current: 0,
        }
    }
}

impl Scheduler for SoloBurstScheduler {
    fn next(&mut self, config: &Config) -> Option<ProcessId> {
        let n = config.processes();
        if n == 0 {
            return None;
        }
        for _ in 0..n {
            let candidate = ProcessId(self.current % n);
            if self.remaining_in_burst == 0 || !config.is_enabled(candidate) {
                self.current = (self.current + 1) % n;
                self.remaining_in_burst = self.burst;
                continue;
            }
            self.remaining_in_burst -= 1;
            return Some(candidate);
        }
        // Everyone was disabled at burst boundaries; fall back to any enabled
        // process.
        config.enabled_processes().first().copied()
    }
}

/// Wraps another scheduler and permanently removes ("crashes") a set of
/// processes: they are never scheduled again, modelling the wait-freedom
/// adversary that stops a process at an arbitrary point.
#[derive(Debug, Clone)]
pub struct CrashScheduler<S> {
    inner: S,
    crashed: BTreeSet<ProcessId>,
}

impl<S: Scheduler> CrashScheduler<S> {
    /// Creates a crash wrapper with an initially empty crash set.
    pub fn new(inner: S) -> Self {
        CrashScheduler {
            inner,
            crashed: BTreeSet::new(),
        }
    }

    /// Crashes process `p`: it will never be scheduled again.
    pub fn crash(&mut self, p: ProcessId) {
        self.crashed.insert(p);
    }

    /// The set of crashed processes.
    pub fn crashed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashed.iter().copied()
    }
}

impl<S: Scheduler> Scheduler for CrashScheduler<S> {
    fn next(&mut self, config: &Config) -> Option<ProcessId> {
        // Ask the inner scheduler repeatedly, skipping crashed processes; give
        // up after a bounded number of attempts to avoid spinning forever when
        // only crashed processes are enabled.
        for _ in 0..(config.processes() * 4).max(4) {
            match self.inner.next(config) {
                Some(p) if self.crashed.contains(&p) => continue,
                other => return other,
            }
        }
        // Fall back to any enabled, non-crashed process.
        config
            .enabled_processes()
            .into_iter()
            .find(|p| !self.crashed.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use crate::workload::Workload;
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    fn config(processes: usize, ops: usize) -> Config {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), processes);
        let w = Workload::uniform(processes, FetchIncrement::fetch_inc(), ops);
        Config::initial(&imp, &w)
    }

    #[test]
    fn round_robin_alternates() {
        let mut c = config(3, 2);
        let mut s = RoundRobinScheduler::new();
        let picks: Vec<_> = (0..6)
            .map(|_| {
                let p = s.next(&c).unwrap();
                c.step(p);
                p.index()
            })
            .collect();
        assert_eq!(picks, vec![1, 2, 0, 1, 2, 0]);
        assert!(s.next(&c).is_none(), "everything completed");
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let c = config(4, 3);
        let mut a = RandomScheduler::seeded(42);
        let mut b = RandomScheduler::seeded(42);
        for _ in 0..10 {
            assert_eq!(a.next(&c), b.next(&c));
        }
    }

    #[test]
    fn solo_burst_gives_consecutive_steps() {
        let mut c = config(2, 5);
        let mut s = SoloBurstScheduler::new(3);
        let picks: Vec<_> = (0..6)
            .map(|_| {
                let p = s.next(&c).unwrap();
                c.step(p);
                p.index()
            })
            .collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn zero_burst_is_rejected() {
        let _ = SoloBurstScheduler::new(0);
    }

    #[test]
    fn crash_scheduler_never_schedules_crashed_process() {
        let mut c = config(2, 4);
        let mut s = CrashScheduler::new(RoundRobinScheduler::new());
        s.crash(ProcessId(0));
        for _ in 0..4 {
            let p = s.next(&c).unwrap();
            assert_eq!(p, ProcessId(1));
            c.step(p);
        }
        assert_eq!(s.crashed().collect::<Vec<_>>(), vec![ProcessId(0)]);
        // Only the crashed process has work left.
        assert!(s.next(&c).is_none());
    }
}
