//! Transient-fault injection for exhaustive exploration.
//!
//! A *transient fault* (in the self-stabilization tradition of Dubois,
//! Masuzawa and Tixeuil) corrupts one component of a configuration — one
//! shared base object or one process's programme state — to an arbitrary
//! other reachable value of its type, without recording any history event.
//! The paper's eventually-linearizable objects are exactly the specs whose
//! value shows up under such faults: the interesting claim is not that clean
//! runs are consistent but that corrupted runs *re-converge*, which
//! experiment E15 quantifies as a stabilization bound per fault count.
//!
//! The injection surface is deliberately small:
//!
//! * [`FaultStep`] names one injectable corruption — a [`FaultTarget`] plus a
//!   variant index into that component's deterministic corruption enumeration
//!   ([`crate::base::BaseObject::corruption_count`] /
//!   [`crate::program::ProcessLogic::corruption_count`]).
//! * [`crate::config::Config`] carries a *fault budget* (≤ k faults per
//!   schedule); [`crate::config::Config::for_each_fault`] enumerates the
//!   injectable faults while budget remains and
//!   [`crate::config::Config::apply_fault`] spends one budget unit to apply
//!   one, maintaining the incremental Zobrist fingerprint exactly.
//! * [`crate::engine`] threads fault children through
//!   [`crate::engine::ReductionStrategy::expand`]: faults are
//!   dependent-with-everything for the sleep-set reduction (they are never
//!   slept and wake every sleeper), and they are applied *before* symmetry
//!   canonicalization, so renaming permutes fault-corrupted state like any
//!   other state.  Deduplication keys are salted with [`budget_salt`] so
//!   configurations differing only in remaining budget never merge — and the
//!   salt is `0` when the budget is `0`, which keeps every fault-free
//!   exploration bit-identical to the pre-fault engine.

use crate::zobrist;

/// Domain-separation tag for the [`budget_salt`] mix.
const TAG_FAULT: u64 = 0x6661_756c_7400_0004;

/// Cap on the reachable-state enumeration behind the provided corruption
/// implementations ([`crate::base::SpecObject`],
/// [`crate::program::LocalSpecLogic`]): each corruptible component offers at
/// most this many (minus the current state) corruption variants, keeping the
/// fault fan-out per node bounded.
pub const CORRUPTION_STATE_CAP: usize = 6;

/// Which component of a configuration a transient fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The shared base object at this index of the configuration's
    /// base-object vector.
    Object(usize),
    /// The programme state of the process with this index.
    Process(usize),
}

/// One injectable transient fault: corrupt `target` to its `variant`-th
/// enumerable corruption (an index into the component's
/// `corruption_count()`-sized, deterministic corruption list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultStep {
    /// The component to corrupt.
    pub target: FaultTarget,
    /// Index into the target's corruption enumeration.
    pub variant: usize,
}

/// The word folded into the engine's deduplication keys alongside the sleep
/// mask: a mix of the configuration's *remaining* fault budget.
///
/// Two configurations with identical state but different remaining budgets
/// have different futures (one can still inject faults the other cannot), so
/// they must not merge.  The salt is `0` when the budget is `0`: fault-free
/// exploration produces exactly the keys it produced before fault injection
/// existed, which is what holds the k=0 overhead gate at zero drift.
#[inline]
pub fn budget_salt(remaining: usize) -> u64 {
    if remaining == 0 {
        0
    } else {
        zobrist::mix(TAG_FAULT ^ remaining as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_has_zero_salt() {
        assert_eq!(budget_salt(0), 0);
        assert_ne!(budget_salt(1), 0);
        assert_ne!(budget_salt(1), budget_salt(2));
        assert_ne!(budget_salt(2), budget_salt(3));
    }

    #[test]
    fn fault_steps_are_plain_comparable_data() {
        let a = FaultStep {
            target: FaultTarget::Object(0),
            variant: 1,
        };
        let b = FaultStep {
            target: FaultTarget::Process(0),
            variant: 1,
        };
        assert_ne!(a, b);
        assert_eq!(a, a);
    }
}
