//! Eventually linearizable base objects.
//!
//! The negative results of the paper (Theorem 12, Proposition 15) quantify
//! over implementations built from *eventually linearizable* base objects,
//! i.e. objects that may misbehave — while staying weakly consistent — for an
//! arbitrary finite prefix of the execution and behave linearizably
//! afterwards.
//!
//! [`EventuallyLinearizable`] is an adversarial model of such an object:
//!
//! * **before stabilization** every process is served from its own local copy
//!   of the object (exactly the behaviour exploited in the proof of
//!   Theorem 12), which is weakly consistent by construction because each
//!   response is justified by the process's own earlier operations;
//! * **at stabilization** (decided by a [`StabilizationPolicy`]) the wrapper
//!   replays every operation logged so far — in an order consistent with each
//!   process's program order — onto a fresh copy of the object and adopts the
//!   resulting state;
//! * **after stabilization** the object behaves like a linearizable
//!   [`crate::base::SpecObject`].
//!
//! With `StabilizationPolicy::Never` the object is exactly the "local copies"
//! substitution used in the proof of Theorem 12.

use crate::base::{BaseObject, PidDependence};
use evlin_history::ProcessId;
use evlin_spec::{Invocation, ObjectType, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// When an [`EventuallyLinearizable`] object stops misbehaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabilizationPolicy {
    /// The object never stabilizes within the (finite) execution.  This is
    /// the strongest adversary allowed by the definition for finite
    /// executions: every finite prefix of an eventually linearizable object's
    /// execution may still be pre-stabilization.
    Never,
    /// The object stabilizes after it has served the given number of
    /// accesses.
    AfterAccesses(usize),
}

/// An adversarially weak, eventually linearizable base object wrapping a
/// deterministic object type.
#[derive(Clone)]
pub struct EventuallyLinearizable {
    ty: Arc<dyn ObjectType>,
    initial: Value,
    policy: StabilizationPolicy,
    accesses: usize,
    /// Per-process local copies used before stabilization.
    local: BTreeMap<ProcessId, Value>,
    /// Log of all operations applied before stabilization, in arrival order
    /// (which respects each process's program order).
    log: Vec<(ProcessId, Invocation)>,
    /// The merged, authoritative state after stabilization.
    global: Option<Value>,
}

impl EventuallyLinearizable {
    /// Creates an eventually linearizable object of the given type, starting
    /// in the type's first initial state.
    pub fn new(ty: Arc<dyn ObjectType>, policy: StabilizationPolicy) -> Self {
        let initial = ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        EventuallyLinearizable {
            ty,
            initial,
            policy,
            accesses: 0,
            local: BTreeMap::new(),
            log: Vec::new(),
            global: None,
        }
    }

    /// Whether the object has stabilized.
    pub fn is_stabilized(&self) -> bool {
        self.global.is_some()
    }

    /// Number of accesses served so far.
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    fn maybe_stabilize(&mut self) {
        if self.global.is_some() {
            return;
        }
        let due = match self.policy {
            StabilizationPolicy::Never => false,
            StabilizationPolicy::AfterAccesses(k) => self.accesses >= k,
        };
        if due {
            // Replay the log (arrival order respects per-process program
            // order) onto a fresh copy to obtain the merged state.
            let mut state = self.initial.clone();
            for (_, inv) in &self.log {
                if let Ok((_, next)) = self.ty.apply_deterministic(&state, inv) {
                    state = next;
                }
            }
            self.global = Some(state);
        }
    }
}

impl fmt::Debug for EventuallyLinearizable {
    // The full state (local copies, log, merged state) is printed because
    // `Config::fingerprint` folds base objects in via their Debug output;
    // omitting a field would make distinct configurations collide and let
    // deduplicating exploration unsoundly prune subtrees.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventuallyLinearizable")
            .field("type", &self.ty.name())
            .field("policy", &self.policy)
            .field("accesses", &self.accesses)
            .field("local", &self.local)
            .field("log", &self.log)
            .field("global", &self.global)
            .finish()
    }
}

impl BaseObject for EventuallyLinearizable {
    fn invoke(&mut self, process: ProcessId, invocation: &Invocation) -> Value {
        // Stabilization is decided by the number of accesses *already served*:
        // with `AfterAccesses(k)` the first `k` accesses are pre-stabilization
        // and every later access is served from the merged, linearizable state.
        self.maybe_stabilize();
        self.accesses += 1;
        if let Some(global) = &self.global {
            let (resp, next) = self
                .ty
                .apply_deterministic(global, invocation)
                .unwrap_or_else(|err| panic!("invalid access to {}: {err}", self.ty.name()));
            self.global = Some(next);
            resp
        } else {
            let state = self
                .local
                .entry(process)
                .or_insert_with(|| self.initial.clone());
            let (resp, next) = self
                .ty
                .apply_deterministic(state, invocation)
                .unwrap_or_else(|err| panic!("invalid access to {}: {err}", self.ty.name()));
            *state = next;
            self.log.push((process, invocation.clone()));
            resp
        }
    }

    fn clone_box(&self) -> Box<dyn BaseObject> {
        Box::new(self.clone())
    }

    fn state_value(&self) -> Value {
        match &self.global {
            Some(g) => g.clone(),
            None => Value::list(self.local.values().cloned()),
        }
    }

    fn type_name(&self) -> String {
        format!("eventually-linearizable {}", self.ty.name())
    }

    // The pre-stabilization state is keyed by process ids (local copies and
    // the replay log), but both are plain maps/sequences over `ProcessId`, so
    // a renaming reaches every occurrence.  The *values* are states of the
    // wrapped deterministic type and never mention processes.
    fn pid_dependence(&self) -> PidDependence {
        PidDependence::Permutable
    }

    fn permute_processes(&mut self, perm: &[usize]) {
        let local = std::mem::take(&mut self.local);
        self.local = local
            .into_iter()
            .map(|(p, v)| (ProcessId(perm[p.index()]), v))
            .collect();
        for (p, _) in &mut self.log {
            *p = ProcessId(perm[p.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{Counter, FetchIncrement, Register};

    #[test]
    fn debug_distinguishes_internal_state() {
        // Two objects with the same access count but different logged writes
        // must have different Debug output: `Config::fingerprint` relies on
        // Debug to expose the full state, and a collision here would let
        // deduplicating exploration unsoundly merge distinct configurations.
        let base = EventuallyLinearizable::new(
            Arc::new(Register::new(Value::from(0i64))),
            StabilizationPolicy::Never,
        );
        let mut wrote_seven = base.clone();
        wrote_seven.invoke(ProcessId(0), &Register::write(Value::from(7i64)));
        let mut wrote_eight = base.clone();
        wrote_eight.invoke(ProcessId(0), &Register::write(Value::from(8i64)));
        assert_eq!(wrote_seven.accesses(), wrote_eight.accesses());
        assert_ne!(format!("{wrote_seven:?}"), format!("{wrote_eight:?}"));
    }

    #[test]
    fn never_stabilizing_register_serves_local_copies() {
        let mut r = EventuallyLinearizable::new(
            Arc::new(Register::new(Value::from(0i64))),
            StabilizationPolicy::Never,
        );
        r.invoke(ProcessId(0), &Register::write(Value::from(7i64)));
        // Process 1 does not see process 0's write…
        assert_eq!(r.invoke(ProcessId(1), &Register::read()), Value::from(0i64));
        // …but process 0 sees its own write (weak consistency).
        assert_eq!(r.invoke(ProcessId(0), &Register::read()), Value::from(7i64));
        assert!(!r.is_stabilized());
        assert_eq!(r.accesses(), 3);
    }

    #[test]
    fn stabilization_merges_all_logged_operations() {
        let mut c = EventuallyLinearizable::new(
            Arc::new(Counter::new()),
            StabilizationPolicy::AfterAccesses(4),
        );
        c.invoke(ProcessId(0), &Counter::inc());
        c.invoke(ProcessId(1), &Counter::inc());
        c.invoke(ProcessId(1), &Counter::inc());
        // Before stabilization each process only sees its own increments.
        assert_eq!(c.invoke(ProcessId(0), &Counter::read()), Value::from(1i64));
        assert!(c.is_stabilized() || c.accesses() == 4);
        // The next access happens after stabilization: all four logged
        // operations (three incs and a read) have been merged.
        assert_eq!(c.invoke(ProcessId(2), &Counter::read()), Value::from(3i64));
        assert!(c.is_stabilized());
        // And from now on the object is shared and linearizable.
        c.invoke(ProcessId(0), &Counter::inc());
        assert_eq!(c.invoke(ProcessId(1), &Counter::read()), Value::from(4i64));
    }

    #[test]
    fn immediate_stabilization_behaves_linearizably() {
        let mut x = EventuallyLinearizable::new(
            Arc::new(FetchIncrement::new()),
            StabilizationPolicy::AfterAccesses(0),
        );
        assert_eq!(
            x.invoke(ProcessId(0), &FetchIncrement::fetch_inc()),
            Value::from(0i64)
        );
        assert_eq!(
            x.invoke(ProcessId(1), &FetchIncrement::fetch_inc()),
            Value::from(1i64)
        );
        assert!(x.is_stabilized());
    }

    #[test]
    fn fetch_inc_duplicates_before_stabilization() {
        let mut x = EventuallyLinearizable::new(
            Arc::new(FetchIncrement::new()),
            StabilizationPolicy::Never,
        );
        // Both processes get 0 — exactly the "temporarily inconsistent"
        // behaviour the introduction describes.
        assert_eq!(
            x.invoke(ProcessId(0), &FetchIncrement::fetch_inc()),
            Value::from(0i64)
        );
        assert_eq!(
            x.invoke(ProcessId(1), &FetchIncrement::fetch_inc()),
            Value::from(0i64)
        );
    }

    #[test]
    fn state_value_reports_local_or_global() {
        let mut x = EventuallyLinearizable::new(
            Arc::new(Counter::new()),
            StabilizationPolicy::AfterAccesses(2),
        );
        x.invoke(ProcessId(0), &Counter::inc());
        assert_eq!(x.state_value(), Value::list([Value::from(1i64)]));
        x.invoke(ProcessId(1), &Counter::inc());
        x.invoke(ProcessId(1), &Counter::read());
        assert_eq!(x.state_value(), Value::from(2i64));
        assert!(x.type_name().contains("counter"));
    }

    #[test]
    fn recorded_behaviour_matches_the_kernel_checkers() {
        // The adversarial object's pre-stabilization behaviour must be
        // weakly consistent but not linearizable, and must stabilize exactly
        // where the paper says (t = the pre-stabilization events) — verified
        // against the unified checker kernel rather than by construction.
        use evlin_checker::{is_linearizable, is_weakly_consistent, min_stabilization};
        use evlin_history::{HistoryBuilder, ObjectUniverse};

        let mut x = EventuallyLinearizable::new(
            Arc::new(FetchIncrement::new()),
            StabilizationPolicy::Never,
        );
        let mut universe = ObjectUniverse::new();
        let o = universe.add_object(FetchIncrement::new());
        let mut b = HistoryBuilder::new();
        for p in 0..2usize {
            let response = x.invoke(ProcessId(p), &FetchIncrement::fetch_inc());
            b = b.complete(ProcessId(p), o, FetchIncrement::fetch_inc(), response);
        }
        let h = b.build();
        assert!(is_weakly_consistent(&h, &universe));
        assert!(!is_linearizable(&h, &universe));
        // Both local copies answered 0; forgiving the first operation's two
        // events makes the remainder linearizable.
        assert_eq!(min_stabilization(&h, &universe, None), Some(2));
    }

    #[test]
    fn permute_processes_renames_local_copies_and_log() {
        use crate::base::{BaseObject as _, PidDependence};
        let mut r = EventuallyLinearizable::new(
            Arc::new(Register::new(Value::from(0i64))),
            StabilizationPolicy::Never,
        );
        assert_eq!(r.pid_dependence(), PidDependence::Permutable);
        r.invoke(ProcessId(0), &Register::write(Value::from(7i64)));
        let mut renamed = r.clone();
        renamed.permute_processes(&[1, 0]);
        // After the renaming, the local copy that held the write belongs to
        // process 1 — and the Debug form (which fingerprints fold in) moves
        // with it.
        assert_eq!(
            renamed.invoke(ProcessId(1), &Register::read()),
            Value::from(7i64)
        );
        assert_eq!(r.invoke(ProcessId(1), &Register::read()), Value::from(0i64));
        assert_ne!(format!("{r:?}"), format!("{renamed:?}"));
    }

    #[test]
    fn cloning_preserves_adversary_state() {
        let mut a = EventuallyLinearizable::new(
            Arc::new(Register::new(Value::from(0i64))),
            StabilizationPolicy::Never,
        );
        a.invoke(ProcessId(0), &Register::write(Value::from(1i64)));
        let mut b = a.clone();
        assert_eq!(b.invoke(ProcessId(0), &Register::read()), Value::from(1i64));
        // Divergence after the clone does not leak back.
        b.invoke(ProcessId(0), &Register::write(Value::from(2i64)));
        assert_eq!(a.invoke(ProcessId(0), &Register::read()), Value::from(1i64));
    }
}
