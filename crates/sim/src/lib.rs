//! # evlin-sim
//!
//! A deterministic asynchronous shared-memory simulator: the substrate on
//! which the algorithms of Guerraoui & Ruppert (PODC 2014) are executed and
//! analysed.
//!
//! The paper's model is a collection of processes that take atomic steps on
//! shared *base objects*, interleaved arbitrarily by an adversary.  This
//! crate makes every piece of that model explicit and executable:
//!
//! * [`base`] — base objects.  [`base::SpecObject`] is a linearizable
//!   (atomic) object of any deterministic [`evlin_spec::ObjectType`];
//! * [`eventually`] — *eventually linearizable* base objects: an adversarial
//!   wrapper that serves each process from a local copy until a
//!   stabilization point chosen by a [`eventually::StabilizationPolicy`],
//!   after which all logged operations are merged and the object behaves
//!   linearizably;
//! * [`program`] — implementations of high-level objects as step state
//!   machines ([`program::ProcessLogic`]) over base objects;
//! * [`config`] — configurations (base-object states + process states +
//!   recorded history) that can be cloned, which is what makes exhaustive
//!   exploration possible;
//! * [`scheduler`] — round-robin, seeded-random, solo-burst and crash
//!   schedulers;
//! * [`runner`] — drives a configuration under a scheduler and returns the
//!   recorded high-level history;
//! * [`engine`] — the unified exhaustive-exploration engine: one iterative
//!   traversal (sequential or subtree-stealing parallel, selected by a
//!   worker count) with a pluggable [`engine::ReductionStrategy`] — sleep-set
//!   partial-order reduction driven by a step-independence oracle on
//!   configurations, and process-symmetry canonicalization for symmetric
//!   programs;
//! * [`explorer`] — the stable facade over the engine: bounded exhaustive
//!   exploration of *all* interleavings, sequentially
//!   ([`explorer::explore`]) or on every core with work-stealing over
//!   independent subtrees ([`explorer::explore_par`]);
//! * [`valency`] — bivalence/critical-configuration analysis for two-process
//!   consensus implementations (the engine behind the Proposition 15 and
//!   Corollary 19 experiments);
//! * [`stability`] — the stable-configuration search of Proposition 18 and
//!   the freezing machinery that turns an eventually linearizable
//!   fetch&increment implementation into a linearizable one;
//! * [`fault`] — transient-fault injection: budgeted corruption steps
//!   ([`fault::FaultStep`]) enumerated alongside process steps by the engine,
//!   for self-stabilization analyses (experiment E15);
//! * [`store`] — the visited-store seam: the engine's deduplication set
//!   behind a [`store::VisitedStore`] trait, with an in-memory backend
//!   (bit-identical to the pre-seam engine), a fingerprint-prefix-sharded
//!   backend and a spill-to-disk backend that bounds resident memory by
//!   flushing full shards as compressed sorted runs;
//! * [`checkpoint`] — resumable and partitionable exploration on top of the
//!   store seam: periodic atomic checkpoints that survive SIGKILL
//!   ([`checkpoint::explore_checkpointed`]) and a fingerprint-range
//!   partitioner whose per-partition stats recompose the single-run totals
//!   exactly ([`checkpoint::explore_partitioned`]).
//!
//! ## Example
//!
//! ```
//! use evlin_sim::prelude::*;
//! use evlin_spec::{FetchIncrement, Value};
//! use std::sync::Arc;
//!
//! // A linearizable fetch&increment base object driven directly.
//! let mut obj = SpecObject::new(Arc::new(FetchIncrement::new()));
//! let r0 = obj.invoke(evlin_history::ProcessId(0), &FetchIncrement::fetch_inc());
//! let r1 = obj.invoke(evlin_history::ProcessId(1), &FetchIncrement::fetch_inc());
//! assert_eq!((r0, r1), (Value::from(0i64), Value::from(1i64)));
//! ```
//!
//! ### Modelling note
//!
//! A base-object access is modelled as a single atomic step (invocation and
//! response together), which is the standard way to reason about atomic
//! shared memory.  The paper's Proposition 15 treats invocation and response
//! events on base objects separately in its case analysis; the executable
//! valency analysis here works at the atomic-step granularity, which is
//! equivalent for linearizable base objects and conservative for eventually
//! linearizable ones (documented in DESIGN.md).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod eventually;
pub mod explorer;
pub mod fault;
pub mod program;
pub mod runner;
pub mod scheduler;
pub mod stability;
pub mod store;
pub mod valency;
pub mod workload;
pub mod zobrist;

/// Commonly used items re-exported for glob import in downstream crates.
pub mod prelude {
    pub use crate::base::{BaseObject, PidDependence, SpecObject};
    pub use crate::checkpoint::{
        explore_checkpointed, explore_partitioned, CheckpointOptions, CheckpointRun, PartitionRun,
    };
    pub use crate::config::{Config, StepOutcome, StepShape};
    pub use crate::engine::{EngineOptions, Reduction, ReductionStrategy};
    pub use crate::eventually::{EventuallyLinearizable, StabilizationPolicy};
    pub use crate::explorer::{explore, explore_par, ExploreOptions, ParExploreOptions};
    pub use crate::fault::{FaultStep, FaultTarget};
    pub use crate::program::{Implementation, ProcessLogic, TaskStep};
    pub use crate::runner::{run, RunOutcome};
    pub use crate::scheduler::{
        CrashScheduler, RandomScheduler, RoundRobinScheduler, Scheduler, SoloBurstScheduler,
    };
    pub use crate::store::{StoreBytes, StoreConfig, StoreReport, VisitedStore};
    pub use crate::workload::Workload;
}
