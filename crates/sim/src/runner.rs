//! Driving a configuration under a scheduler.

use crate::config::{Config, StepOutcome};
use crate::program::Implementation;
use crate::scheduler::Scheduler;
use crate::workload::Workload;
use evlin_checker::monitor::Monitor;
use evlin_history::{Event, History};

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The recorded high-level history.
    pub history: History,
    /// The final configuration.
    pub config: Config,
    /// Number of steps taken.
    pub steps: usize,
    /// Whether every workload operation completed.
    pub completed_all: bool,
}

/// Runs `implementation` on `workload` under `scheduler`, for at most
/// `max_steps` atomic steps.
///
/// The run stops when the scheduler returns `None`, when the configuration is
/// quiescent, or when the step budget is exhausted — whichever happens first.
pub fn run(
    implementation: &dyn Implementation,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
) -> RunOutcome {
    let config = Config::initial(implementation, workload);
    run_from(config, workload, scheduler, max_steps)
}

/// Like [`run`], but continues from an existing configuration (used by the
/// Proposition 18 experiments, which resume from a frozen configuration).
pub fn run_from(
    config: Config,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
) -> RunOutcome {
    run_from_observed(config, workload, scheduler, max_steps, &mut |_| {})
}

/// Like [`run`], additionally invoking `observer` on every high-level event
/// as soon as the simulated step appends it — the simulator-side analogue of
/// the runtime's streaming recorder.  The online monitor hooks in here
/// ([`run_monitored`]); tracing and statistics collectors can too.
pub fn run_observed(
    implementation: &dyn Implementation,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
    observer: &mut dyn FnMut(&Event),
) -> RunOutcome {
    let config = Config::initial(implementation, workload);
    run_from_observed(config, workload, scheduler, max_steps, observer)
}

/// [`run_from`] with an event observer (see [`run_observed`]).
pub fn run_from_observed(
    mut config: Config,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
    observer: &mut dyn FnMut(&Event),
) -> RunOutcome {
    let mut steps = 0usize;
    let mut seen = config.history().len();
    while steps < max_steps && !config.is_quiescent() {
        let Some(p) = scheduler.next(&config) else {
            break;
        };
        match config.step(p) {
            StepOutcome::Idle => {
                // The scheduler picked a process with nothing to do; if no
                // process is enabled we are done, otherwise just continue.
                if config.is_quiescent() {
                    break;
                }
            }
            StepOutcome::Progressed | StepOutcome::Completed(_) => {}
        }
        // Feed any events the step appended to the observer, in order.
        let history = config.history();
        while seen < history.len() {
            observer(&history.events()[seen]);
            seen += 1;
        }
        steps += 1;
    }
    let completed_all = config.total_completed() == workload.total_operations();
    RunOutcome {
        history: config.history().clone(),
        steps,
        completed_all,
        config,
    }
}

/// Runs `implementation` under `scheduler` while feeding every event into an
/// online [`Monitor`] as it happens.  The monitor's segments are checked and
/// garbage-collected during the run (exploration over long schedules no
/// longer needs the whole history buffered before the first check); call
/// `monitor.finish()` afterwards for the final report.
pub fn run_monitored(
    implementation: &dyn Implementation,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
    monitor: &mut Monitor,
) -> RunOutcome {
    run_observed(implementation, workload, scheduler, max_steps, &mut |e| {
        // The simulator only produces well-formed histories.
        let _ = monitor.ingest(e.clone());
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use crate::scheduler::{RandomScheduler, RoundRobinScheduler};
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    #[test]
    fn run_completes_workload_and_records_history() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 4);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 10_000);
        assert!(out.completed_all);
        assert_eq!(out.history.complete_operations().len(), 12);
        assert!(out.history.is_well_formed());
        assert_eq!(out.steps, 12); // local-copy implementation: one step per op
        assert!(out.config.is_quiescent());
    }

    #[test]
    fn step_budget_truncates_the_run() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 10);
        let mut s = RandomScheduler::seeded(1);
        let out = run(&imp, &w, &mut s, 5);
        assert!(!out.completed_all);
        assert_eq!(out.steps, 5);
        assert_eq!(out.history.complete_operations().len(), 5);
    }

    #[test]
    fn observer_sees_every_event_in_order() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 4);
        let mut s = RandomScheduler::seeded(7);
        let mut seen: Vec<Event> = Vec::new();
        let out = run_observed(&imp, &w, &mut s, 10_000, &mut |e| seen.push(e.clone()));
        assert!(out.completed_all);
        assert_eq!(seen, out.history.events());
    }

    #[test]
    fn run_monitored_checks_the_run_live() {
        use evlin_checker::monitor::{Monitor, MonitorConfig};
        use evlin_history::ObjectUniverse;
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 5);
        let mut s = RandomScheduler::seeded(11);
        let mut universe = ObjectUniverse::new();
        universe.add_object(FetchIncrement::new());
        let mut monitor = Monitor::new(universe, MonitorConfig::default());
        let out = run_monitored(&imp, &w, &mut s, 10_000, &mut monitor);
        let report = monitor.finish();
        assert_eq!(report.stats.events, out.history.len());
        // The local-copy implementation is *not* linearizable under real
        // concurrency (that is experiment E4's point) — what matters here is
        // that the online verdict equals the offline one on this schedule.
        assert_eq!(
            report.verdict.is_ok(),
            evlin_checker::is_linearizable(&out.history, monitorless_universe())
        );

        // A single-process workload is sequential, hence linearizable, and
        // the monitor verifies it live.
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 1);
        let w = Workload::uniform(1, FetchIncrement::fetch_inc(), 5);
        let mut s = RandomScheduler::seeded(3);
        let mut universe = ObjectUniverse::new();
        universe.add_object(FetchIncrement::new());
        let mut monitor = Monitor::new(universe, MonitorConfig::default());
        run_monitored(&imp, &w, &mut s, 10_000, &mut monitor);
        assert!(monitor.finish().verdict.is_ok());
    }

    fn monitorless_universe() -> &'static evlin_history::ObjectUniverse {
        use std::sync::OnceLock;
        static U: OnceLock<evlin_history::ObjectUniverse> = OnceLock::new();
        U.get_or_init(|| {
            let mut u = evlin_history::ObjectUniverse::new();
            u.add_object(FetchIncrement::new());
            u
        })
    }

    #[test]
    fn empty_workload_is_a_no_op() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::new(vec![Vec::new(), Vec::new()]);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100);
        assert!(out.completed_all);
        assert!(out.history.is_empty());
        assert_eq!(out.steps, 0);
    }
}
