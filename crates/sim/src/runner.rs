//! Driving a configuration under a scheduler.

use crate::config::{Config, StepOutcome};
use crate::program::Implementation;
use crate::scheduler::Scheduler;
use crate::workload::Workload;
use evlin_history::History;

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The recorded high-level history.
    pub history: History,
    /// The final configuration.
    pub config: Config,
    /// Number of steps taken.
    pub steps: usize,
    /// Whether every workload operation completed.
    pub completed_all: bool,
}

/// Runs `implementation` on `workload` under `scheduler`, for at most
/// `max_steps` atomic steps.
///
/// The run stops when the scheduler returns `None`, when the configuration is
/// quiescent, or when the step budget is exhausted — whichever happens first.
pub fn run(
    implementation: &dyn Implementation,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
) -> RunOutcome {
    let config = Config::initial(implementation, workload);
    run_from(config, workload, scheduler, max_steps)
}

/// Like [`run`], but continues from an existing configuration (used by the
/// Proposition 18 experiments, which resume from a frozen configuration).
pub fn run_from(
    mut config: Config,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
) -> RunOutcome {
    let mut steps = 0usize;
    while steps < max_steps && !config.is_quiescent() {
        let Some(p) = scheduler.next(&config) else {
            break;
        };
        match config.step(p) {
            StepOutcome::Idle => {
                // The scheduler picked a process with nothing to do; if no
                // process is enabled we are done, otherwise just continue.
                if config.enabled_processes().is_empty() {
                    break;
                }
            }
            StepOutcome::Progressed | StepOutcome::Completed(_) => {}
        }
        steps += 1;
    }
    let completed_all = config.total_completed() == workload.total_operations();
    RunOutcome {
        history: config.history().clone(),
        steps,
        completed_all,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use crate::scheduler::{RandomScheduler, RoundRobinScheduler};
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    #[test]
    fn run_completes_workload_and_records_history() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 4);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 10_000);
        assert!(out.completed_all);
        assert_eq!(out.history.complete_operations().len(), 12);
        assert!(out.history.is_well_formed());
        assert_eq!(out.steps, 12); // local-copy implementation: one step per op
        assert!(out.config.is_quiescent());
    }

    #[test]
    fn step_budget_truncates_the_run() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 10);
        let mut s = RandomScheduler::seeded(1);
        let out = run(&imp, &w, &mut s, 5);
        assert!(!out.completed_all);
        assert_eq!(out.steps, 5);
        assert_eq!(out.history.complete_operations().len(), 5);
    }

    #[test]
    fn empty_workload_is_a_no_op() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::new(vec![Vec::new(), Vec::new()]);
        let mut s = RoundRobinScheduler::new();
        let out = run(&imp, &w, &mut s, 100);
        assert!(out.completed_all);
        assert!(out.history.is_empty());
        assert_eq!(out.steps, 0);
    }
}
