//! Valency analysis for consensus implementations (Proposition 15).
//!
//! The proof of Proposition 15 is a classical valency argument: the initial
//! configuration of a putative two-process consensus algorithm is
//! multivalent, every multivalent configuration has a multivalent child
//! unless it is *critical*, and a critical configuration whose pending steps
//! act on registers (or on eventually linearizable objects) yields a
//! contradiction.  This module makes the pieces of that argument executable:
//!
//! * [`valency_of`] classifies a configuration as univalent, bivalent or
//!   undetermined by bounded exhaustive exploration of its descendants;
//! * [`bivalence_walk`] follows a bivalence-preserving schedule for as long
//!   as possible — for implementations from registers only this walk keeps
//!   going (the executable face of the impossibility), whereas for
//!   implementations using consensus-power primitives it quickly reaches a
//!   critical configuration;
//! * [`check_consensus`] exhaustively checks agreement and validity over all
//!   interleavings of a one-shot consensus workload.

use crate::config::Config;
use crate::engine::{self, EngineOptions, Reduction};
use crate::explorer::{ExploreOptions, Visit};
use crate::program::Implementation;
use crate::store::StoreConfig;
use crate::workload::Workload;
use evlin_history::History;
use evlin_spec::{Consensus, Value};
use std::collections::BTreeSet;

/// The valency of a configuration, as determined by bounded exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValencyClass {
    /// Every decision reachable within the bound is this single value, and
    /// the exploration was exhaustive (no path hit the depth bound).
    Univalent(Value),
    /// At least two different decision values are reachable.
    Bivalent(BTreeSet<Value>),
    /// No decision (or only some decisions) could be established before the
    /// exploration bound was hit.
    Undetermined,
}

impl ValencyClass {
    /// Whether the configuration is definitely bivalent.
    pub fn is_bivalent(&self) -> bool {
        matches!(self, ValencyClass::Bivalent(_))
    }
}

/// Collects every decision value reachable from `config` within `depth`
/// steps.  Returns the set of decisions and whether the exploration hit the
/// depth bound anywhere (in which case the set may be incomplete).
fn reachable_decisions(
    config: &Config,
    depth: usize,
    max_configs: usize,
    reduction: Reduction,
    store: StoreConfig,
) -> (BTreeSet<Value>, bool) {
    let mut decisions = BTreeSet::new();
    let mut partial = false;
    let options = EngineOptions {
        limits: ExploreOptions {
            max_depth: depth,
            max_configs,
        },
        workers: Some(1),
        reduction,
        store,
        ..EngineOptions::default()
    };
    let stats = engine::explore_config(config.clone(), &options, |c, d| {
        // Record decisions from completed propose operations.
        for op in c.history().complete_operations() {
            if let Some(v) = &op.response {
                decisions.insert(v.clone());
            }
        }
        if decisions.len() >= 2 {
            // Already bivalent; no need to keep exploring.
            return Visit::Stop;
        }
        if d >= depth && !c.is_quiescent() {
            partial = true;
        }
        Visit::Continue
    });
    if stats.truncated {
        partial = true;
    }
    (decisions, partial)
}

/// Classifies the valency of a configuration by bounded exploration.
pub fn valency_of(config: &Config, depth: usize, max_configs: usize) -> ValencyClass {
    valency_of_reduced(config, depth, max_configs, Reduction::None)
}

/// Like [`valency_of`], but exploring the descendants under the given
/// [`Reduction`].  Sound for any strategy: decision values persist in the
/// recorded history, terminal configurations are preserved by sleep sets, and
/// symmetry canonicalization renames processes without touching response
/// values.
pub fn valency_of_reduced(
    config: &Config,
    depth: usize,
    max_configs: usize,
    reduction: Reduction,
) -> ValencyClass {
    valency_of_stored(config, depth, max_configs, reduction, StoreConfig::Mem)
}

/// Like [`valency_of_reduced`], but holding the dedup set of a deduplicating
/// reduction in the given visited-store backend (see [`crate::store`]) — the
/// spill backend bounds resident memory for lookahead explorations whose
/// visited sets outgrow RAM.  The classification is backend-independent.
pub fn valency_of_stored(
    config: &Config,
    depth: usize,
    max_configs: usize,
    reduction: Reduction,
    store: StoreConfig,
) -> ValencyClass {
    let (decisions, partial) = reachable_decisions(config, depth, max_configs, reduction, store);
    if decisions.len() >= 2 {
        ValencyClass::Bivalent(decisions)
    } else if decisions.len() == 1 && !partial {
        ValencyClass::Univalent(decisions.into_iter().next().expect("len 1"))
    } else {
        ValencyClass::Undetermined
    }
}

/// The outcome of a bivalence-preserving walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BivalenceWalk {
    /// Number of steps taken while staying in (definitely) bivalent
    /// configurations.
    pub bivalent_steps: usize,
    /// Why the walk ended.
    pub ended: WalkEnd,
    /// The valencies of the children of the last bivalent configuration
    /// reached, for reporting critical configurations.
    pub final_children: Vec<ValencyClass>,
}

/// Why a [`bivalence_walk`] ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkEnd {
    /// The step limit was reached while the configuration was still
    /// bivalent — evidence of an adversarial schedule that postpones
    /// agreement indefinitely (the executable face of FLP/Proposition 15).
    StillBivalentAtLimit,
    /// A critical configuration was reached: the configuration is bivalent
    /// but every child is univalent (or no child is bivalent within the
    /// lookahead).
    CriticalConfiguration,
    /// The initial configuration was not bivalent in the first place.
    InitiallyUnivalent,
}

/// Follows a bivalence-preserving schedule from the initial configuration of
/// a one-shot consensus workload (process `i` proposes `proposals[i]`).
///
/// At each step every enabled process's successor is classified with
/// lookahead `lookahead`; the walk moves to a bivalent successor if one
/// exists.  `max_walk` bounds the number of steps.
pub fn bivalence_walk(
    implementation: &dyn Implementation,
    proposals: &[Value],
    lookahead: usize,
    max_configs: usize,
    max_walk: usize,
) -> BivalenceWalk {
    let workload = Workload::one_shot(
        proposals
            .iter()
            .map(|v| Consensus::propose(v.clone()))
            .collect(),
    );
    let mut config = Config::initial(implementation, &workload);
    if !valency_of(&config, lookahead, max_configs).is_bivalent() {
        return BivalenceWalk {
            bivalent_steps: 0,
            ended: WalkEnd::InitiallyUnivalent,
            final_children: Vec::new(),
        };
    }
    let mut steps = 0usize;
    loop {
        if steps >= max_walk {
            return BivalenceWalk {
                bivalent_steps: steps,
                ended: WalkEnd::StillBivalentAtLimit,
                final_children: Vec::new(),
            };
        }
        let mut children: Vec<(Config, ValencyClass)> = Vec::new();
        for p in config.enabled_processes() {
            let mut child = config.clone();
            child.step(p);
            let class = valency_of(&child, lookahead, max_configs);
            children.push((child, class));
        }
        if children.is_empty() {
            return BivalenceWalk {
                bivalent_steps: steps,
                ended: WalkEnd::CriticalConfiguration,
                final_children: Vec::new(),
            };
        }
        match children.iter().position(|(_, class)| class.is_bivalent()) {
            Some(idx) => {
                config = children.swap_remove(idx).0;
                steps += 1;
            }
            None => {
                return BivalenceWalk {
                    bivalent_steps: steps,
                    ended: WalkEnd::CriticalConfiguration,
                    final_children: children.into_iter().map(|(_, c)| c).collect(),
                };
            }
        }
    }
}

/// The result of an exhaustive agreement/validity check of a consensus
/// implementation on a one-shot workload.
#[derive(Debug, Clone)]
pub struct ConsensusCheck {
    /// A history in which two completed propose operations returned different
    /// values, if one was found.
    pub agreement_violation: Option<History>,
    /// A history in which some propose operation returned a value nobody
    /// proposed, if one was found.
    pub validity_violation: Option<History>,
    /// Whether every explored execution completed all operations within the
    /// depth bound.
    pub all_terminated: bool,
    /// Number of terminal configurations examined.
    pub terminals: usize,
}

impl ConsensusCheck {
    /// Whether no violation was found.
    pub fn is_correct(&self) -> bool {
        self.agreement_violation.is_none() && self.validity_violation.is_none()
    }
}

/// Exhaustively checks agreement and validity of `implementation` when
/// process `i` proposes `proposals[i]`, over all interleavings up to
/// `options.max_depth` steps.
pub fn check_consensus(
    implementation: &dyn Implementation,
    proposals: &[Value],
    options: ExploreOptions,
) -> ConsensusCheck {
    check_consensus_reduced(implementation, proposals, options, Reduction::None)
}

/// Like [`check_consensus`], but exploring under the given [`Reduction`]:
/// agreement/validity violations persist in the history once recorded and
/// both properties are process-symmetric, so every strategy returns the same
/// verdicts (the `terminals` count shrinks with the reduction).
pub fn check_consensus_reduced(
    implementation: &dyn Implementation,
    proposals: &[Value],
    options: ExploreOptions,
    reduction: Reduction,
) -> ConsensusCheck {
    check_consensus_faulty(implementation, proposals, options, reduction, 0)
}

/// Like [`check_consensus_reduced`], but additionally enumerating up to
/// `fault_budget` transient-fault corruption steps ([`crate::fault`]) along
/// every schedule.
///
/// Agreement under transient faults is a self-stabilization question, and
/// consensus is the canonical *non*-self-stabilizing task: one corruption of
/// a decided base object flips the decision other processes later read, so
/// even implementations that are correct fault-free fail this check at
/// budget 1.  With `fault_budget == 0` the check is identical to
/// [`check_consensus_reduced`].
pub fn check_consensus_faulty(
    implementation: &dyn Implementation,
    proposals: &[Value],
    options: ExploreOptions,
    reduction: Reduction,
    fault_budget: usize,
) -> ConsensusCheck {
    check_consensus_stored(
        implementation,
        proposals,
        options,
        reduction,
        fault_budget,
        StoreConfig::Mem,
    )
}

/// Like [`check_consensus_faulty`], but holding the dedup set of a
/// deduplicating reduction in the given visited-store backend (see
/// [`crate::store`]).  Verdicts are backend-independent; the spill backend
/// bounds resident memory when the fault-multiplied interleaving tree's
/// visited set outgrows RAM.
pub fn check_consensus_stored(
    implementation: &dyn Implementation,
    proposals: &[Value],
    options: ExploreOptions,
    reduction: Reduction,
    fault_budget: usize,
    store: StoreConfig,
) -> ConsensusCheck {
    let workload = Workload::one_shot(
        proposals
            .iter()
            .map(|v| Consensus::propose(v.clone()))
            .collect(),
    );
    let proposed: BTreeSet<Value> = proposals.iter().cloned().collect();
    let mut check = ConsensusCheck {
        agreement_violation: None,
        validity_violation: None,
        all_terminated: true,
        terminals: 0,
    };
    let total_ops = workload.total_operations();
    let engine_options = EngineOptions {
        limits: options,
        workers: Some(1),
        reduction,
        fault_budget,
        store,
        ..EngineOptions::default()
    };
    engine::explore(
        implementation,
        &workload,
        &engine_options,
        |config, depth| {
            let complete = config.history().complete_operations();
            let decided: BTreeSet<Value> = complete
                .iter()
                .filter_map(|op| op.response.clone())
                .collect();
            if decided.len() > 1 && check.agreement_violation.is_none() {
                check.agreement_violation = Some(config.history().clone());
            }
            if decided.iter().any(|v| !proposed.contains(v)) && check.validity_violation.is_none() {
                check.validity_violation = Some(config.history().clone());
            }
            let terminal = config.is_quiescent() || depth >= options.max_depth;
            if terminal {
                check.terminals += 1;
                if complete.len() < total_ops {
                    check.all_terminated = false;
                }
            }
            Visit::Continue
        },
    );
    check
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::{objects, BaseObject};
    use crate::program::{ProcessLogic, TaskStep};
    use evlin_history::ProcessId;
    use evlin_spec::Invocation;

    /// A correct (linearizable) consensus implementation that simply defers
    /// to a linearizable consensus base object — used to validate the
    /// analysis tooling itself.
    #[derive(Debug, Clone)]
    struct DirectConsensus {
        processes: usize,
    }

    #[derive(Debug, Clone)]
    struct DirectLogic {
        pending: Option<Invocation>,
        accessed: bool,
    }

    impl Implementation for DirectConsensus {
        fn name(&self) -> String {
            "direct consensus".into()
        }
        fn processes(&self) -> usize {
            self.processes
        }
        fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
            vec![objects::consensus()]
        }
        fn new_process(&self, _p: ProcessId) -> Box<dyn ProcessLogic> {
            Box::new(DirectLogic {
                pending: None,
                accessed: false,
            })
        }
    }

    impl ProcessLogic for DirectLogic {
        fn begin(&mut self, invocation: Invocation) {
            self.pending = Some(invocation);
            self.accessed = false;
        }
        fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
            if !self.accessed {
                self.accessed = true;
                TaskStep::Access {
                    object: 0,
                    invocation: self.pending.clone().expect("begin was called"),
                }
            } else {
                TaskStep::Complete(previous_response.expect("response from base object"))
            }
        }
        fn clone_box(&self) -> Box<dyn ProcessLogic> {
            Box::new(self.clone())
        }
    }

    /// A deliberately broken "consensus" where each process just returns its
    /// own proposal (no communication) — agreement fails.
    #[derive(Debug, Clone)]
    struct SelfishConsensus {
        processes: usize,
    }

    #[derive(Debug, Clone)]
    struct SelfishLogic {
        pending: Option<Invocation>,
    }

    impl Implementation for SelfishConsensus {
        fn name(&self) -> String {
            "selfish consensus".into()
        }
        fn processes(&self) -> usize {
            self.processes
        }
        fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
            Vec::new()
        }
        fn new_process(&self, _p: ProcessId) -> Box<dyn ProcessLogic> {
            Box::new(SelfishLogic { pending: None })
        }
    }

    impl ProcessLogic for SelfishLogic {
        fn begin(&mut self, invocation: Invocation) {
            self.pending = Some(invocation);
        }
        fn step(&mut self, _previous: Option<Value>) -> TaskStep {
            let inv = self.pending.clone().expect("begin was called");
            TaskStep::Complete(inv.arg(0).cloned().expect("propose has an argument"))
        }
        fn clone_box(&self) -> Box<dyn ProcessLogic> {
            Box::new(self.clone())
        }
    }

    fn proposals() -> Vec<Value> {
        vec![Value::from(0i64), Value::from(1i64)]
    }

    #[test]
    fn direct_consensus_passes_exhaustive_check() {
        let imp = DirectConsensus { processes: 2 };
        let check = check_consensus(&imp, &proposals(), ExploreOptions::default());
        assert!(check.is_correct());
        assert!(check.all_terminated);
        assert!(check.terminals >= 2);
    }

    #[test]
    fn selfish_consensus_fails_agreement() {
        let imp = SelfishConsensus { processes: 2 };
        let check = check_consensus(&imp, &proposals(), ExploreOptions::default());
        assert!(check.agreement_violation.is_some());
        assert!(check.validity_violation.is_none());
    }

    #[test]
    fn initial_configuration_of_direct_consensus_is_bivalent() {
        let imp = DirectConsensus { processes: 2 };
        let workload = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let config = Config::initial(&imp, &workload);
        let v = valency_of(&config, 16, 10_000);
        assert!(v.is_bivalent(), "got {v:?}");
    }

    #[test]
    fn direct_consensus_walk_reaches_critical_configuration_quickly() {
        let imp = DirectConsensus { processes: 2 };
        let walk = bivalence_walk(&imp, &proposals(), 16, 10_000, 32);
        assert_eq!(walk.ended, WalkEnd::CriticalConfiguration);
        // The step on the linearizable consensus base object decides the
        // outcome, so bivalence ends after at most one access per process.
        assert!(walk.bivalent_steps <= 2, "walk = {walk:?}");
        // At the critical configuration every child is univalent.
        assert!(walk
            .final_children
            .iter()
            .all(|c| matches!(c, ValencyClass::Univalent(_))));
    }

    #[test]
    fn univalent_when_both_propose_the_same_value() {
        let imp = DirectConsensus { processes: 2 };
        let workload = Workload::one_shot(vec![
            Consensus::propose(Value::from(1i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let config = Config::initial(&imp, &workload);
        assert_eq!(
            valency_of(&config, 16, 10_000),
            ValencyClass::Univalent(Value::from(1i64))
        );
        let walk = bivalence_walk(
            &imp,
            &[Value::from(1i64), Value::from(1i64)],
            16,
            10_000,
            32,
        );
        assert_eq!(walk.ended, WalkEnd::InitiallyUnivalent);
    }

    #[test]
    fn reduced_checks_agree_with_unreduced() {
        let strategies = [
            Reduction::SleepSet,
            Reduction::Symmetry,
            Reduction::SleepSetSymmetry,
        ];
        let selfish = SelfishConsensus { processes: 2 };
        let direct = DirectConsensus { processes: 2 };
        for r in strategies {
            let broken =
                check_consensus_reduced(&selfish, &proposals(), ExploreOptions::default(), r);
            assert!(broken.agreement_violation.is_some(), "{r:?}");
            assert!(broken.validity_violation.is_none(), "{r:?}");
            let sound =
                check_consensus_reduced(&direct, &proposals(), ExploreOptions::default(), r);
            assert!(sound.is_correct(), "{r:?}");
            assert!(sound.all_terminated, "{r:?}");
        }
        // Valency classification is reduction-independent too.
        let workload = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let config = Config::initial(&direct, &workload);
        for r in strategies {
            assert!(
                valency_of_reduced(&config, 16, 10_000, r).is_bivalent(),
                "{r:?}"
            );
        }
    }

    #[test]
    fn transient_fault_breaks_consensus_agreement() {
        // Fault-free the direct implementation is correct, but consensus is
        // not self-stabilizing: a single corruption of the decided base
        // object flips the value later proposers read.
        let imp = DirectConsensus { processes: 2 };
        for r in [
            Reduction::None,
            Reduction::SleepSet,
            Reduction::SleepSetSymmetry,
        ] {
            let faulty =
                check_consensus_faulty(&imp, &proposals(), ExploreOptions::default(), r, 1);
            assert!(faulty.agreement_violation.is_some(), "{r:?}");
            // Corruptions stay within reachable (hence proposed) values, so
            // validity survives even under faults.
            assert!(faulty.validity_violation.is_none(), "{r:?}");
        }
    }

    #[test]
    fn undetermined_when_lookahead_is_too_small() {
        let imp = DirectConsensus { processes: 2 };
        let workload = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let config = Config::initial(&imp, &workload);
        assert_eq!(valency_of(&config, 0, 10_000), ValencyClass::Undetermined);
    }
}
