//! Resumable and partitionable exploration on top of the visited-store seam.
//!
//! Two capabilities live here, both exploiting the fact that the engine's
//! dedup key ([`crate::engine`]'s `dedup_key`) is a single avalanched word:
//!
//! * **Checkpointing** ([`explore_checkpointed`] /
//!   [`explore_checkpointed_par`]): every `interval_visits` visits, the
//!   driver atomically writes `checkpoint.bin` — the engine stats so far, a
//!   [`StoreManifest`] snapshot of the visited store and the serialized
//!   frontier (each pending node as its *path of [`ChildStep`]s from the
//!   root* plus its sleep mask) — into the checkpoint directory.  Invoking
//!   the same function on a directory that already holds a checkpoint
//!   resumes: the store is rebuilt from its run files, the frontier is
//!   replayed step-by-step from an identically-initialized root, and the
//!   remaining `max_configs` budget is recomputed, so the continued run's
//!   final [`ExploreStats`] equal the uninterrupted run's — even after a
//!   hard kill (SIGKILL), because snapshots never mutate the live store and
//!   orphaned post-checkpoint run files are garbage-collected on resume.
//!   The byte-level file format is specified in `docs/CHECKPOINT.md`.
//!
//! * **Partitioning** ([`explore_partitioned`] / [`partition_ranges`]): the
//!   dedup-key space is split into `2^parts_log2` contiguous ranges by top
//!   bits — the *same* routing as the prefix-sharded stores
//!   ([`crate::zobrist::prefix_shard`]) — and each partition owns the
//!   visited set for its range.  A partition explores its own frontier and
//!   *exports* any generated child whose key belongs elsewhere as a
//!   replayable `(path, mask, key)` record; the owner probes the key
//!   against its store and replays the path only if fresh.  Every generated
//!   edge is therefore probed exactly once, at its key's owner, so the
//!   per-partition visited/terminal/pruned counts sum to the single-run
//!   totals exactly ([`PartitionRun::total`]).  Only paths, masks and keys
//!   cross partition boundaries — all plain words — which is what makes the
//!   same protocol runnable across OS processes.

use crate::config::{Config, StepOutcome};
use crate::engine::{
    self, ChildStep, EngineOptions, ExploreStats, ReductionStrategy, SleepMask, Visit,
};
use crate::fault::{FaultStep, FaultTarget};
use crate::program::Implementation;
use crate::store::{
    self, annotate, RecordKind, RunMeta, ShardManifest, StoreConfig, StoreManifest,
};
use crate::workload::Workload;
use crate::zobrist;
use evlin_history::ProcessId;
use rayon::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Checkpoint-file magic: `b"EVCK"`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"EVCK";
/// Current checkpoint-format version.
pub const CHECKPOINT_VERSION: u16 = 1;
/// The checkpoint file name inside the checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// The subdirectory holding the visited store's run files.
pub const STORE_SUBDIR: &str = "store";

/// Where and how often to checkpoint an exploration.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Checkpoint directory: holds `checkpoint.bin` plus a `store/`
    /// subdirectory of sorted-run files.  Created if missing; a directory
    /// with an existing checkpoint resumes instead of starting fresh.
    pub dir: PathBuf,
    /// Visits between checkpoints (per process run).  The frontier is only
    /// snapshotted at these boundaries, so work since the last checkpoint —
    /// at most this many visits — is redone after a crash.
    pub interval_visits: usize,
    /// Test hook simulating a hard kill: stop abruptly after this many
    /// visits *in this process run*, without writing a final checkpoint
    /// (exactly what SIGKILL leaves behind).  `None` in production.
    pub abort_after_visits: Option<usize>,
}

impl CheckpointOptions {
    /// Checkpoint into `dir` every 100k visits.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            interval_visits: 100_000,
            abort_after_visits: None,
        }
    }
}

/// The outcome of one (possibly partial) checkpointed process run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRun {
    /// Engine statistics accumulated across *all* process runs so far
    /// (resumed counts included).  When `completed`, these equal the
    /// uninterrupted run's final stats bit-for-bit.
    pub stats: ExploreStats,
    /// Whether the exploration finished (frontier drained or stopped), as
    /// opposed to being aborted by [`CheckpointOptions::abort_after_visits`].
    pub completed: bool,
    /// Whether this run resumed from an existing checkpoint.
    pub resumed: bool,
    /// Checkpoints written during this process run (including the final
    /// done-marker when `completed`).
    pub checkpoints_written: u64,
}

/// One in-memory frontier node: the materialized configuration plus the
/// replayable edge path that reaches it from the root.
struct Frame {
    config: Config,
    depth: usize,
    mask: SleepMask,
    path: Vec<ChildStep>,
}

/// A frontier node as serialized: the path is enough to rebuild the
/// configuration deterministically (`depth == path.len()`).
struct SavedFrame {
    mask: SleepMask,
    path: Vec<ChildStep>,
}

struct SavedCheckpoint {
    stats: ExploreStats,
    seq: u64,
    manifest: StoreManifest,
    frames: Vec<SavedFrame>,
}

/// Explores sequentially with periodic atomic checkpoints, resuming from
/// `ck.dir` if it already holds one.  Deduplication is forced on (the
/// visited store *is* the resumable state); otherwise semantics match
/// [`crate::engine::explore`] with `options` — and for an uninterrupted run
/// the final stats are identical to it.
pub fn explore_checkpointed<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
    ck: &CheckpointOptions,
    mut visitor: F,
) -> io::Result<CheckpointRun>
where
    F: FnMut(&Config, usize) -> Visit,
{
    let setup = CheckpointSetup::prepare(implementation, workload, options, ck, 1)?;
    let CheckpointSetup {
        root: _root,
        strategy,
        store,
        mut stats,
        mut seq,
        resumed,
        frames,
        hash,
    } = setup;
    let mut frames = frames;
    let shared = engine::Shared {
        budget: AtomicUsize::new(options.limits.max_configs.saturating_sub(stats.visited)),
        stopped: AtomicBool::new(false),
        truncated: AtomicBool::new(stats.truncated),
        store: Some(store.as_ref()),
    };
    let visited_at_start = stats.visited;
    let store_dir = ck.dir.join(STORE_SUBDIR);
    let mut scratch = engine::WalkScratch::default();
    let mut since_checkpoint = 0usize;
    let mut checkpoints_written = 0u64;
    let mut completed = true;
    while let Some(frame) = frames.pop() {
        let parent_path = frame.path;
        let cont = engine::visit_one(
            frame.config,
            frame.depth,
            frame.mask,
            &mut visitor,
            strategy.as_ref(),
            &shared,
            &mut stats,
            options.limits.max_depth,
            &mut scratch,
            |child, depth, mask, step| {
                let mut path = parent_path.clone();
                path.push(step);
                frames.push(Frame {
                    config: child,
                    depth,
                    mask,
                    path,
                });
            },
        );
        since_checkpoint += 1;
        if ck
            .abort_after_visits
            .is_some_and(|n| stats.visited - visited_at_start >= n)
        {
            // Simulated SIGKILL: walk away mid-flight, leaving only the
            // last durable checkpoint (and whatever run files the store
            // wrote since) on disk.
            shared.finish_stats(&mut stats);
            return Ok(CheckpointRun {
                stats,
                completed: false,
                resumed,
                checkpoints_written,
            });
        }
        if !cont {
            break;
        }
        if since_checkpoint >= ck.interval_visits.max(1) && !frames.is_empty() {
            seq += 1;
            write_checkpoint(ck, &store_dir, store.as_ref(), hash, seq, &stats, &frames)?;
            checkpoints_written += 1;
            since_checkpoint = 0;
        }
    }
    shared.finish_stats(&mut stats);
    if !frames.is_empty() {
        completed =
            shared.truncated.load(Ordering::Relaxed) || shared.stopped.load(Ordering::Relaxed);
    }
    // Done marker: an empty (or stopped) frontier checkpoint, so a later
    // invocation returns these stats without re-exploring.
    seq += 1;
    write_checkpoint(ck, &store_dir, store.as_ref(), hash, seq, &stats, &[])?;
    checkpoints_written += 1;
    Ok(CheckpointRun {
        stats,
        completed,
        resumed,
        checkpoints_written,
    })
}

/// Parallel [`explore_checkpointed`]: waves of subtree-stealing workers
/// (the visitor is shared, hence `Fn + Sync`) with checkpoints written at
/// wave boundaries.  Visited/terminal/pruned counts are worker-count
/// independent exactly as in [`crate::engine::explore_shared`]; for the
/// spill backend, run *boundaries* (and hence the spilled/filter byte
/// split) depend on insert order and may differ across worker counts, while
/// entry counts and verdicts never do.
pub fn explore_checkpointed_par<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
    ck: &CheckpointOptions,
    visitor: F,
) -> io::Result<CheckpointRun>
where
    F: Fn(&Config, usize) -> Visit + Sync,
{
    let workers = options.effective_workers();
    let setup =
        CheckpointSetup::prepare(implementation, workload, options, ck, (workers * 4).max(16))?;
    let CheckpointSetup {
        root: _root,
        strategy,
        store,
        mut stats,
        mut seq,
        resumed,
        frames,
        hash,
    } = setup;
    let mut frontier: VecDeque<Frame> = frames.into();
    let shared = engine::Shared {
        budget: AtomicUsize::new(options.limits.max_configs.saturating_sub(stats.visited)),
        stopped: AtomicBool::new(false),
        truncated: AtomicBool::new(stats.truncated),
        store: Some(store.as_ref()),
    };
    let visited_at_start = stats.visited;
    let store_dir = ck.dir.join(STORE_SUBDIR);
    let wave_size = (workers * options.subtrees_per_worker.max(1)).max(1);
    let per_worker_cap = (ck.interval_visits / workers).max(1);
    let mut since_checkpoint = 0usize;
    let mut checkpoints_written = 0u64;
    while !frontier.is_empty() && !shared.stopped.load(Ordering::Relaxed) {
        let wave: Vec<Frame> = (0..wave_size).map_while(|_| frontier.pop_front()).collect();
        let results: Vec<(ExploreStats, Vec<Frame>)> = wave
            .into_par_iter()
            .map(|frame| {
                let mut local = ExploreStats::default();
                let mut scratch = engine::WalkScratch::default();
                let mut stack: Vec<Frame> = vec![frame];
                let mut leftovers: Vec<Frame> = Vec::new();
                let mut visits = 0usize;
                while let Some(frame) = stack.pop() {
                    if visits >= per_worker_cap || shared.stopped.load(Ordering::Relaxed) {
                        leftovers.push(frame);
                        continue;
                    }
                    visits += 1;
                    let parent_path = frame.path;
                    let mut shim = |c: &Config, d: usize| visitor(c, d);
                    if !engine::visit_one(
                        frame.config,
                        frame.depth,
                        frame.mask,
                        &mut shim,
                        strategy.as_ref(),
                        &shared,
                        &mut local,
                        options.limits.max_depth,
                        &mut scratch,
                        |child, depth, mask, step| {
                            let mut path = parent_path.clone();
                            path.push(step);
                            stack.push(Frame {
                                config: child,
                                depth,
                                mask,
                                path,
                            });
                        },
                    ) {
                        break;
                    }
                }
                (local, leftovers)
            })
            .collect();
        for (local, leftovers) in results {
            stats.visited += local.visited;
            stats.terminals += local.terminals;
            stats.pruned += local.pruned;
            frontier.extend(leftovers);
        }
        since_checkpoint += ck.interval_visits.min(stats.visited - visited_at_start);
        if ck
            .abort_after_visits
            .is_some_and(|n| stats.visited - visited_at_start >= n)
        {
            shared.finish_stats(&mut stats);
            return Ok(CheckpointRun {
                stats,
                completed: false,
                resumed,
                checkpoints_written,
            });
        }
        if since_checkpoint >= ck.interval_visits.max(1) && !frontier.is_empty() {
            seq += 1;
            let frames: Vec<Frame> = frontier.drain(..).collect();
            write_checkpoint(ck, &store_dir, store.as_ref(), hash, seq, &stats, &frames)?;
            frontier = frames.into();
            checkpoints_written += 1;
            since_checkpoint = 0;
        }
    }
    shared.finish_stats(&mut stats);
    let completed = frontier.is_empty()
        || shared.truncated.load(Ordering::Relaxed)
        || shared.stopped.load(Ordering::Relaxed);
    seq += 1;
    write_checkpoint(ck, &store_dir, store.as_ref(), hash, seq, &stats, &[])?;
    checkpoints_written += 1;
    Ok(CheckpointRun {
        stats,
        completed,
        resumed,
        checkpoints_written,
    })
}

/// Everything both checkpointed drivers share: root preparation, fresh
/// start vs resume, store construction/restoration and frontier replay.
struct CheckpointSetup {
    #[allow(dead_code)] // kept alive so replayed frames share its template
    root: Config,
    strategy: Box<dyn ReductionStrategy>,
    store: Box<dyn store::VisitedStore>,
    stats: ExploreStats,
    seq: u64,
    resumed: bool,
    frames: Vec<Frame>,
    hash: u64,
}

impl CheckpointSetup {
    fn prepare(
        implementation: &dyn Implementation,
        workload: &Workload,
        options: &EngineOptions,
        ck: &CheckpointOptions,
        mem_shards: usize,
    ) -> io::Result<CheckpointSetup> {
        let mut root = Config::initial(implementation, workload);
        let strategy = options
            .reduction
            .strategy(&root, implementation.process_symmetric_hint());
        // The visited store *is* the resumable state, so dedup is forced on.
        root.set_fingerprint_tracking(true, strategy.uses_rename_components());
        if options.fault_budget > 0 {
            root.set_fault_budget(options.fault_budget);
        }
        let mut mask: SleepMask = 0;
        strategy.normalize(&mut root, &mut mask);
        let hash = config_hash(implementation, workload, options);
        let store_dir = ck.dir.join(STORE_SUBDIR);
        fs::create_dir_all(&store_dir)?;
        let checkpoint_path = ck.dir.join(CHECKPOINT_FILE);
        if checkpoint_path.exists() {
            let saved = read_checkpoint(&checkpoint_path, hash)?;
            let store = store::restore_store(&saved.manifest, &store_dir, mem_shards)?;
            // Run files written after the checkpoint (the kill window) are
            // unreferenced; remove them before the resumed store reuses
            // their sequence numbers.
            gc_unreferenced(&store_dir, &saved.manifest)?;
            let frames = saved
                .frames
                .iter()
                .map(|f| replay_frame(&root, strategy.as_ref(), f))
                .collect::<io::Result<Vec<Frame>>>()?;
            Ok(CheckpointSetup {
                root,
                strategy,
                store,
                stats: saved.stats,
                seq: saved.seq,
                resumed: true,
                frames,
                hash,
            })
        } else {
            let store = options.store.build_in(mem_shards, &store_dir)?;
            let mut frames = Vec::new();
            if store.insert(engine::dedup_key(&root, mask), 0) {
                frames.push(Frame {
                    config: root.clone(),
                    depth: 0,
                    mask,
                    path: Vec::new(),
                });
            }
            Ok(CheckpointSetup {
                root,
                strategy,
                store,
                stats: ExploreStats::default(),
                seq: 0,
                resumed: false,
                frames,
                hash,
            })
        }
    }
}

/// Rebuilds a frontier configuration by replaying its edge path from the
/// prepared root, normalizing after every step exactly as the engine did
/// when the frame was first produced.
fn replay_frame(
    root: &Config,
    strategy: &dyn ReductionStrategy,
    saved: &SavedFrame,
) -> io::Result<Frame> {
    let mut config = root.clone();
    for step in &saved.path {
        match *step {
            ChildStep::Exec(p) => {
                if matches!(config.step(p), StepOutcome::Idle) {
                    return Err(invalid(
                        "frontier path steps an idle process — checkpoint does not match \
                         this implementation/workload"
                            .to_string(),
                    ));
                }
            }
            ChildStep::Fault(f) => {
                if !config.apply_fault(&f) {
                    return Err(invalid(
                        "frontier path applies an inapplicable fault — checkpoint does \
                         not match this implementation/workload"
                            .to_string(),
                    ));
                }
            }
        }
        let mut scratch_mask: SleepMask = 0;
        strategy.normalize(&mut config, &mut scratch_mask);
    }
    Ok(Frame {
        config,
        depth: saved.path.len(),
        mask: saved.mask,
        path: saved.path.clone(),
    })
}

/// The word that pins a checkpoint to its exploration parameters: resuming
/// under a different implementation, workload, reduction, bound or store
/// backend is rejected with `InvalidData` instead of silently diverging.
fn config_hash(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
) -> u64 {
    let (store_tag, shards_log2, shard_budget) = match options.store {
        StoreConfig::Mem => (0u64, 0u64, 0u64),
        StoreConfig::Prefix {
            shards_log2,
            shard_budget,
        } => (1, shards_log2 as u64, shard_budget as u64),
        StoreConfig::Spill {
            shards_log2,
            shard_budget,
        } => (2, shards_log2 as u64, shard_budget as u64),
    };
    zobrist::fold_words(
        u64::from_le_bytes(*b"EVCKconf"),
        &[
            zobrist::hash_of(&implementation.name()),
            zobrist::hash_debug(workload),
            zobrist::hash_of(options.reduction.label()),
            options.limits.max_depth as u64,
            options.limits.max_configs as u64,
            options.fault_budget as u64,
            store_tag,
            shards_log2,
            shard_budget,
        ],
    )
}

// ---------------------------------------------------------------------------
// Checkpoint file codec (byte-level spec in docs/CHECKPOINT.md)
// ---------------------------------------------------------------------------

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Folds a byte buffer into the checkpoint trailer checksum: little-endian
/// words (zero-padded tail) plus the byte length, through
/// [`zobrist::fold_words`].
fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut words: Vec<u64> = bytes
        .chunks(8)
        .map(|chunk| {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(word)
        })
        .collect();
    words.push(bytes.len() as u64);
    zobrist::fold_words(u64::from_le_bytes(*b"EVCKsumm"), &words)
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.u16(u16::try_from(bytes.len()).expect("run file names are short"));
        self.buf.extend_from_slice(bytes);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| invalid("truncated checkpoint".to_string()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn str(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| invalid("run file name is not UTF-8".to_string()))
    }
}

fn encode_store_config(enc: &mut Enc, config: StoreConfig) {
    match config {
        StoreConfig::Mem => {
            enc.u8(0);
            enc.u32(0);
            enc.u64(0);
        }
        StoreConfig::Prefix {
            shards_log2,
            shard_budget,
        } => {
            enc.u8(1);
            enc.u32(shards_log2);
            enc.u64(shard_budget as u64);
        }
        StoreConfig::Spill {
            shards_log2,
            shard_budget,
        } => {
            enc.u8(2);
            enc.u32(shards_log2);
            enc.u64(shard_budget as u64);
        }
    }
}

fn decode_store_config(dec: &mut Dec<'_>) -> io::Result<StoreConfig> {
    let tag = dec.u8()?;
    let shards_log2 = dec.u32()?;
    let shard_budget = dec.u64()? as usize;
    match tag {
        0 => Ok(StoreConfig::Mem),
        1 => Ok(StoreConfig::Prefix {
            shards_log2,
            shard_budget,
        }),
        2 => Ok(StoreConfig::Spill {
            shards_log2,
            shard_budget,
        }),
        other => Err(invalid(format!("unknown store config tag {other}"))),
    }
}

fn encode_run_meta(enc: &mut Enc, meta: &RunMeta) {
    enc.str(&meta.file);
    enc.u16(meta.kind.code());
    enc.u64(meta.count);
    enc.u64(meta.min);
    enc.u64(meta.max);
    enc.u64(meta.checksum);
    enc.u64(meta.bytes);
}

fn decode_run_meta(dec: &mut Dec<'_>) -> io::Result<RunMeta> {
    let file = dec.str()?;
    let kind = match dec.u16()? {
        0 => RecordKind::Keys,
        1 => RecordKind::Pairs,
        other => return Err(invalid(format!("unknown record kind {other}"))),
    };
    Ok(RunMeta {
        file,
        kind,
        count: dec.u64()?,
        min: dec.u64()?,
        max: dec.u64()?,
        checksum: dec.u64()?,
        bytes: dec.u64()?,
    })
}

fn encode_step(enc: &mut Enc, step: ChildStep) {
    match step {
        ChildStep::Exec(p) => {
            enc.u8(0);
            enc.u32(p.index() as u32);
            enc.u32(0);
        }
        ChildStep::Fault(FaultStep { target, variant }) => {
            let (tag, index) = match target {
                FaultTarget::Object(i) => (1u8, i),
                FaultTarget::Process(i) => (2u8, i),
            };
            enc.u8(tag);
            enc.u32(index as u32);
            enc.u32(variant as u32);
        }
    }
}

fn decode_step(dec: &mut Dec<'_>) -> io::Result<ChildStep> {
    let tag = dec.u8()?;
    let index = dec.u32()? as usize;
    let variant = dec.u32()? as usize;
    match tag {
        0 => Ok(ChildStep::Exec(ProcessId(index))),
        1 => Ok(ChildStep::Fault(FaultStep {
            target: FaultTarget::Object(index),
            variant,
        })),
        2 => Ok(ChildStep::Fault(FaultStep {
            target: FaultTarget::Process(index),
            variant,
        })),
        other => Err(invalid(format!("unknown frontier step tag {other}"))),
    }
}

/// Snapshots the store and atomically replaces `checkpoint.bin`
/// (write-to-temp, fsync, rename), then garbage-collects `.evr` files the
/// new manifest no longer references (previous checkpoints' sidecars).
fn write_checkpoint(
    ck: &CheckpointOptions,
    store_dir: &Path,
    store: &dyn store::VisitedStore,
    hash: u64,
    seq: u64,
    stats: &ExploreStats,
    frames: &[Frame],
) -> io::Result<()> {
    let manifest = store.snapshot(store_dir, seq)?;
    let mut enc = Enc { buf: Vec::new() };
    enc.buf.extend_from_slice(&CHECKPOINT_MAGIC);
    enc.u16(CHECKPOINT_VERSION);
    enc.u16(0); // flags
    enc.u64(0); // config hash patched below
    enc.u64(seq);
    enc.u64(stats.visited as u64);
    enc.u64(stats.terminals as u64);
    enc.u64(stats.pruned as u64);
    enc.u8(stats.truncated as u8);
    encode_store_config(&mut enc, manifest.config);
    enc.u64(manifest.next_seq);
    enc.u32(u32::try_from(manifest.shards.len()).expect("shard count fits u32"));
    for shard in &manifest.shards {
        enc.u32(u32::try_from(shard.runs.len()).expect("run count fits u32"));
        for run in &shard.runs {
            encode_run_meta(&mut enc, run);
        }
        match &shard.active {
            None => enc.u8(0),
            Some(meta) => {
                enc.u8(1);
                encode_run_meta(&mut enc, meta);
            }
        }
    }
    enc.u64(frames.len() as u64);
    for frame in frames {
        enc.u64(frame.mask);
        enc.u32(u32::try_from(frame.path.len()).expect("path length fits u32"));
        for &step in &frame.path {
            encode_step(&mut enc, step);
        }
    }
    let mut body = enc.buf;
    body[8..16].copy_from_slice(&hash.to_le_bytes());
    let checksum = checksum_bytes(&body);
    body.extend_from_slice(&checksum.to_le_bytes());
    let tmp = ck.dir.join("checkpoint.tmp");
    let mut file = File::create(&tmp).map_err(|e| annotate(e, &tmp))?;
    file.write_all(&body)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, ck.dir.join(CHECKPOINT_FILE)).map_err(|e| annotate(e, &tmp))?;
    gc_unreferenced(store_dir, &manifest)?;
    Ok(())
}

fn read_checkpoint(path: &Path, expected_hash: u64) -> io::Result<SavedCheckpoint> {
    let bytes = fs::read(path).map_err(|e| annotate(e, path))?;
    if bytes.len() < 8 {
        return Err(invalid("checkpoint shorter than its checksum".to_string()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if checksum_bytes(body) != checksum {
        return Err(invalid("checkpoint checksum mismatch".to_string()));
    }
    let mut dec = Dec { buf: body, pos: 0 };
    if dec.take(4)? != CHECKPOINT_MAGIC {
        return Err(invalid("bad checkpoint magic".to_string()));
    }
    let version = dec.u16()?;
    if version != CHECKPOINT_VERSION {
        return Err(invalid(format!(
            "checkpoint version {version} (supported: {CHECKPOINT_VERSION})"
        )));
    }
    let _flags = dec.u16()?;
    let hash = dec.u64()?;
    if hash != expected_hash {
        return Err(invalid(
            "checkpoint was written for different exploration parameters".to_string(),
        ));
    }
    let seq = dec.u64()?;
    let stats = ExploreStats {
        visited: dec.u64()? as usize,
        terminals: dec.u64()? as usize,
        pruned: dec.u64()? as usize,
        truncated: dec.u8()? != 0,
        ..ExploreStats::default()
    };
    let config = decode_store_config(&mut dec)?;
    let next_seq = dec.u64()?;
    let shard_count = dec.u32()? as usize;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let run_count = dec.u32()? as usize;
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            runs.push(decode_run_meta(&mut dec)?);
        }
        let active = match dec.u8()? {
            0 => None,
            1 => Some(decode_run_meta(&mut dec)?),
            other => return Err(invalid(format!("bad active-sidecar marker {other}"))),
        };
        shards.push(ShardManifest { runs, active });
    }
    let frame_count = dec.u64()? as usize;
    let mut frames = Vec::with_capacity(frame_count);
    for _ in 0..frame_count {
        let mask = dec.u64()?;
        let path_len = dec.u32()? as usize;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(decode_step(&mut dec)?);
        }
        frames.push(SavedFrame { mask, path });
    }
    if dec.pos != body.len() {
        return Err(invalid(
            "trailing bytes after checkpoint frontier".to_string(),
        ));
    }
    Ok(SavedCheckpoint {
        stats,
        seq,
        manifest: StoreManifest {
            config,
            next_seq,
            shards,
        },
        frames,
    })
}

/// Removes `.evr` files in `store_dir` that `manifest` does not reference:
/// sidecars from older checkpoints, and runs written between the last
/// durable checkpoint and a crash (whose sequence numbers the resumed store
/// will reuse).
fn gc_unreferenced(store_dir: &Path, manifest: &StoreManifest) -> io::Result<()> {
    let referenced: HashSet<&str> = manifest.referenced_files().collect();
    for entry in fs::read_dir(store_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".evr") && !referenced.contains(name) {
            fs::remove_file(entry.path()).map_err(|e| annotate(e, &entry.path()))?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fingerprint-range partitioning
// ---------------------------------------------------------------------------

/// A contiguous, inclusive range of the 64-bit dedup-key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// First key in the range.
    pub start: u64,
    /// Last key in the range (inclusive — the top range must reach
    /// `u64::MAX`).
    pub end: u64,
}

impl KeyRange {
    /// Whether `key` falls in this range.
    pub fn contains(&self, key: u64) -> bool {
        (self.start..=self.end).contains(&key)
    }
}

/// Splits the dedup-key space into `2^parts_log2` equal contiguous ranges
/// by top bits.  `partition_ranges(p)[i].contains(k)` iff
/// [`crate::zobrist::prefix_shard`]`(k, p) == i`, so the partitioner and
/// the prefix-sharded stores agree on ownership exactly.
pub fn partition_ranges(parts_log2: u32) -> Vec<KeyRange> {
    if parts_log2 == 0 {
        return vec![KeyRange {
            start: 0,
            end: u64::MAX,
        }];
    }
    let width = 1u64 << (64 - parts_log2);
    (0..1u64 << parts_log2)
        .map(|i| {
            let start = i * width;
            KeyRange {
                start,
                end: start + (width - 1),
            }
        })
        .collect()
}

/// The recomposed result of a partitioned exploration.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// Per-partition engine stats (store bytes are each partition's own).
    pub per_partition: Vec<ExploreStats>,
    /// The exact recomposition: field-wise sum of the partitions.  For a
    /// non-truncated run, `visited`/`terminals`/`pruned` equal a single
    /// dedup-on exploration with the same options; with the default
    /// in-memory backend the byte totals match too.
    pub total: ExploreStats,
    /// Export/import delivery rounds until all frontiers drained.
    pub rounds: usize,
    /// Generated edges whose dedup key belonged to another partition
    /// (each crossed the boundary as a replayable `(path, mask, key)`
    /// record).
    pub exported: usize,
}

/// One cross-partition edge: everything the owning partition needs to probe
/// and (if fresh) replay the child — plain words only, so the identical
/// protocol works across OS processes.
struct Export {
    key: u64,
    depth: usize,
    mask: SleepMask,
    path: Vec<ChildStep>,
}

/// Explores with the dedup-key space split across `2^parts_log2`
/// partitions, each owning the visited store for its [`KeyRange`] (backend
/// per `options.store`), scheduled round-robin in this process.  A child
/// generated in the wrong partition is exported to its key's owner, which
/// probes its own store and replays the child's edge path from the root
/// only when fresh — so every generated edge is probed exactly once and the
/// summed stats recompose the single-run totals exactly.  Deduplication is
/// forced on.  The visitor sees every visited configuration (partition
/// order is round-robin deterministic).
pub fn explore_partitioned<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: &EngineOptions,
    parts_log2: u32,
    mut visitor: F,
) -> io::Result<PartitionRun>
where
    F: FnMut(&Config, usize) -> Visit,
{
    let parts = 1usize << parts_log2;
    let mut root = Config::initial(implementation, workload);
    let strategy = options
        .reduction
        .strategy(&root, implementation.process_symmetric_hint());
    root.set_fingerprint_tracking(true, strategy.uses_rename_components());
    if options.fault_budget > 0 {
        root.set_fault_budget(options.fault_budget);
    }
    let mut root_mask: SleepMask = 0;
    strategy.normalize(&mut root, &mut root_mask);
    let stores: Vec<Box<dyn store::VisitedStore>> = (0..parts)
        .map(|_| options.store.build(1))
        .collect::<io::Result<_>>()?;
    let shared = engine::Shared {
        budget: AtomicUsize::new(options.limits.max_configs),
        stopped: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        store: None,
    };
    let mut per_partition = vec![ExploreStats::default(); parts];
    let mut stacks: Vec<Vec<Frame>> = (0..parts).map(|_| Vec::new()).collect();
    let mut outboxes: Vec<Vec<Export>> = (0..parts).map(|_| Vec::new()).collect();
    let root_key = engine::dedup_key(&root, root_mask);
    let root_owner = zobrist::prefix_shard(root_key, parts_log2);
    if stores[root_owner].insert(root_key, 0) {
        stacks[root_owner].push(Frame {
            config: root.clone(),
            depth: 0,
            mask: root_mask,
            path: Vec::new(),
        });
    }
    let mut rounds = 0usize;
    let mut exported = 0usize;
    let mut scratch = engine::WalkScratch::default();
    loop {
        for part in 0..parts {
            let mut pruned_here = 0usize;
            let mut halted = false;
            while let Some(frame) = stacks[part].pop() {
                let parent_path = frame.path;
                let stack = &mut stacks[part];
                let outboxes = &mut outboxes;
                let store = stores[part].as_ref();
                let cont = engine::visit_one(
                    frame.config,
                    frame.depth,
                    frame.mask,
                    &mut visitor,
                    strategy.as_ref(),
                    &shared,
                    &mut per_partition[part],
                    options.limits.max_depth,
                    &mut scratch,
                    |child, depth, mask, step| {
                        let key = engine::dedup_key(&child, mask);
                        let owner = zobrist::prefix_shard(key, parts_log2);
                        let mut path = parent_path.clone();
                        path.push(step);
                        if owner == part {
                            if store.insert(key, depth) {
                                stack.push(Frame {
                                    config: child,
                                    depth,
                                    mask,
                                    path,
                                });
                            } else {
                                pruned_here += 1;
                            }
                        } else {
                            exported += 1;
                            outboxes[owner].push(Export {
                                key,
                                depth,
                                mask,
                                path,
                            });
                        }
                    },
                );
                if !cont {
                    halted = true;
                    break;
                }
            }
            per_partition[part].pruned += pruned_here;
            if halted {
                break;
            }
        }
        if shared.stopped.load(Ordering::Relaxed) {
            break;
        }
        // Deliver cross-partition edges: the owner probes each key against
        // its store and replays only fresh ones.
        let mut delivered = false;
        for owner in 0..parts {
            let exports: Vec<Export> = outboxes[owner].drain(..).collect();
            for export in exports {
                if stores[owner].insert(export.key, export.depth) {
                    let frame = replay_frame(
                        &root,
                        strategy.as_ref(),
                        &SavedFrame {
                            mask: export.mask,
                            path: export.path,
                        },
                    )?;
                    stacks[owner].push(frame);
                    delivered = true;
                } else {
                    per_partition[owner].pruned += 1;
                }
            }
        }
        if !delivered && stacks.iter().all(|s| s.is_empty()) {
            break;
        }
        rounds += 1;
    }
    let truncated = shared.truncated.load(Ordering::Relaxed);
    let mut total = ExploreStats::default();
    for (stats, store) in per_partition.iter_mut().zip(&stores) {
        let report = store.report();
        stats.store_bytes = report.bytes;
        stats.bytes_allocated = report.bytes.total();
        stats.store_runs = report.runs_written;
        stats.truncated = truncated;
        total.visited += stats.visited;
        total.terminals += stats.terminals;
        total.pruned += stats.pruned;
        total.store_runs += report.runs_written;
        total.store_bytes.resident += report.bytes.resident;
        total.store_bytes.spilled += report.bytes.spilled;
        total.store_bytes.filter += report.bytes.filter;
    }
    total.bytes_allocated = total.store_bytes.total();
    total.truncated = truncated;
    Ok(PartitionRun {
        per_partition,
        total,
        rounds,
        exported,
    })
}
