//! Configurations of the simulated system.
//!
//! A configuration bundles the state of every shared base object, the
//! programme state of every process, each process's remaining workload, and
//! the high-level history recorded so far.  Configurations are cheap to clone
//! (everything is an owned value), which is what the execution-tree explorer,
//! the valency analysis and the stable-configuration search rely on.

use crate::base::{BaseObject, PidDependence};
use crate::fault::{FaultStep, FaultTarget};
use crate::program::{Implementation, ProcessLogic, TaskStep};
use crate::workload::Workload;
use crate::zobrist::{self, TAG_EVENT, TAG_OBJECT, TAG_PROCESS};
use evlin_history::{Event, History, ObjectId, ProcessId};
use evlin_spec::Value;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};

/// What happened when a process was given one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process performed an internal or base-object step of its current
    /// operation; the operation is still running.
    Progressed,
    /// The process completed its current high-level operation with the given
    /// response.
    Completed(Value),
    /// The process has no operation to run (its workload is exhausted).
    Idle,
}

/// The *shape* of the next atomic step of a process, as seen by the
/// step-independence oracle of [`crate::engine`]: whether the step records a
/// history event and, for mid-operation base-object accesses, which object
/// it touches and whether it changes that object's state.
///
/// Two steps *commute* (executing them in either order reaches the same
/// configuration) iff both are [`StepShape::Access`]es to disjoint base
/// objects, or to the same object with neither writing.  Operation starts and
/// completions append to the recorded history, whose event order is part of
/// the configuration, so they never commute with anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepShape {
    /// The step starts a new high-level operation (records an invocation
    /// event).
    Start,
    /// A mid-operation access to a base object (records nothing).
    Access {
        /// Index of the base object the step accesses.
        object: usize,
        /// Whether the access changes the object's state (observed on its
        /// `Debug` rendering, which for the state machines in this workspace
        /// prints every field).
        writes: bool,
    },
    /// The step completes the current operation (records a response event).
    Complete,
}

#[derive(Clone, Debug)]
struct ProcessState {
    logic: Box<dyn ProcessLogic>,
    /// Remaining high-level operations to perform.
    remaining: VecDeque<evlin_spec::Invocation>,
    /// Whether an operation is currently being executed, and the response of
    /// the last base-object access to feed into the next step.
    running: bool,
    last_response: Option<Value>,
    completed: usize,
}

/// Largest process count for which the per-(process, rename-target) history
/// components are maintained (the symmetry reduction needs them for up to
/// [`crate::engine::SymmetryReduction::MAX_PROCESSES`] = 6 processes; beyond
/// this bound permuted fingerprints fall back to a physical rename).
const MAX_TRACKED_PROCESSES: usize = 16;

/// The incrementally maintained Zobrist fingerprint of a configuration (see
/// [`crate::zobrist`]): one XOR-folded [`zobrist::component`] per base
/// object, per process state and per recorded history event.
///
/// Every mutation of the configuration updates exactly the components it
/// touches — a step rehashes one process state and at most one base object,
/// an event append folds in one event key per rename target — so
/// [`Config::fingerprint`] is a field read instead of a full-state
/// serialization.
#[derive(Clone, Default)]
struct Fingerprint {
    /// Content hash of each base object's state (its `Debug` rendering).
    obj_raw: Vec<u64>,
    /// Content hash of each process state.
    proc_raw: Vec<u64>,
    /// XOR of all object components (`component(TAG_OBJECT, i, obj_raw[i])`).
    obj_fold: u64,
    /// XOR of all process components.
    proc_fold: u64,
    /// XOR of all identity event components (`ev(k, p, body)` for the event
    /// at position `k` by process `p`).
    hist_id: u64,
    /// `hist[p * n + q]`: XOR of the event components of process `p`'s events
    /// *as if* `p` were renamed to `q` — what lets a permuted fingerprint
    /// fold `n` precomputed words instead of rehashing the history.  Empty
    /// when the configuration has more than [`MAX_TRACKED_PROCESSES`]
    /// processes.
    hist: Vec<u64>,
}

/// The key of the event at position `k` by (renamed) process `q` with
/// content hash `body`.
#[inline]
fn ev_key(k: usize, q: usize, body: u64) -> u64 {
    zobrist::component(TAG_EVENT, zobrist::mix2(k as u64, q as u64), body)
}

impl Fingerprint {
    /// The combined fingerprint.
    #[inline]
    fn current(&self) -> u64 {
        self.obj_fold ^ self.proc_fold ^ self.hist_id
    }

    fn tracks_renames(&self, n: usize) -> bool {
        self.hist.len() == n * n
    }

    /// Folds the event at position `k` by process `p` into the history
    /// components.
    fn push_event(&mut self, n: usize, k: usize, p: usize, body: u64) {
        self.hist_id ^= ev_key(k, p, body);
        if self.tracks_renames(n) {
            for q in 0..n {
                self.hist[p * n + q] ^= ev_key(k, q, body);
            }
        }
    }

    /// Replaces the content hash of base object `i`.
    fn set_obj(&mut self, i: usize, raw: u64) {
        self.obj_fold ^= zobrist::component(TAG_OBJECT, i as u64, self.obj_raw[i])
            ^ zobrist::component(TAG_OBJECT, i as u64, raw);
        self.obj_raw[i] = raw;
    }

    /// Replaces the content hash of process `i`'s state.
    fn set_proc(&mut self, i: usize, raw: u64) {
        self.proc_fold ^= zobrist::component(TAG_PROCESS, i as u64, self.proc_raw[i])
            ^ zobrist::component(TAG_PROCESS, i as u64, raw);
        self.proc_raw[i] = raw;
    }
}

/// The content hash of one process state (programme state by `Debug`,
/// progress flags, in-flight response, remaining workload) — the same fields
/// the pre-incremental fingerprint serialized.
fn proc_content(state: &ProcessState) -> u64 {
    let mut hasher = zobrist::FxHasher::default();
    zobrist::hash_debug(&state.logic).hash(&mut hasher);
    state.running.hash(&mut hasher);
    state.last_response.hash(&mut hasher);
    state.completed.hash(&mut hasher);
    state.remaining.hash(&mut hasher);
    hasher.finish()
}

/// The content hash of one history event's body (object and kind; the
/// process id is folded separately so renamings can be applied per process).
fn event_body(event: &Event) -> u64 {
    let mut hasher = zobrist::FxHasher::default();
    event.object.hash(&mut hasher);
    event.kind.hash(&mut hasher);
    hasher.finish()
}

/// One slot of the step-shape memo: `None` = not computed for the current
/// state; `Some(shape)` = the memoized [`Config::peek_step_shape`] result
/// (itself an `Option`, since disabled processes have no shape).
type ShapeSlot = Option<Option<StepShape>>;

/// A configuration of the simulated system.
pub struct Config {
    base: Vec<Box<dyn BaseObject>>,
    processes: Vec<ProcessState>,
    history: History,
    steps: usize,
    /// The single high-level object id used in the recorded history.
    object_id: ObjectId,
    /// The maintained structural fingerprint.
    fp: Fingerprint,
    /// Whether `fp` is being maintained.  Off by default: only deduplicating
    /// exploration reads fingerprints, and maintaining them costs one
    /// state-content rehash per step, which pure tree walks and the long
    /// scheduler runs of `crate::runner` should not pay.  The engine flips
    /// this on (see [`Config::set_fingerprint_tracking`]) exactly when a
    /// dedup set exists.
    fp_live: bool,
    /// Remaining transient-fault budget: how many more [`FaultStep`]s this
    /// configuration's futures may inject (see [`crate::fault`]).  0 — the
    /// default — disables fault enumeration entirely.
    fault_budget: usize,
    /// Memoized per-process step shapes ([`Config::step_shape_memoized`]),
    /// cleared by every mutation that can change a pending step's shape —
    /// including fault corruption, whose staleness would otherwise let a
    /// write-detecting probe report the pre-corruption classification.
    /// Empty = cold.
    shape_memo: Vec<ShapeSlot>,
}

impl Clone for Config {
    fn clone(&self) -> Self {
        Config {
            base: self.base.clone(),
            processes: self.processes.clone(),
            history: self.history.clone(),
            steps: self.steps,
            object_id: self.object_id,
            fp: self.fp.clone(),
            fp_live: self.fp_live,
            fault_budget: self.fault_budget,
            // The memo would still be valid for the clone (same state), but
            // carrying it would cost an allocation per clone on the engine's
            // hot path; clones start cold instead.
            shape_memo: Vec::new(),
        }
    }
}

impl Config {
    /// Builds the initial configuration of `implementation` running
    /// `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the workload has more processes than the implementation was
    /// instantiated for.
    pub fn initial(implementation: &dyn Implementation, workload: &Workload) -> Self {
        assert!(
            workload.processes() <= implementation.processes(),
            "workload has {} processes but the implementation supports {}",
            workload.processes(),
            implementation.processes()
        );
        let base = implementation.initial_base_objects();
        let processes = (0..workload.processes())
            .map(|i| ProcessState {
                logic: implementation.new_process(ProcessId(i)),
                remaining: workload.operations(i).iter().cloned().collect(),
                running: false,
                last_response: None,
                completed: 0,
            })
            .collect();
        Config {
            base,
            processes,
            history: History::new(),
            steps: 0,
            object_id: ObjectId(0),
            fp: Fingerprint::default(),
            fp_live: false,
            fault_budget: 0,
            shape_memo: Vec::new(),
        }
    }

    /// Switches incremental fingerprint maintenance on or off.
    ///
    /// Turning it on rebuilds the components once (O(|state| + |history|));
    /// every subsequent [`Config::step`] then updates them incrementally.
    /// `renames` additionally maintains the per-(process, rename-target)
    /// history rows that [`Config::canonical_permutation`] folds — only the
    /// symmetry-canonicalizing strategies read them, and they cost `n` extra
    /// event-key folds per recorded event plus an `n²`-word copy per clone,
    /// so plain deduplicating walks should pass `false`.  Turning tracking
    /// off drops the components, which also makes clones of this
    /// configuration slightly cheaper.  The exploration engine enables
    /// tracking on the root exactly when deduplication (or symmetry
    /// canonicalization) will read fingerprints.
    pub fn set_fingerprint_tracking(&mut self, on: bool, renames: bool) {
        if on && (!self.fp_live || self.fp.tracks_renames(self.processes.len()) != renames) {
            self.fp = self.rebuild_fingerprint_with(renames);
        } else if !on {
            self.fp = Fingerprint::default();
        }
        self.fp_live = on;
    }

    /// Rebuilds the fingerprint components from scratch, with rename rows
    /// matching the current tracking mode (the debug cross-check; every
    /// steady-state update is incremental).
    fn rebuild_fingerprint(&self) -> Fingerprint {
        self.rebuild_fingerprint_with(self.fp.tracks_renames(self.processes.len()))
    }

    /// Rebuilds the fingerprint components from scratch, building the
    /// per-(process, rename-target) history rows only when `renames` asks
    /// for them.
    fn rebuild_fingerprint_with(&self, renames: bool) -> Fingerprint {
        let n = self.processes.len();
        let obj_raw: Vec<u64> = self.base.iter().map(|b| zobrist::hash_debug(b)).collect();
        let proc_raw: Vec<u64> = self.processes.iter().map(proc_content).collect();
        let obj_fold = obj_raw.iter().enumerate().fold(0, |acc, (i, &raw)| {
            acc ^ zobrist::component(TAG_OBJECT, i as u64, raw)
        });
        let proc_fold = proc_raw.iter().enumerate().fold(0, |acc, (i, &raw)| {
            acc ^ zobrist::component(TAG_PROCESS, i as u64, raw)
        });
        let mut fp = Fingerprint {
            obj_raw,
            proc_raw,
            obj_fold,
            proc_fold,
            hist_id: 0,
            hist: if renames && n <= MAX_TRACKED_PROCESSES {
                vec![0; n * n]
            } else {
                Vec::new()
            },
        };
        for (k, event) in self.history.events().iter().enumerate() {
            fp.push_event(n, k, event.process.index(), event_body(event));
        }
        fp
    }

    /// Whether the incrementally maintained fingerprint agrees with a full
    /// rebuild — the cross-check the differential suite runs on every visited
    /// state of its seeded cases.  Vacuously true while tracking is off.
    pub fn fingerprint_consistent(&self) -> bool {
        if !self.fp_live {
            return true;
        }
        let fresh = self.rebuild_fingerprint();
        fresh.obj_raw == self.fp.obj_raw
            && fresh.proc_raw == self.fp.proc_raw
            && fresh.obj_fold == self.fp.obj_fold
            && fresh.proc_fold == self.fp.proc_fold
            && fresh.hist_id == self.fp.hist_id
            && fresh.hist == self.fp.hist
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.processes.len()
    }

    /// The high-level history recorded so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Total number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of high-level operations completed by process `p`.
    pub fn completed(&self, p: ProcessId) -> usize {
        self.processes[p.index()].completed
    }

    /// Number of high-level operations completed by all processes.
    pub fn total_completed(&self) -> usize {
        self.processes.iter().map(|p| p.completed).sum()
    }

    /// Whether process `p` currently has an operation in progress.
    pub fn is_running(&self, p: ProcessId) -> bool {
        self.processes[p.index()].running
    }

    /// Whether process `p` can take a step (it has an operation in progress
    /// or more workload to start).
    pub fn is_enabled(&self, p: ProcessId) -> bool {
        let st = &self.processes[p.index()];
        st.running || !st.remaining.is_empty()
    }

    /// Whether every process has exhausted its workload and has no operation
    /// in progress.
    pub fn is_quiescent(&self) -> bool {
        self.processes
            .iter()
            .all(|p| !p.running && p.remaining.is_empty())
    }

    /// The processes that can currently take a step.
    pub fn enabled_processes(&self) -> Vec<ProcessId> {
        let mut out = Vec::new();
        self.enabled_into(&mut out);
        out
    }

    /// Collects the enabled processes into a caller-provided buffer (cleared
    /// first) — the allocation-free variant the exploration engine uses once
    /// per visited configuration.
    pub fn enabled_into(&self, out: &mut Vec<ProcessId>) {
        out.clear();
        out.extend(
            (0..self.processes.len())
                .map(ProcessId)
                .filter(|&p| self.is_enabled(p)),
        );
    }

    /// Appends an extra high-level operation to process `p`'s workload.
    pub fn push_operation(&mut self, p: ProcessId, invocation: evlin_spec::Invocation) {
        self.processes[p.index()].remaining.push_back(invocation);
        self.shape_memo.clear();
        self.refresh_proc_fingerprint(p.index());
    }

    /// Rehashes process `i`'s state into the maintained fingerprint (called
    /// after any mutation of that process's fields; no-op while tracking is
    /// off).
    fn refresh_proc_fingerprint(&mut self, i: usize) {
        if self.fp_live {
            let raw = proc_content(&self.processes[i]);
            self.fp.set_proc(i, raw);
        }
    }

    /// The current states of the base objects (used by the Proposition 18
    /// freezing machinery and by diagnostics).
    pub fn base_states(&self) -> Vec<Value> {
        self.base.iter().map(|b| b.state_value()).collect()
    }

    /// Clones the base objects (used to freeze a configuration into a new
    /// implementation).
    pub fn clone_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        self.base.clone()
    }

    /// Clones process `p`'s programme state (used to freeze a configuration).
    pub fn clone_process_logic(&self, p: ProcessId) -> Box<dyn ProcessLogic> {
        self.processes[p.index()].logic.clone()
    }

    /// A structural fingerprint of the configuration, used by deduplicating
    /// exploration ([`crate::explorer::explore_par`]).
    ///
    /// Two configurations with equal fingerprints have (with overwhelming
    /// probability) identical base-object states, programme states, remaining
    /// workloads, in-flight responses *and recorded histories*.  Keeping the
    /// history in the key means only interleavings that differ in unrecorded
    /// internal base-object steps ever merge — a deliberate choice so that
    /// visitors which collect histories stay exact under deduplication.  The
    /// step counter is excluded: configurations agreeing on everything else
    /// have necessarily taken the same number of (non-idle) steps, so hashing
    /// it would add nothing.
    ///
    /// The fingerprint is a Zobrist-style XOR fold maintained incrementally
    /// by [`Config::step`] (see [`crate::zobrist`]), so with tracking enabled
    /// ([`Config::set_fingerprint_tracking`], as the deduplicating engine
    /// does) this is a field read — O(1) instead of O(|state|) per visited
    /// configuration.  Without tracking it falls back to a full rebuild.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        if self.fp_live {
            self.fp.current()
        } else {
            self.rebuild_fingerprint().current()
        }
    }

    /// The fingerprint of the configuration *as if* its processes had been
    /// renamed by `perm` (process `i` becomes `perm[i]`), without mutating
    /// anything.
    ///
    /// This is what the symmetry reduction minimizes over all permutations to
    /// pick a canonical representative; it agrees with
    /// [`Config::fingerprint`] after [`Config::apply_permutation`] with the
    /// same permutation.  Sound only when process programmes do not embed
    /// their own identity and every base object declares its process-id
    /// dependence (see [`crate::engine::SymmetryReduction`]).
    pub fn fingerprint_permuted(&self, perm: &[usize]) -> u64 {
        let n = self.processes.len();
        if n > MAX_TRACKED_PROCESSES {
            // Beyond the tracked bound: rename physically (cold path, never
            // taken by the symmetry reduction, which caps at 6 processes).
            let mut renamed = self.clone();
            renamed.apply_permutation(perm);
            return renamed.fingerprint();
        }
        if self.fp_live && self.fp.tracks_renames(n) {
            self.permuted_key(&self.fp, perm, self.permutable_components(&self.fp, perm))
        } else {
            // Rows not maintained (tracking off, or a non-canonicalizing
            // walk): derive them once for this call.
            let fp = self.rebuild_fingerprint_with(true);
            self.permuted_key(&fp, perm, self.permutable_components(&fp, perm))
        }
    }

    /// The object components of the configuration under `perm`: only
    /// pid-dependent objects change (their state mentions process ids), so
    /// everything else reuses the maintained component fold.
    fn permutable_components(&self, fp: &Fingerprint, perm: &[usize]) -> u64 {
        let mut fold = fp.obj_fold;
        for (i, b) in self.base.iter().enumerate() {
            if b.pid_dependence() == PidDependence::Permutable {
                let mut renamed = b.clone();
                renamed.permute_processes(perm);
                fold ^= zobrist::component(TAG_OBJECT, i as u64, fp.obj_raw[i])
                    ^ zobrist::component(TAG_OBJECT, i as u64, zobrist::hash_debug(&renamed));
            }
        }
        fold
    }

    /// The renamed fingerprint from precomputed components: `n` process-state
    /// folds plus `n` history-row folds — O(n) per candidate permutation,
    /// independent of the history length.
    fn permuted_key(&self, fp: &Fingerprint, perm: &[usize], obj_fold: u64) -> u64 {
        let n = self.processes.len();
        let mut proc_fold = 0u64;
        let mut hist_fold = 0u64;
        for (i, &target) in perm.iter().enumerate() {
            proc_fold ^= zobrist::component(TAG_PROCESS, target as u64, fp.proc_raw[i]);
            hist_fold ^= fp.hist[i * n + target];
        }
        obj_fold ^ proc_fold ^ hist_fold
    }

    /// Picks the permutation (an index into `perms`) whose renaming of this
    /// configuration has the least canonical key — the argmin the symmetry
    /// reduction rewrites configurations with.  Renamings of one another
    /// select the same representative (up to hash collision), because the
    /// key is a function of the renamed configuration alone (it equals
    /// [`Config::fingerprint_permuted`] of that renaming).
    ///
    /// The per-process and per-event components are maintained incrementally
    /// by [`Config::step`], so the `n!` candidates cost `O(n)` word folds
    /// each — the history is never rehashed, even though this runs once per
    /// configuration visited under symmetry reduction.
    pub fn canonical_permutation(&self, perms: &[Vec<usize>]) -> usize {
        let rebuilt;
        let fp = if self.fp_live && self.fp.tracks_renames(self.processes.len()) {
            &self.fp
        } else {
            rebuilt = self.rebuild_fingerprint_with(true);
            &rebuilt
        };
        debug_assert!(
            fp.tracks_renames(self.processes.len()),
            "canonicalization requires tracked rename components"
        );
        let mut best = 0usize;
        let mut best_key = u64::MAX;
        for (i, perm) in perms.iter().enumerate() {
            let obj_fold = self.permutable_components(fp, perm);
            let key = self.permuted_key(fp, perm, obj_fold);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Physically renames the processes: process `i` becomes `perm[i]`,
    /// permuting the per-process states, renaming every process id recorded
    /// by pid-dependent base objects, and renaming the history's events.
    ///
    /// Used by the symmetry reduction to rewrite a configuration into its
    /// canonical representative.  Sound only under the conditions checked by
    /// [`crate::engine::SymmetryReduction::detect`].
    pub fn apply_permutation(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.processes.len(), "permutation arity");
        self.shape_memo.clear();
        let n = self.processes.len();
        let old = std::mem::take(&mut self.processes);
        let mut slots: Vec<Option<ProcessState>> = (0..old.len()).map(|_| None).collect();
        for (i, state) in old.into_iter().enumerate() {
            slots[perm[i]] = Some(state);
        }
        self.processes = slots
            .into_iter()
            .map(|s| s.expect("perm must be a bijection"))
            .collect();
        let fp_live = self.fp_live;
        for (i, b) in self.base.iter_mut().enumerate() {
            if b.pid_dependence() == PidDependence::Permutable {
                b.permute_processes(perm);
                if fp_live {
                    let raw = zobrist::hash_debug(b);
                    self.fp.set_obj(i, raw);
                }
            }
        }
        let map: Vec<ProcessId> = perm.iter().map(|&i| ProcessId(i)).collect();
        self.history.rename_processes(&map);
        if !self.fp_live {
            return;
        }
        // Rename the fingerprint components along: process contents move to
        // their new positions, and each history row `hist[p][·]` (events of
        // old process `p` under every rename target) becomes the row of
        // `perm[p]`; the identity fold of the renamed configuration is the
        // old `perm`-fold.
        let old_proc_raw = std::mem::take(&mut self.fp.proc_raw);
        let mut proc_raw = vec![0u64; n];
        let mut proc_fold = 0u64;
        for (i, &target) in perm.iter().enumerate() {
            proc_raw[target] = old_proc_raw[i];
            proc_fold ^= zobrist::component(TAG_PROCESS, target as u64, old_proc_raw[i]);
        }
        self.fp.proc_raw = proc_raw;
        self.fp.proc_fold = proc_fold;
        if self.fp.tracks_renames(n) {
            let old_hist = std::mem::take(&mut self.fp.hist);
            let mut hist = vec![0u64; n * n];
            let mut hist_id = 0u64;
            for (p, &target) in perm.iter().enumerate() {
                hist[target * n..(target + 1) * n].copy_from_slice(&old_hist[p * n..(p + 1) * n]);
                hist_id ^= old_hist[p * n + target];
            }
            self.fp.hist = hist;
            self.fp.hist_id = hist_id;
        } else {
            self.fp = self.rebuild_fingerprint();
        }
        debug_assert!(
            self.fingerprint_consistent(),
            "permuted fingerprint drifted"
        );
    }

    /// Whether every per-process state is structurally identical: same
    /// programme state (by `Debug`), same progress flags and same remaining
    /// workload.  On the initial configuration of a uniform workload this is
    /// the structural evidence that the implementation is process-symmetric
    /// (programmes that embed their own id print differently).
    pub fn processes_structurally_symmetric(&self) -> bool {
        if self.processes.len() < 2 {
            return false;
        }
        let sig = |p: &ProcessState| {
            (
                format!("{:?}", p.logic),
                p.running,
                p.completed,
                p.last_response.clone(),
            )
        };
        let first = sig(&self.processes[0]);
        self.processes
            .iter()
            .skip(1)
            .all(|p| sig(p) == first && p.remaining == self.processes[0].remaining)
    }

    /// Whether every base object declares how its state depends on process
    /// ids (no [`PidDependence::Opaque`] object) — a precondition for
    /// symmetry canonicalization.
    pub fn base_objects_permutable(&self) -> bool {
        self.base
            .iter()
            .all(|b| b.pid_dependence() != PidDependence::Opaque)
    }

    /// The shape of the next atomic step process `p` would take, without
    /// taking it — the step-independence oracle behind the sleep-set
    /// reduction of [`crate::engine`].  Returns `None` if `p` is not enabled.
    ///
    /// Determining whether a base-object access *writes* costs one clone of
    /// the target object plus a probe invocation; operation starts and
    /// completions are classified from the programme state alone.
    pub fn peek_step_shape(&self, p: ProcessId) -> Option<StepShape> {
        let state = &self.processes[p.index()];
        if !state.running {
            return if state.remaining.is_empty() {
                None
            } else {
                Some(StepShape::Start)
            };
        }
        let mut logic = state.logic.clone();
        match logic.step(state.last_response.clone()) {
            TaskStep::Access { object, invocation } => {
                // Write detection compares streamed content hashes of the
                // probed object's debug rendering — no string allocations on
                // this path, which runs once per enabled process per node
                // under sleep-set reduction.  (A 2⁻⁶⁴ hash collision would
                // misclassify a write as a read — the same vanishing risk the
                // fingerprint-based deduplication already accepts.)
                let mut probe = self.base[object].clone();
                let before = zobrist::hash_debug(&probe);
                let _ = probe.invoke(p, &invocation);
                let writes = zobrist::hash_debug(&probe) != before;
                Some(StepShape::Access { object, writes })
            }
            TaskStep::Complete(_) => Some(StepShape::Complete),
        }
    }

    /// [`Config::peek_step_shape`] with a per-process memo, for callers that
    /// may classify the same pending step several times against one
    /// configuration (quiescence probes, external tooling; the engine's
    /// sleep-set expansion instead keeps one classification per process on
    /// its stack, which is cheaper for its classify-once pattern).  The memo
    /// is invalidated by every mutation that can
    /// change a pending step's shape — a process step, a permutation, a
    /// workload append and, crucially, a fault corruption: a corrupted base
    /// object can flip whether a pending access *writes* (e.g. a `cas` whose
    /// expected value no longer matches), and a corrupted programme state can
    /// change the step entirely, so serving the stale classification would
    /// unsoundly sleep dependent steps.
    pub fn step_shape_memoized(&mut self, p: ProcessId) -> Option<StepShape> {
        let n = self.processes.len();
        if self.shape_memo.len() != n {
            self.shape_memo.clear();
            self.shape_memo.resize(n, None);
        }
        if let Some(known) = self.shape_memo[p.index()] {
            return known;
        }
        let shape = self.peek_step_shape(p);
        self.shape_memo[p.index()] = Some(shape);
        shape
    }

    /// Gives one atomic step to process `p`.
    ///
    /// If `p` has no operation in progress and workload remains, the next
    /// operation is started (its invocation event is recorded) and its first
    /// programme step is executed; otherwise the programme of the operation
    /// in progress advances by one step.  A step is either one base-object
    /// access or the completion of the operation (whose response event is
    /// recorded).
    pub fn step(&mut self, p: ProcessId) -> StepOutcome {
        let idx = p.index();
        if !self.is_enabled(p) {
            return StepOutcome::Idle;
        }
        self.steps += 1;
        self.shape_memo.clear();
        let n = self.processes.len();
        if !self.processes[idx].running {
            let inv = self.processes[idx]
                .remaining
                .pop_front()
                .expect("enabled non-running process must have workload");
            let position = self.history.len();
            self.history.push_invoke(p, self.object_id, inv.clone());
            if self.fp_live {
                let body = event_body(self.history.events().last().expect("just pushed"));
                self.fp.push_event(n, position, idx, body);
            }
            self.processes[idx].logic.begin(inv);
            self.processes[idx].running = true;
            self.processes[idx].last_response = None;
        }
        let prev = self.processes[idx].last_response.take();
        let outcome = match self.processes[idx].logic.step(prev) {
            TaskStep::Access { object, invocation } => {
                let response = self.base[object].invoke(p, &invocation);
                if self.fp_live {
                    let raw = zobrist::hash_debug(&self.base[object]);
                    self.fp.set_obj(object, raw);
                }
                self.processes[idx].last_response = Some(response);
                StepOutcome::Progressed
            }
            TaskStep::Complete(value) => {
                let position = self.history.len();
                self.history.push_respond(p, self.object_id, value.clone());
                if self.fp_live {
                    let body = event_body(self.history.events().last().expect("just pushed"));
                    self.fp.push_event(n, position, idx, body);
                }
                self.processes[idx].running = false;
                self.processes[idx].completed += 1;
                StepOutcome::Completed(value)
            }
        };
        self.refresh_proc_fingerprint(idx);
        outcome
    }

    /// Runs process `p` alone until it completes its current operation (or
    /// its next one, if it is idle but has workload), up to `max_steps`
    /// steps.  Returns the response if the operation completed.
    ///
    /// This is the "run solo" primitive used throughout the paper's proofs
    /// (obstruction-freedom, the idle configuration of Proposition 18).
    pub fn run_solo_until_complete(&mut self, p: ProcessId, max_steps: usize) -> Option<Value> {
        for _ in 0..max_steps {
            match self.step(p) {
                StepOutcome::Completed(v) => return Some(v),
                StepOutcome::Progressed => continue,
                StepOutcome::Idle => return None,
            }
        }
        None
    }

    /// Lets every process run solo (in process order) until it finishes its
    /// in-progress operation, producing an *idle* configuration in the sense
    /// of Proposition 18.  Returns `false` if some process failed to finish
    /// within `max_steps_per_process`.
    pub fn quiesce_pending(&mut self, max_steps_per_process: usize) -> bool {
        for i in 0..self.processes.len() {
            let p = ProcessId(i);
            if self.is_running(p) {
                let mut finished = false;
                for _ in 0..max_steps_per_process {
                    match self.step(p) {
                        StepOutcome::Completed(_) => {
                            finished = true;
                            break;
                        }
                        StepOutcome::Progressed => continue,
                        StepOutcome::Idle => break,
                    }
                }
                if !finished {
                    return false;
                }
            }
        }
        true
    }

    /// The remaining transient-fault budget (see [`crate::fault`]).
    #[inline]
    pub fn fault_budget(&self) -> usize {
        self.fault_budget
    }

    /// Sets the transient-fault budget: at most `k` faults along any schedule
    /// continuing from this configuration.  The engine sets this on the root
    /// from [`crate::engine::EngineOptions::fault_budget`].
    pub fn set_fault_budget(&mut self, k: usize) {
        self.fault_budget = k;
    }

    /// Enumerates every fault injectable at this configuration, in
    /// deterministic order (objects by index, then processes by index, each
    /// by corruption variant).  Does nothing when the budget is exhausted —
    /// in particular, budget 0 (the default) costs one branch.
    pub fn for_each_fault(&self, mut f: impl FnMut(FaultStep)) {
        if self.fault_budget == 0 {
            return;
        }
        for (i, b) in self.base.iter().enumerate() {
            for variant in 0..b.corruption_count() {
                f(FaultStep {
                    target: FaultTarget::Object(i),
                    variant,
                });
            }
        }
        for (i, p) in self.processes.iter().enumerate() {
            for variant in 0..p.logic.corruption_count() {
                f(FaultStep {
                    target: FaultTarget::Process(i),
                    variant,
                });
            }
        }
    }

    /// Applies one transient fault: spends one budget unit and corrupts the
    /// target component, maintaining the incremental fingerprint exactly and
    /// invalidating the step-shape memo.  No history event is recorded —
    /// faults are environmental, not operations.  Returns `false` (and does
    /// nothing) when the budget is exhausted.
    pub fn apply_fault(&mut self, fault: &FaultStep) -> bool {
        if self.fault_budget == 0 {
            return false;
        }
        self.fault_budget -= 1;
        match fault.target {
            FaultTarget::Object(i) => {
                self.base[i].corrupt(fault.variant);
                if self.fp_live {
                    let raw = zobrist::hash_debug(&self.base[i]);
                    self.fp.set_obj(i, raw);
                }
            }
            FaultTarget::Process(i) => {
                self.processes[i].logic.corrupt(fault.variant);
                self.refresh_proc_fingerprint(i);
            }
        }
        self.shape_memo.clear();
        debug_assert!(
            self.fingerprint_consistent(),
            "fault mutation drifted the incremental fingerprint"
        );
        true
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("steps", &self.steps)
            .field("base", &self.base)
            .field("completed", &self.total_completed())
            .field("history_len", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use evlin_spec::{FetchIncrement, Invocation};
    use std::sync::Arc;

    fn fi_local(processes: usize) -> LocalSpecImplementation {
        LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), processes)
    }

    #[test]
    fn initial_configuration_is_idle_when_workload_empty() {
        let imp = fi_local(2);
        let w = Workload::new(vec![Vec::new(), Vec::new()]);
        let mut c = Config::initial(&imp, &w);
        assert!(c.is_quiescent());
        assert_eq!(c.step(ProcessId(0)), StepOutcome::Idle);
        assert_eq!(c.steps(), 0);
        assert!(c.enabled_processes().is_empty());
    }

    #[test]
    fn stepping_runs_operations_and_records_history() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
        let mut c = Config::initial(&imp, &w);
        assert!(!c.is_quiescent());
        assert_eq!(c.enabled_processes().len(), 2);
        // The local-copy implementation completes each operation in one step.
        assert_eq!(
            c.step(ProcessId(0)),
            StepOutcome::Completed(Value::from(0i64))
        );
        assert_eq!(
            c.step(ProcessId(1)),
            StepOutcome::Completed(Value::from(0i64))
        );
        assert_eq!(
            c.step(ProcessId(0)),
            StepOutcome::Completed(Value::from(1i64))
        );
        assert_eq!(
            c.step(ProcessId(1)),
            StepOutcome::Completed(Value::from(1i64))
        );
        assert!(c.is_quiescent());
        assert_eq!(c.total_completed(), 4);
        assert_eq!(c.completed(ProcessId(0)), 2);
        let h = c.history();
        assert_eq!(h.len(), 8);
        assert!(h.is_well_formed());
    }

    #[test]
    fn run_solo_and_push_operation() {
        let imp = fi_local(1);
        let w = Workload::new(vec![Vec::new()]);
        let mut c = Config::initial(&imp, &w);
        assert_eq!(c.run_solo_until_complete(ProcessId(0), 10), None);
        c.push_operation(ProcessId(0), FetchIncrement::fetch_inc());
        assert_eq!(
            c.run_solo_until_complete(ProcessId(0), 10),
            Some(Value::from(0i64))
        );
    }

    #[test]
    fn quiesce_pending_completes_in_progress_operations() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let mut c = Config::initial(&imp, &w);
        // Nothing is mid-flight, so quiescing just reports success without
        // forcing the workload to run.
        assert!(c.quiesce_pending(10));
        assert!(!c.is_quiescent()); // workload not yet started
        c.step(ProcessId(0));
        c.step(ProcessId(1));
        assert!(c.is_quiescent());
    }

    #[test]
    fn cloning_forks_the_execution() {
        let imp = fi_local(1);
        let w = Workload::uniform(1, FetchIncrement::fetch_inc(), 2);
        let mut a = Config::initial(&imp, &w);
        a.step(ProcessId(0));
        let mut b = a.clone();
        a.step(ProcessId(0));
        assert_eq!(a.total_completed(), 2);
        assert_eq!(b.total_completed(), 1);
        b.step(ProcessId(0));
        assert_eq!(b.total_completed(), 2);
        assert_eq!(a.history().len(), 4);
    }

    #[test]
    fn permuted_fingerprint_matches_physical_permutation() {
        let imp = fi_local(2);
        // Asymmetric workload, so renaming the processes genuinely changes
        // the configuration.
        let w = Workload::new(vec![
            vec![FetchIncrement::fetch_inc(); 2],
            vec![FetchIncrement::fetch_inc()],
        ]);
        let mut c = Config::initial(&imp, &w);
        c.step(ProcessId(0));
        let perm = [1usize, 0];
        let expected = c.fingerprint_permuted(&perm);
        assert_ne!(expected, c.fingerprint());
        let mut renamed = c.clone();
        renamed.apply_permutation(&perm);
        assert_eq!(renamed.fingerprint(), expected);
        // The identity permutation is a no-op.
        assert_eq!(c.fingerprint_permuted(&[0, 1]), c.fingerprint());
    }

    #[test]
    fn structural_symmetry_detection() {
        let imp = fi_local(2);
        let uniform = Config::initial(&imp, &Workload::uniform(2, FetchIncrement::fetch_inc(), 2));
        assert!(uniform.processes_structurally_symmetric());
        assert!(uniform.base_objects_permutable()); // vacuously: no base objects
        let skewed = Config::initial(
            &imp,
            &Workload::new(vec![vec![FetchIncrement::fetch_inc()], Vec::new()]),
        );
        assert!(!skewed.processes_structurally_symmetric());
        let solo = Config::initial(
            &fi_local(1),
            &Workload::uniform(1, FetchIncrement::fetch_inc(), 1),
        );
        assert!(!solo.processes_structurally_symmetric());
    }

    #[test]
    fn peek_step_shape_classifies_starts_and_idles() {
        let imp = fi_local(2);
        let w = Workload::new(vec![vec![FetchIncrement::fetch_inc()], Vec::new()]);
        let c = Config::initial(&imp, &w);
        assert_eq!(c.peek_step_shape(ProcessId(0)), Some(StepShape::Start));
        assert_eq!(c.peek_step_shape(ProcessId(1)), None);
        // Peeking takes no step and records nothing.
        assert_eq!(c.steps(), 0);
        assert!(c.history().is_empty());
    }

    #[test]
    #[should_panic(expected = "workload has")]
    fn workload_larger_than_implementation_panics() {
        let imp = fi_local(1);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let _ = Config::initial(&imp, &w);
    }

    /// A one-shot programme over a cas base object: one dummy register read,
    /// then `cas(0 → 1)`, then complete — the pending cas is exactly the step
    /// whose *writes* classification flips when a fault corrupts the target.
    #[derive(Debug, Clone)]
    struct CasOnce;

    #[derive(Debug, Clone)]
    struct CasOnceLogic {
        at: usize,
    }

    impl Implementation for CasOnce {
        fn name(&self) -> String {
            "cas once".into()
        }
        fn processes(&self) -> usize {
            1
        }
        fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
            vec![
                crate::base::objects::cas(Value::from(0i64)),
                crate::base::objects::register(Value::from(0i64)),
            ]
        }
        fn new_process(&self, _p: ProcessId) -> Box<dyn ProcessLogic> {
            Box::new(CasOnceLogic { at: 0 })
        }
    }

    impl ProcessLogic for CasOnceLogic {
        fn begin(&mut self, _invocation: evlin_spec::Invocation) {
            self.at = 0;
        }
        fn step(&mut self, _previous: Option<Value>) -> TaskStep {
            self.at += 1;
            match self.at {
                1 => TaskStep::Access {
                    object: 1,
                    invocation: evlin_spec::Register::read(),
                },
                2 => TaskStep::Access {
                    object: 0,
                    invocation: evlin_spec::CompareAndSwap::cas(
                        Value::from(0i64),
                        Value::from(1i64),
                    ),
                },
                _ => TaskStep::Complete(Value::Unit),
            }
        }
        fn clone_box(&self) -> Box<dyn ProcessLogic> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn fault_application_spends_budget_and_keeps_fingerprint() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let mut c = Config::initial(&imp, &w);
        c.set_fingerprint_tracking(true, false);
        c.set_fault_budget(2);
        let mut faults = Vec::new();
        c.for_each_fault(|f| faults.push(f));
        // Each local-copy programme state offers at least one corruption.
        assert!(faults.len() >= 2, "expected process faults, got {faults:?}");
        let before = c.fingerprint();
        assert!(c.apply_fault(&faults[0]));
        assert_eq!(c.fault_budget(), 1);
        assert_ne!(c.fingerprint(), before, "corruption must change the state");
        assert!(c.fingerprint_consistent());
        // Faults record no history events and advance no step counter.
        assert!(c.history().is_empty());
        assert_eq!(c.steps(), 0);
        assert!(c.apply_fault(&faults[0]));
        assert_eq!(c.fault_budget(), 0);
        // Budget exhausted: enumeration is empty and application refuses.
        let mut rest = Vec::new();
        c.for_each_fault(|f| rest.push(f));
        assert!(rest.is_empty());
        assert!(!c.apply_fault(&faults[0]));
    }

    #[test]
    fn fault_invalidates_stale_step_shape_memo() {
        let imp = CasOnce;
        let w = Workload::uniform(1, Invocation::nullary("op"), 1);
        let mut c = Config::initial(&imp, &w);
        let p = ProcessId(0);
        // Start the operation and take the dummy read: the pending step is
        // now `cas(0 → 1)` against a cas object holding 0.
        assert_eq!(c.step(p), StepOutcome::Progressed);
        assert_eq!(
            c.step_shape_memoized(p),
            Some(StepShape::Access {
                object: 0,
                writes: true
            })
        );
        // Memo hit: same answer without recomputation.
        assert_eq!(
            c.step_shape_memoized(p),
            Some(StepShape::Access {
                object: 0,
                writes: true
            })
        );
        // Corrupt the cas object (its only corruption state is 1): the
        // pending cas now fails, so the step no longer writes.  A stale memo
        // would keep reporting `writes: true`.
        c.set_fault_budget(1);
        let mut faults = Vec::new();
        c.for_each_fault(|f| faults.push(f));
        let on_cas: Vec<_> = faults
            .iter()
            .filter(|f| f.target == crate::fault::FaultTarget::Object(0))
            .collect();
        assert_eq!(on_cas.len(), 1, "cas(0) has exactly one corruption");
        assert!(c.apply_fault(on_cas[0]));
        assert_eq!(
            c.step_shape_memoized(p),
            Some(StepShape::Access {
                object: 0,
                writes: false
            })
        );
        // And `peek_step_shape` (the pure variant) agrees.
        assert_eq!(
            c.peek_step_shape(p),
            Some(StepShape::Access {
                object: 0,
                writes: false
            })
        );
    }
}
