//! Configurations of the simulated system.
//!
//! A configuration bundles the state of every shared base object, the
//! programme state of every process, each process's remaining workload, and
//! the high-level history recorded so far.  Configurations are cheap to clone
//! (everything is an owned value), which is what the execution-tree explorer,
//! the valency analysis and the stable-configuration search rely on.

use crate::base::{BaseObject, PidDependence};
use crate::program::{Implementation, ProcessLogic, TaskStep};
use crate::workload::Workload;
use evlin_history::{History, ObjectId, ProcessId};
use evlin_spec::Value;
use std::collections::VecDeque;
use std::fmt;

/// What happened when a process was given one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process performed an internal or base-object step of its current
    /// operation; the operation is still running.
    Progressed,
    /// The process completed its current high-level operation with the given
    /// response.
    Completed(Value),
    /// The process has no operation to run (its workload is exhausted).
    Idle,
}

/// The *shape* of the next atomic step of a process, as seen by the
/// step-independence oracle of [`crate::engine`]: whether the step records a
/// history event and, for mid-operation base-object accesses, which object
/// it touches and whether it changes that object's state.
///
/// Two steps *commute* (executing them in either order reaches the same
/// configuration) iff both are [`StepShape::Access`]es to disjoint base
/// objects, or to the same object with neither writing.  Operation starts and
/// completions append to the recorded history, whose event order is part of
/// the configuration, so they never commute with anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepShape {
    /// The step starts a new high-level operation (records an invocation
    /// event).
    Start,
    /// A mid-operation access to a base object (records nothing).
    Access {
        /// Index of the base object the step accesses.
        object: usize,
        /// Whether the access changes the object's state (observed on its
        /// `Debug` rendering, which for the state machines in this workspace
        /// prints every field).
        writes: bool,
    },
    /// The step completes the current operation (records a response event).
    Complete,
}

#[derive(Clone, Debug)]
struct ProcessState {
    logic: Box<dyn ProcessLogic>,
    /// Remaining high-level operations to perform.
    remaining: VecDeque<evlin_spec::Invocation>,
    /// Whether an operation is currently being executed, and the response of
    /// the last base-object access to feed into the next step.
    running: bool,
    last_response: Option<Value>,
    completed: usize,
}

/// A configuration of the simulated system.
#[derive(Clone)]
pub struct Config {
    base: Vec<Box<dyn BaseObject>>,
    processes: Vec<ProcessState>,
    history: History,
    steps: usize,
    /// The single high-level object id used in the recorded history.
    object_id: ObjectId,
}

impl Config {
    /// Builds the initial configuration of `implementation` running
    /// `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the workload has more processes than the implementation was
    /// instantiated for.
    pub fn initial(implementation: &dyn Implementation, workload: &Workload) -> Self {
        assert!(
            workload.processes() <= implementation.processes(),
            "workload has {} processes but the implementation supports {}",
            workload.processes(),
            implementation.processes()
        );
        let base = implementation.initial_base_objects();
        let processes = (0..workload.processes())
            .map(|i| ProcessState {
                logic: implementation.new_process(ProcessId(i)),
                remaining: workload.operations(i).iter().cloned().collect(),
                running: false,
                last_response: None,
                completed: 0,
            })
            .collect();
        Config {
            base,
            processes,
            history: History::new(),
            steps: 0,
            object_id: ObjectId(0),
        }
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.processes.len()
    }

    /// The high-level history recorded so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Total number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of high-level operations completed by process `p`.
    pub fn completed(&self, p: ProcessId) -> usize {
        self.processes[p.index()].completed
    }

    /// Number of high-level operations completed by all processes.
    pub fn total_completed(&self) -> usize {
        self.processes.iter().map(|p| p.completed).sum()
    }

    /// Whether process `p` currently has an operation in progress.
    pub fn is_running(&self, p: ProcessId) -> bool {
        self.processes[p.index()].running
    }

    /// Whether process `p` can take a step (it has an operation in progress
    /// or more workload to start).
    pub fn is_enabled(&self, p: ProcessId) -> bool {
        let st = &self.processes[p.index()];
        st.running || !st.remaining.is_empty()
    }

    /// Whether every process has exhausted its workload and has no operation
    /// in progress.
    pub fn is_quiescent(&self) -> bool {
        self.processes
            .iter()
            .all(|p| !p.running && p.remaining.is_empty())
    }

    /// The processes that can currently take a step.
    pub fn enabled_processes(&self) -> Vec<ProcessId> {
        (0..self.processes.len())
            .map(ProcessId)
            .filter(|&p| self.is_enabled(p))
            .collect()
    }

    /// Appends an extra high-level operation to process `p`'s workload.
    pub fn push_operation(&mut self, p: ProcessId, invocation: evlin_spec::Invocation) {
        self.processes[p.index()].remaining.push_back(invocation);
    }

    /// The current states of the base objects (used by the Proposition 18
    /// freezing machinery and by diagnostics).
    pub fn base_states(&self) -> Vec<Value> {
        self.base.iter().map(|b| b.state_value()).collect()
    }

    /// Clones the base objects (used to freeze a configuration into a new
    /// implementation).
    pub fn clone_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        self.base.clone()
    }

    /// Clones process `p`'s programme state (used to freeze a configuration).
    pub fn clone_process_logic(&self, p: ProcessId) -> Box<dyn ProcessLogic> {
        self.processes[p.index()].logic.clone()
    }

    /// A structural fingerprint of the configuration, used by deduplicating
    /// exploration ([`crate::explorer::explore_par`]).
    ///
    /// Two configurations with equal fingerprints have (with overwhelming
    /// probability) identical base-object states, programme states, remaining
    /// workloads, in-flight responses *and recorded histories*.  Keeping the
    /// history in the key means only interleavings that differ in unrecorded
    /// internal base-object steps ever merge — a deliberate choice so that
    /// visitors which collect histories stay exact under deduplication.  The
    /// step counter is excluded: configurations agreeing on everything else
    /// have necessarily taken the same number of (non-idle) steps, so hashing
    /// it would add nothing.  Programme and base-object states are folded in
    /// through their `Debug` representations, which for the state-machine
    /// structs in this workspace print every field.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_with(None)
    }

    /// The fingerprint of the configuration *as if* its processes had been
    /// renamed by `perm` (process `i` becomes `perm[i]`), without mutating
    /// anything.
    ///
    /// This is what the symmetry reduction minimizes over all permutations to
    /// pick a canonical representative; it must agree with
    /// [`Config::fingerprint`] after [`Config::apply_permutation`] with the
    /// same permutation.  Sound only when process programmes do not embed
    /// their own identity and every base object declares its process-id
    /// dependence (see [`crate::engine::SymmetryReduction`]).
    pub fn fingerprint_permuted(&self, perm: &[usize]) -> u64 {
        self.fingerprint_with(Some(perm))
    }

    fn fingerprint_with(&self, perm: Option<&[usize]>) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        /// Streams `Debug` output straight into a hasher, so fingerprinting
        /// allocates no intermediate strings (it runs once per explored
        /// configuration on the dedup hot path).
        struct HashWriter<'a, H: Hasher>(&'a mut H);

        impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }

        use fmt::Write as _;
        let mut hasher = DefaultHasher::new();
        for b in &self.base {
            match perm {
                Some(map) if b.pid_dependence() == PidDependence::Permutable => {
                    let mut renamed = b.clone();
                    renamed.permute_processes(map);
                    write!(HashWriter(&mut hasher), "{renamed:?}").expect("hashing cannot fail");
                }
                _ => write!(HashWriter(&mut hasher), "{b:?}").expect("hashing cannot fail"),
            }
        }
        let mut hash_process = |p: &ProcessState| {
            write!(HashWriter(&mut hasher), "{:?}", p.logic).expect("hashing cannot fail");
            p.running.hash(&mut hasher);
            p.last_response.hash(&mut hasher);
            p.completed.hash(&mut hasher);
            p.remaining.hash(&mut hasher);
        };
        match perm {
            None => {
                for p in &self.processes {
                    hash_process(p);
                }
            }
            Some(map) => {
                // Position `j` of the renamed configuration holds the state
                // of the (unique) process that `map` sends to `j`.
                let mut inverse = vec![0usize; map.len()];
                for (old, &new) in map.iter().enumerate() {
                    inverse[new] = old;
                }
                for &old in &inverse {
                    hash_process(&self.processes[old]);
                }
            }
        }
        for e in self.history.events() {
            match perm {
                None => e.process.hash(&mut hasher),
                Some(map) => ProcessId(map[e.process.index()]).hash(&mut hasher),
            }
            e.object.hash(&mut hasher);
            e.kind.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// Picks the permutation (an index into `perms`) whose renaming of this
    /// configuration has the least canonical key — the argmin the symmetry
    /// reduction rewrites configurations with.  Renamings of one another
    /// select the same representative (up to hash collision), because the
    /// key is a function of the renamed configuration alone.
    ///
    /// Unlike [`Config::fingerprint_permuted`], which re-serializes the
    /// whole configuration per permutation, this precomputes one hash per
    /// process state and per history event and folds them per candidate, so
    /// the `n!` candidates cost `O(n + |history|)` word mixes each — this
    /// runs once per configuration visited under symmetry reduction.
    pub fn canonical_permutation(&self, perms: &[Vec<usize>]) -> usize {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        struct HashWriter<'a, H: Hasher>(&'a mut H);
        impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }
        use fmt::Write as _;

        let process_hash: Vec<u64> = self
            .processes
            .iter()
            .map(|p| {
                let mut h = DefaultHasher::new();
                write!(HashWriter(&mut h), "{:?}", p.logic).expect("hashing cannot fail");
                p.running.hash(&mut h);
                p.last_response.hash(&mut h);
                p.completed.hash(&mut h);
                p.remaining.hash(&mut h);
                h.finish()
            })
            .collect();
        let event_body: Vec<(usize, u64)> = self
            .history
            .events()
            .iter()
            .map(|e| {
                let mut h = DefaultHasher::new();
                e.object.hash(&mut h);
                e.kind.hash(&mut h);
                (e.process.index(), h.finish())
            })
            .collect();
        // Pid-independent base objects hash identically under every
        // renaming, so only permutable ones participate in the argmin.
        let permutable: Vec<usize> = (0..self.base.len())
            .filter(|&i| self.base[i].pid_dependence() == PidDependence::Permutable)
            .collect();

        let n = self.processes.len();
        let mut inverse = vec![0usize; n];
        let mut best = 0usize;
        let mut best_key = u64::MAX;
        for (i, perm) in perms.iter().enumerate() {
            let mut h = DefaultHasher::new();
            for &obj in &permutable {
                let mut renamed = self.base[obj].clone();
                renamed.permute_processes(perm);
                write!(HashWriter(&mut h), "{renamed:?}").expect("hashing cannot fail");
            }
            for (old, &new) in perm.iter().enumerate() {
                inverse[new] = old;
            }
            for &old in &inverse {
                process_hash[old].hash(&mut h);
            }
            for &(p, body) in &event_body {
                perm[p].hash(&mut h);
                body.hash(&mut h);
            }
            let key = h.finish();
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Physically renames the processes: process `i` becomes `perm[i]`,
    /// permuting the per-process states, renaming every process id recorded
    /// by pid-dependent base objects, and renaming the history's events.
    ///
    /// Used by the symmetry reduction to rewrite a configuration into its
    /// canonical representative.  Sound only under the conditions checked by
    /// [`crate::engine::SymmetryReduction::detect`].
    pub fn apply_permutation(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.processes.len(), "permutation arity");
        let old = std::mem::take(&mut self.processes);
        let mut slots: Vec<Option<ProcessState>> = (0..old.len()).map(|_| None).collect();
        for (i, state) in old.into_iter().enumerate() {
            slots[perm[i]] = Some(state);
        }
        self.processes = slots
            .into_iter()
            .map(|s| s.expect("perm must be a bijection"))
            .collect();
        for b in &mut self.base {
            if b.pid_dependence() == PidDependence::Permutable {
                b.permute_processes(perm);
            }
        }
        let map: Vec<ProcessId> = perm.iter().map(|&i| ProcessId(i)).collect();
        self.history.rename_processes(&map);
    }

    /// Whether every per-process state is structurally identical: same
    /// programme state (by `Debug`), same progress flags and same remaining
    /// workload.  On the initial configuration of a uniform workload this is
    /// the structural evidence that the implementation is process-symmetric
    /// (programmes that embed their own id print differently).
    pub fn processes_structurally_symmetric(&self) -> bool {
        if self.processes.len() < 2 {
            return false;
        }
        let sig = |p: &ProcessState| {
            (
                format!("{:?}", p.logic),
                p.running,
                p.completed,
                p.last_response.clone(),
            )
        };
        let first = sig(&self.processes[0]);
        self.processes
            .iter()
            .skip(1)
            .all(|p| sig(p) == first && p.remaining == self.processes[0].remaining)
    }

    /// Whether every base object declares how its state depends on process
    /// ids (no [`PidDependence::Opaque`] object) — a precondition for
    /// symmetry canonicalization.
    pub fn base_objects_permutable(&self) -> bool {
        self.base
            .iter()
            .all(|b| b.pid_dependence() != PidDependence::Opaque)
    }

    /// The shape of the next atomic step process `p` would take, without
    /// taking it — the step-independence oracle behind the sleep-set
    /// reduction of [`crate::engine`].  Returns `None` if `p` is not enabled.
    ///
    /// Determining whether a base-object access *writes* costs one clone of
    /// the target object plus a probe invocation; operation starts and
    /// completions are classified from the programme state alone.
    pub fn peek_step_shape(&self, p: ProcessId) -> Option<StepShape> {
        let state = &self.processes[p.index()];
        if !state.running {
            return if state.remaining.is_empty() {
                None
            } else {
                Some(StepShape::Start)
            };
        }
        let mut logic = state.logic.clone();
        match logic.step(state.last_response.clone()) {
            TaskStep::Access { object, invocation } => {
                let mut probe = self.base[object].clone();
                let before = format!("{probe:?}");
                let _ = probe.invoke(p, &invocation);
                let writes = format!("{probe:?}") != before;
                Some(StepShape::Access { object, writes })
            }
            TaskStep::Complete(_) => Some(StepShape::Complete),
        }
    }

    /// Gives one atomic step to process `p`.
    ///
    /// If `p` has no operation in progress and workload remains, the next
    /// operation is started (its invocation event is recorded) and its first
    /// programme step is executed; otherwise the programme of the operation
    /// in progress advances by one step.  A step is either one base-object
    /// access or the completion of the operation (whose response event is
    /// recorded).
    pub fn step(&mut self, p: ProcessId) -> StepOutcome {
        let idx = p.index();
        if !self.is_enabled(p) {
            return StepOutcome::Idle;
        }
        self.steps += 1;
        if !self.processes[idx].running {
            let inv = self.processes[idx]
                .remaining
                .pop_front()
                .expect("enabled non-running process must have workload");
            self.history.push_invoke(p, self.object_id, inv.clone());
            self.processes[idx].logic.begin(inv);
            self.processes[idx].running = true;
            self.processes[idx].last_response = None;
        }
        let prev = self.processes[idx].last_response.take();
        match self.processes[idx].logic.step(prev) {
            TaskStep::Access { object, invocation } => {
                let response = self.base[object].invoke(p, &invocation);
                self.processes[idx].last_response = Some(response);
                StepOutcome::Progressed
            }
            TaskStep::Complete(value) => {
                self.history.push_respond(p, self.object_id, value.clone());
                self.processes[idx].running = false;
                self.processes[idx].completed += 1;
                StepOutcome::Completed(value)
            }
        }
    }

    /// Runs process `p` alone until it completes its current operation (or
    /// its next one, if it is idle but has workload), up to `max_steps`
    /// steps.  Returns the response if the operation completed.
    ///
    /// This is the "run solo" primitive used throughout the paper's proofs
    /// (obstruction-freedom, the idle configuration of Proposition 18).
    pub fn run_solo_until_complete(&mut self, p: ProcessId, max_steps: usize) -> Option<Value> {
        for _ in 0..max_steps {
            match self.step(p) {
                StepOutcome::Completed(v) => return Some(v),
                StepOutcome::Progressed => continue,
                StepOutcome::Idle => return None,
            }
        }
        None
    }

    /// Lets every process run solo (in process order) until it finishes its
    /// in-progress operation, producing an *idle* configuration in the sense
    /// of Proposition 18.  Returns `false` if some process failed to finish
    /// within `max_steps_per_process`.
    pub fn quiesce_pending(&mut self, max_steps_per_process: usize) -> bool {
        for i in 0..self.processes.len() {
            let p = ProcessId(i);
            if self.is_running(p) {
                let mut finished = false;
                for _ in 0..max_steps_per_process {
                    match self.step(p) {
                        StepOutcome::Completed(_) => {
                            finished = true;
                            break;
                        }
                        StepOutcome::Progressed => continue,
                        StepOutcome::Idle => break,
                    }
                }
                if !finished {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("steps", &self.steps)
            .field("base", &self.base)
            .field("completed", &self.total_completed())
            .field("history_len", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    fn fi_local(processes: usize) -> LocalSpecImplementation {
        LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), processes)
    }

    #[test]
    fn initial_configuration_is_idle_when_workload_empty() {
        let imp = fi_local(2);
        let w = Workload::new(vec![Vec::new(), Vec::new()]);
        let mut c = Config::initial(&imp, &w);
        assert!(c.is_quiescent());
        assert_eq!(c.step(ProcessId(0)), StepOutcome::Idle);
        assert_eq!(c.steps(), 0);
        assert!(c.enabled_processes().is_empty());
    }

    #[test]
    fn stepping_runs_operations_and_records_history() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
        let mut c = Config::initial(&imp, &w);
        assert!(!c.is_quiescent());
        assert_eq!(c.enabled_processes().len(), 2);
        // The local-copy implementation completes each operation in one step.
        assert_eq!(
            c.step(ProcessId(0)),
            StepOutcome::Completed(Value::from(0i64))
        );
        assert_eq!(
            c.step(ProcessId(1)),
            StepOutcome::Completed(Value::from(0i64))
        );
        assert_eq!(
            c.step(ProcessId(0)),
            StepOutcome::Completed(Value::from(1i64))
        );
        assert_eq!(
            c.step(ProcessId(1)),
            StepOutcome::Completed(Value::from(1i64))
        );
        assert!(c.is_quiescent());
        assert_eq!(c.total_completed(), 4);
        assert_eq!(c.completed(ProcessId(0)), 2);
        let h = c.history();
        assert_eq!(h.len(), 8);
        assert!(h.is_well_formed());
    }

    #[test]
    fn run_solo_and_push_operation() {
        let imp = fi_local(1);
        let w = Workload::new(vec![Vec::new()]);
        let mut c = Config::initial(&imp, &w);
        assert_eq!(c.run_solo_until_complete(ProcessId(0), 10), None);
        c.push_operation(ProcessId(0), FetchIncrement::fetch_inc());
        assert_eq!(
            c.run_solo_until_complete(ProcessId(0), 10),
            Some(Value::from(0i64))
        );
    }

    #[test]
    fn quiesce_pending_completes_in_progress_operations() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let mut c = Config::initial(&imp, &w);
        // Nothing is mid-flight, so quiescing just reports success without
        // forcing the workload to run.
        assert!(c.quiesce_pending(10));
        assert!(!c.is_quiescent()); // workload not yet started
        c.step(ProcessId(0));
        c.step(ProcessId(1));
        assert!(c.is_quiescent());
    }

    #[test]
    fn cloning_forks_the_execution() {
        let imp = fi_local(1);
        let w = Workload::uniform(1, FetchIncrement::fetch_inc(), 2);
        let mut a = Config::initial(&imp, &w);
        a.step(ProcessId(0));
        let mut b = a.clone();
        a.step(ProcessId(0));
        assert_eq!(a.total_completed(), 2);
        assert_eq!(b.total_completed(), 1);
        b.step(ProcessId(0));
        assert_eq!(b.total_completed(), 2);
        assert_eq!(a.history().len(), 4);
    }

    #[test]
    fn permuted_fingerprint_matches_physical_permutation() {
        let imp = fi_local(2);
        // Asymmetric workload, so renaming the processes genuinely changes
        // the configuration.
        let w = Workload::new(vec![
            vec![FetchIncrement::fetch_inc(); 2],
            vec![FetchIncrement::fetch_inc()],
        ]);
        let mut c = Config::initial(&imp, &w);
        c.step(ProcessId(0));
        let perm = [1usize, 0];
        let expected = c.fingerprint_permuted(&perm);
        assert_ne!(expected, c.fingerprint());
        let mut renamed = c.clone();
        renamed.apply_permutation(&perm);
        assert_eq!(renamed.fingerprint(), expected);
        // The identity permutation is a no-op.
        assert_eq!(c.fingerprint_permuted(&[0, 1]), c.fingerprint());
    }

    #[test]
    fn structural_symmetry_detection() {
        let imp = fi_local(2);
        let uniform = Config::initial(&imp, &Workload::uniform(2, FetchIncrement::fetch_inc(), 2));
        assert!(uniform.processes_structurally_symmetric());
        assert!(uniform.base_objects_permutable()); // vacuously: no base objects
        let skewed = Config::initial(
            &imp,
            &Workload::new(vec![vec![FetchIncrement::fetch_inc()], Vec::new()]),
        );
        assert!(!skewed.processes_structurally_symmetric());
        let solo = Config::initial(
            &fi_local(1),
            &Workload::uniform(1, FetchIncrement::fetch_inc(), 1),
        );
        assert!(!solo.processes_structurally_symmetric());
    }

    #[test]
    fn peek_step_shape_classifies_starts_and_idles() {
        let imp = fi_local(2);
        let w = Workload::new(vec![vec![FetchIncrement::fetch_inc()], Vec::new()]);
        let c = Config::initial(&imp, &w);
        assert_eq!(c.peek_step_shape(ProcessId(0)), Some(StepShape::Start));
        assert_eq!(c.peek_step_shape(ProcessId(1)), None);
        // Peeking takes no step and records nothing.
        assert_eq!(c.steps(), 0);
        assert!(c.history().is_empty());
    }

    #[test]
    #[should_panic(expected = "workload has")]
    fn workload_larger_than_implementation_panics() {
        let imp = fi_local(1);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let _ = Config::initial(&imp, &w);
    }
}
