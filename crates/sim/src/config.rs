//! Configurations of the simulated system.
//!
//! A configuration bundles the state of every shared base object, the
//! programme state of every process, each process's remaining workload, and
//! the high-level history recorded so far.  Configurations are cheap to clone
//! (everything is an owned value), which is what the execution-tree explorer,
//! the valency analysis and the stable-configuration search rely on.

use crate::base::BaseObject;
use crate::program::{Implementation, ProcessLogic, TaskStep};
use crate::workload::Workload;
use evlin_history::{History, ObjectId, ProcessId};
use evlin_spec::Value;
use std::collections::VecDeque;
use std::fmt;

/// What happened when a process was given one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process performed an internal or base-object step of its current
    /// operation; the operation is still running.
    Progressed,
    /// The process completed its current high-level operation with the given
    /// response.
    Completed(Value),
    /// The process has no operation to run (its workload is exhausted).
    Idle,
}

#[derive(Clone, Debug)]
struct ProcessState {
    logic: Box<dyn ProcessLogic>,
    /// Remaining high-level operations to perform.
    remaining: VecDeque<evlin_spec::Invocation>,
    /// Whether an operation is currently being executed, and the response of
    /// the last base-object access to feed into the next step.
    running: bool,
    last_response: Option<Value>,
    completed: usize,
}

/// A configuration of the simulated system.
#[derive(Clone)]
pub struct Config {
    base: Vec<Box<dyn BaseObject>>,
    processes: Vec<ProcessState>,
    history: History,
    steps: usize,
    /// The single high-level object id used in the recorded history.
    object_id: ObjectId,
}

impl Config {
    /// Builds the initial configuration of `implementation` running
    /// `workload`.
    ///
    /// # Panics
    ///
    /// Panics if the workload has more processes than the implementation was
    /// instantiated for.
    pub fn initial(implementation: &dyn Implementation, workload: &Workload) -> Self {
        assert!(
            workload.processes() <= implementation.processes(),
            "workload has {} processes but the implementation supports {}",
            workload.processes(),
            implementation.processes()
        );
        let base = implementation.initial_base_objects();
        let processes = (0..workload.processes())
            .map(|i| ProcessState {
                logic: implementation.new_process(ProcessId(i)),
                remaining: workload.operations(i).iter().cloned().collect(),
                running: false,
                last_response: None,
                completed: 0,
            })
            .collect();
        Config {
            base,
            processes,
            history: History::new(),
            steps: 0,
            object_id: ObjectId(0),
        }
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.processes.len()
    }

    /// The high-level history recorded so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Total number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of high-level operations completed by process `p`.
    pub fn completed(&self, p: ProcessId) -> usize {
        self.processes[p.index()].completed
    }

    /// Number of high-level operations completed by all processes.
    pub fn total_completed(&self) -> usize {
        self.processes.iter().map(|p| p.completed).sum()
    }

    /// Whether process `p` currently has an operation in progress.
    pub fn is_running(&self, p: ProcessId) -> bool {
        self.processes[p.index()].running
    }

    /// Whether process `p` can take a step (it has an operation in progress
    /// or more workload to start).
    pub fn is_enabled(&self, p: ProcessId) -> bool {
        let st = &self.processes[p.index()];
        st.running || !st.remaining.is_empty()
    }

    /// Whether every process has exhausted its workload and has no operation
    /// in progress.
    pub fn is_quiescent(&self) -> bool {
        self.processes
            .iter()
            .all(|p| !p.running && p.remaining.is_empty())
    }

    /// The processes that can currently take a step.
    pub fn enabled_processes(&self) -> Vec<ProcessId> {
        (0..self.processes.len())
            .map(ProcessId)
            .filter(|&p| self.is_enabled(p))
            .collect()
    }

    /// Appends an extra high-level operation to process `p`'s workload.
    pub fn push_operation(&mut self, p: ProcessId, invocation: evlin_spec::Invocation) {
        self.processes[p.index()].remaining.push_back(invocation);
    }

    /// The current states of the base objects (used by the Proposition 18
    /// freezing machinery and by diagnostics).
    pub fn base_states(&self) -> Vec<Value> {
        self.base.iter().map(|b| b.state_value()).collect()
    }

    /// Clones the base objects (used to freeze a configuration into a new
    /// implementation).
    pub fn clone_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        self.base.clone()
    }

    /// Clones process `p`'s programme state (used to freeze a configuration).
    pub fn clone_process_logic(&self, p: ProcessId) -> Box<dyn ProcessLogic> {
        self.processes[p.index()].logic.clone()
    }

    /// A structural fingerprint of the configuration, used by deduplicating
    /// exploration ([`crate::explorer::explore_par`]).
    ///
    /// Two configurations with equal fingerprints have (with overwhelming
    /// probability) identical base-object states, programme states, remaining
    /// workloads, in-flight responses *and recorded histories*.  Keeping the
    /// history in the key means only interleavings that differ in unrecorded
    /// internal base-object steps ever merge — a deliberate choice so that
    /// visitors which collect histories stay exact under deduplication.  The
    /// step counter is excluded: configurations agreeing on everything else
    /// have necessarily taken the same number of (non-idle) steps, so hashing
    /// it would add nothing.  Programme and base-object states are folded in
    /// through their `Debug` representations, which for the state-machine
    /// structs in this workspace print every field.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        /// Streams `Debug` output straight into a hasher, so fingerprinting
        /// allocates no intermediate strings (it runs once per explored
        /// configuration on the dedup hot path).
        struct HashWriter<'a, H: Hasher>(&'a mut H);

        impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }

        use fmt::Write as _;
        let mut hasher = DefaultHasher::new();
        for b in &self.base {
            write!(HashWriter(&mut hasher), "{b:?}").expect("hashing cannot fail");
        }
        for p in &self.processes {
            write!(HashWriter(&mut hasher), "{:?}", p.logic).expect("hashing cannot fail");
            p.running.hash(&mut hasher);
            p.last_response.hash(&mut hasher);
            p.completed.hash(&mut hasher);
            p.remaining.hash(&mut hasher);
        }
        write!(HashWriter(&mut hasher), "{:?}", self.history).expect("hashing cannot fail");
        hasher.finish()
    }

    /// Gives one atomic step to process `p`.
    ///
    /// If `p` has no operation in progress and workload remains, the next
    /// operation is started (its invocation event is recorded) and its first
    /// programme step is executed; otherwise the programme of the operation
    /// in progress advances by one step.  A step is either one base-object
    /// access or the completion of the operation (whose response event is
    /// recorded).
    pub fn step(&mut self, p: ProcessId) -> StepOutcome {
        let idx = p.index();
        if !self.is_enabled(p) {
            return StepOutcome::Idle;
        }
        self.steps += 1;
        if !self.processes[idx].running {
            let inv = self.processes[idx]
                .remaining
                .pop_front()
                .expect("enabled non-running process must have workload");
            self.history.push_invoke(p, self.object_id, inv.clone());
            self.processes[idx].logic.begin(inv);
            self.processes[idx].running = true;
            self.processes[idx].last_response = None;
        }
        let prev = self.processes[idx].last_response.take();
        match self.processes[idx].logic.step(prev) {
            TaskStep::Access { object, invocation } => {
                let response = self.base[object].invoke(p, &invocation);
                self.processes[idx].last_response = Some(response);
                StepOutcome::Progressed
            }
            TaskStep::Complete(value) => {
                self.history.push_respond(p, self.object_id, value.clone());
                self.processes[idx].running = false;
                self.processes[idx].completed += 1;
                StepOutcome::Completed(value)
            }
        }
    }

    /// Runs process `p` alone until it completes its current operation (or
    /// its next one, if it is idle but has workload), up to `max_steps`
    /// steps.  Returns the response if the operation completed.
    ///
    /// This is the "run solo" primitive used throughout the paper's proofs
    /// (obstruction-freedom, the idle configuration of Proposition 18).
    pub fn run_solo_until_complete(&mut self, p: ProcessId, max_steps: usize) -> Option<Value> {
        for _ in 0..max_steps {
            match self.step(p) {
                StepOutcome::Completed(v) => return Some(v),
                StepOutcome::Progressed => continue,
                StepOutcome::Idle => return None,
            }
        }
        None
    }

    /// Lets every process run solo (in process order) until it finishes its
    /// in-progress operation, producing an *idle* configuration in the sense
    /// of Proposition 18.  Returns `false` if some process failed to finish
    /// within `max_steps_per_process`.
    pub fn quiesce_pending(&mut self, max_steps_per_process: usize) -> bool {
        for i in 0..self.processes.len() {
            let p = ProcessId(i);
            if self.is_running(p) {
                let mut finished = false;
                for _ in 0..max_steps_per_process {
                    match self.step(p) {
                        StepOutcome::Completed(_) => {
                            finished = true;
                            break;
                        }
                        StepOutcome::Progressed => continue,
                        StepOutcome::Idle => break,
                    }
                }
                if !finished {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("steps", &self.steps)
            .field("base", &self.base)
            .field("completed", &self.total_completed())
            .field("history_len", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    fn fi_local(processes: usize) -> LocalSpecImplementation {
        LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), processes)
    }

    #[test]
    fn initial_configuration_is_idle_when_workload_empty() {
        let imp = fi_local(2);
        let w = Workload::new(vec![Vec::new(), Vec::new()]);
        let mut c = Config::initial(&imp, &w);
        assert!(c.is_quiescent());
        assert_eq!(c.step(ProcessId(0)), StepOutcome::Idle);
        assert_eq!(c.steps(), 0);
        assert!(c.enabled_processes().is_empty());
    }

    #[test]
    fn stepping_runs_operations_and_records_history() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
        let mut c = Config::initial(&imp, &w);
        assert!(!c.is_quiescent());
        assert_eq!(c.enabled_processes().len(), 2);
        // The local-copy implementation completes each operation in one step.
        assert_eq!(
            c.step(ProcessId(0)),
            StepOutcome::Completed(Value::from(0i64))
        );
        assert_eq!(
            c.step(ProcessId(1)),
            StepOutcome::Completed(Value::from(0i64))
        );
        assert_eq!(
            c.step(ProcessId(0)),
            StepOutcome::Completed(Value::from(1i64))
        );
        assert_eq!(
            c.step(ProcessId(1)),
            StepOutcome::Completed(Value::from(1i64))
        );
        assert!(c.is_quiescent());
        assert_eq!(c.total_completed(), 4);
        assert_eq!(c.completed(ProcessId(0)), 2);
        let h = c.history();
        assert_eq!(h.len(), 8);
        assert!(h.is_well_formed());
    }

    #[test]
    fn run_solo_and_push_operation() {
        let imp = fi_local(1);
        let w = Workload::new(vec![Vec::new()]);
        let mut c = Config::initial(&imp, &w);
        assert_eq!(c.run_solo_until_complete(ProcessId(0), 10), None);
        c.push_operation(ProcessId(0), FetchIncrement::fetch_inc());
        assert_eq!(
            c.run_solo_until_complete(ProcessId(0), 10),
            Some(Value::from(0i64))
        );
    }

    #[test]
    fn quiesce_pending_completes_in_progress_operations() {
        let imp = fi_local(2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let mut c = Config::initial(&imp, &w);
        // Nothing is mid-flight, so quiescing just reports success without
        // forcing the workload to run.
        assert!(c.quiesce_pending(10));
        assert!(!c.is_quiescent()); // workload not yet started
        c.step(ProcessId(0));
        c.step(ProcessId(1));
        assert!(c.is_quiescent());
    }

    #[test]
    fn cloning_forks_the_execution() {
        let imp = fi_local(1);
        let w = Workload::uniform(1, FetchIncrement::fetch_inc(), 2);
        let mut a = Config::initial(&imp, &w);
        a.step(ProcessId(0));
        let mut b = a.clone();
        a.step(ProcessId(0));
        assert_eq!(a.total_completed(), 2);
        assert_eq!(b.total_completed(), 1);
        b.step(ProcessId(0));
        assert_eq!(b.total_completed(), 2);
        assert_eq!(a.history().len(), 4);
    }

    #[test]
    #[should_panic(expected = "workload has")]
    fn workload_larger_than_implementation_panics() {
        let imp = fi_local(1);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let _ = Config::initial(&imp, &w);
    }
}
