//! Bounded exhaustive exploration of all interleavings — the stable facade
//! over [`crate::engine`].
//!
//! The paper's results quantify over *every* execution of an implementation.
//! For small workloads this quantifier can be discharged mechanically: the
//! explorer enumerates every interleaving of process steps (up to a step
//! bound) and invokes a callback on each configuration, so properties like
//! "every history of this implementation is linearizable" (Theorem 12) or
//! "some reachable configuration is stable" (Proposition 18) can be checked
//! directly.
//!
//! Everything here delegates to the unified exploration engine: the
//! sequential and parallel variants are the *same* traversal selected by a
//! worker count, and [`crate::engine::EngineOptions::reduction`] can switch
//! on sleep-set partial-order reduction or process-symmetry
//! canonicalization.  The functions below keep today's unreduced semantics.

use crate::config::Config;
use crate::engine::{self, EngineOptions};
use crate::program::Implementation;
use crate::store::StoreConfig;
use crate::workload::Workload;
use evlin_history::ProcessId;

pub use crate::engine::{ExploreOptions, ExploreStats, Visit};

/// Exhaustively explores the executions of `implementation` on `workload`.
///
/// The `visitor` is called on every reachable configuration (including the
/// initial one) together with the depth at which it was reached.  Exploration
/// is depth-first; a configuration's successors are obtained by letting each
/// enabled process take one atomic step.
pub fn explore<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
    visitor: F,
) -> ExploreStats
where
    F: FnMut(&Config, usize) -> Visit,
{
    engine::explore(
        implementation,
        workload,
        &EngineOptions {
            limits: options,
            workers: Some(1),
            ..EngineOptions::default()
        },
        visitor,
    )
}

/// Convenience wrapper: explores all executions and collects the histories of
/// every *terminal* configuration (quiescent or depth-bounded), sorted
/// deterministically by their debug encoding.
pub fn terminal_histories(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
) -> Vec<evlin_history::History> {
    engine::terminal_histories(
        implementation,
        workload,
        &EngineOptions {
            limits: options,
            workers: Some(1),
            ..EngineOptions::default()
        },
    )
}

/// Convenience wrapper: checks that `predicate` holds for the history of
/// every reachable configuration; returns the first offending history (in
/// depth-first order) if one exists.
pub fn find_history_violation<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
    predicate: F,
) -> Option<evlin_history::History>
where
    F: Fn(&evlin_history::History) -> bool + Sync,
{
    engine::find_history_violation(
        implementation,
        workload,
        &EngineOptions {
            limits: options,
            workers: Some(1),
            ..EngineOptions::default()
        },
        predicate,
    )
}

/// Options controlling parallel exploration (see [`explore_par`]).
#[derive(Debug, Clone, Copy)]
pub struct ParExploreOptions {
    /// The depth and size bounds shared with the sequential explorer.
    pub base: ExploreOptions,
    /// Assumed worker count used to size the stealable frontier; `None`
    /// assumes `rayon::current_num_threads()`.
    ///
    /// Note this is a *sizing hint only*: the actual workers always come
    /// from the global rayon pool (bounded by the `RAYON_NUM_THREADS`
    /// environment variable), so `Some(1)` does **not** serialize
    /// [`explore_par`] — it merely carves out a smaller frontier.
    pub threads: Option<usize>,
    /// How many independent subtrees to carve out per assumed worker.  The
    /// root region is expanded breadth-first until at least
    /// `threads × subtrees_per_thread` frontier nodes exist; workers then
    /// steal whole subtrees from that frontier, so a larger factor smooths
    /// out imbalanced subtree sizes at the cost of a longer sequential
    /// prefix.
    pub subtrees_per_thread: usize,
    /// Deduplicate configurations: a configuration reached at the same depth
    /// with identical state *and identical recorded history*
    /// ([`Config::fingerprint`]) is visited only once, across *all* workers
    /// (the dedup set is shared and merged).  Because the recorded history
    /// is part of the key, only interleavings that differ in unrecorded
    /// internal base-object steps merge — which keeps every
    /// history-collecting visitor exact.  Off by default to match the
    /// sequential explorer's pure-tree semantics.
    pub dedup: bool,
    /// Transient-fault budget installed on the root (see [`crate::fault`]):
    /// at most this many corruption steps along any explored schedule.  0
    /// (the default) disables fault enumeration entirely.
    pub fault_budget: usize,
    /// Which visited-store backend holds the dedup set (see
    /// [`crate::store`]); ignored while `dedup` is off.  The default
    /// in-memory backend matches the pre-seam explorer exactly; the spill
    /// backend bounds resident memory for visited sets larger than RAM.
    pub store: StoreConfig,
}

impl Default for ParExploreOptions {
    fn default() -> Self {
        ParExploreOptions {
            base: ExploreOptions::default(),
            threads: None,
            subtrees_per_thread: 8,
            dedup: false,
            fault_budget: 0,
            store: StoreConfig::Mem,
        }
    }
}

impl ParExploreOptions {
    /// The equivalent engine options (no reduction).
    fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            limits: self.base,
            workers: self.threads,
            subtrees_per_worker: self.subtrees_per_thread,
            dedup: self.dedup,
            reduction: engine::Reduction::None,
            fault_budget: self.fault_budget,
            store: self.store,
        }
    }
}

/// Exhaustively explores the executions of `implementation` on `workload`
/// using multiple worker threads.
///
/// Semantics match [`explore`]: the `visitor` sees every reachable
/// configuration with its depth, may prune or stop, and the returned
/// statistics count visited and terminal configurations.  The interleaving
/// tree is split into independent subtrees — the root region is expanded
/// breadth-first, then workers *steal* whole subtrees from the shared
/// frontier — so on a quiet machine with `N` cores the wall-clock time
/// approaches `1/N` of the sequential explorer's.
///
/// Determinism: with the default options (no dedup) the visited and terminal
/// counts equal the sequential explorer's exactly, for any thread count,
/// because the interleaving tree's node count is independent of traversal
/// order.  With `dedup` enabled the counts equal the number of unique
/// `(state, history, depth)` triples, which is likewise traversal-order
/// independent.
/// Only `Visit::Stop` and `max_configs` truncation are inherently
/// order-sensitive (the sequential explorer's "first" is meaningless under
/// concurrency); in those cases the exploration still stops promptly but the
/// exact counts may vary from run to run, just as they would between two
/// different sequential visit orders.
///
/// The visitor is shared across workers, hence `Fn + Sync` (not `FnMut`);
/// accumulate into a `Mutex` or atomics as [`terminal_histories_par`] does.
pub fn explore_par<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ParExploreOptions,
    visitor: F,
) -> ExploreStats
where
    F: Fn(&Config, usize) -> Visit + Sync,
{
    engine::explore_shared(implementation, workload, &options.engine_options(), visitor)
}

/// Parallel counterpart of [`terminal_histories`]: collects the history of
/// every terminal configuration using the engine's parallel path.  The
/// histories are returned in a deterministic order (sorted by their debug
/// encoding), since parallel workers reach terminals in a nondeterministic
/// sequence.
pub fn terminal_histories_par(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ParExploreOptions,
) -> Vec<evlin_history::History> {
    engine::terminal_histories(implementation, workload, &options.engine_options())
}

/// Parallel counterpart of [`find_history_violation`]: checks `predicate`
/// against the history of every reachable configuration on all cores and
/// returns *a* violating history if any exists (under concurrency there is
/// no meaningful "first").
pub fn find_history_violation_par<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ParExploreOptions,
    predicate: F,
) -> Option<evlin_history::History>
where
    F: Fn(&evlin_history::History) -> bool + Sync,
{
    engine::find_history_violation(
        implementation,
        workload,
        &options.engine_options(),
        predicate,
    )
}

/// Runs every process solo from the given configuration, one at a time, and
/// returns the resulting configurations (used by valency analysis).
pub fn solo_extensions(config: &Config, max_steps: usize) -> Vec<(ProcessId, Config)> {
    let mut out = Vec::new();
    for p in config.enabled_processes() {
        let mut child = config.clone();
        child.run_solo_until_complete(p, max_steps);
        out.push((p, child));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use evlin_spec::{FetchIncrement, TestAndSet};
    use std::sync::Arc;

    #[test]
    fn explores_all_interleavings_of_two_single_step_ops() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Continue);
        // Configurations: initial, two after one step, two after both steps
        // (each interleaving reaches a distinct configuration object even if
        // equal in content) = 1 + 2 + 2.
        assert_eq!(stats.visited, 5);
        assert_eq!(stats.terminals, 2);
        assert!(!stats.truncated);
    }

    #[test]
    fn terminal_histories_cover_every_interleaving() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let hs = terminal_histories(&imp, &w, ExploreOptions::default());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_eq!(h.complete_operations().len(), 2);
            // The local-copy implementation gives both processes the response
            // 0 — not linearizable, but that is the point of Theorem 12.
            for op in h.complete_operations() {
                assert_eq!(op.response, Some(evlin_spec::Value::from(0i64)));
            }
        }
    }

    #[test]
    fn find_violation_returns_counterexample() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        // "No two operations both return 0" — violated by the local-copy
        // implementation of test&set once both processes have completed.
        let violation = find_history_violation(&imp, &w, ExploreOptions::default(), |h| {
            h.complete_operations()
                .iter()
                .filter(|o| o.response == Some(evlin_spec::Value::from(0i64)))
                .count()
                < 2
        });
        assert!(violation.is_some());
    }

    #[test]
    fn max_configs_truncates() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
        let stats = explore(
            &imp,
            &w,
            ExploreOptions {
                max_depth: 64,
                max_configs: 10,
            },
            |_, _| Visit::Continue,
        );
        assert!(stats.truncated);
        assert_eq!(stats.visited, 10);
    }

    #[test]
    fn prune_and_stop_are_respected() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        // Prune everything: only the root is visited.
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Prune);
        assert_eq!(stats.visited, 1);
        // Stop at the root.
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Stop);
        assert_eq!(stats.visited, 1);
    }

    /// Forces the parallel code path regardless of the machine's core count
    /// (the explorer itself accepts an explicit thread count, but the rayon
    /// work queue is only exercised with >1 workers).
    fn par_options(threads: usize, dedup: bool) -> ParExploreOptions {
        ParExploreOptions {
            base: ExploreOptions::default(),
            threads: Some(threads),
            subtrees_per_thread: 4,
            dedup,
            fault_budget: 0,
            store: StoreConfig::Mem,
        }
    }

    #[test]
    fn parallel_counts_match_sequential_for_any_thread_count() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        let sequential = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Continue);
        assert!(!sequential.truncated);
        for threads in [1, 2, 4, 8] {
            let parallel = explore_par(&imp, &w, par_options(threads, false), |_, _| {
                Visit::Continue
            });
            assert_eq!(
                (parallel.visited, parallel.terminals, parallel.truncated),
                (sequential.visited, sequential.terminals, false),
                "thread count {threads} diverged from the sequential explorer"
            );
        }
    }

    #[test]
    fn parallel_dedup_counts_are_thread_count_independent() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        let reference = explore_par(&imp, &w, par_options(1, true), |_, _| Visit::Continue);
        let plain = explore_par(&imp, &w, par_options(1, false), |_, _| Visit::Continue);
        // Deduplication merges states reached by several interleavings…
        assert!(reference.visited <= plain.visited);
        assert!(reference.visited > 0);
        // …and the deduplicated counts are the number of unique
        // (state, history, depth) triples — independent of the worker count.
        for threads in [2, 4, 8] {
            let parallel =
                explore_par(&imp, &w, par_options(threads, true), |_, _| Visit::Continue);
            assert_eq!(
                (parallel.visited, parallel.terminals),
                (reference.visited, reference.terminals),
                "dedup counts diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_terminal_histories_match_sequential() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let sequential = terminal_histories(&imp, &w, ExploreOptions::default());
        let parallel = terminal_histories_par(&imp, &w, par_options(4, false));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_find_violation_finds_a_counterexample() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let violation = find_history_violation_par(&imp, &w, par_options(4, false), |h| {
            h.complete_operations()
                .iter()
                .filter(|o| o.response == Some(evlin_spec::Value::from(0i64)))
                .count()
                < 2
        });
        assert!(violation.is_some());
        // And no violation is reported for a property that always holds.
        let none =
            find_history_violation_par(&imp, &w, par_options(4, false), |h| h.len() < usize::MAX);
        assert!(none.is_none());
    }

    #[test]
    fn parallel_max_configs_truncates() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
        let stats = explore_par(
            &imp,
            &w,
            ParExploreOptions {
                base: ExploreOptions {
                    max_depth: 64,
                    max_configs: 10,
                },
                threads: Some(4),
                subtrees_per_thread: 4,
                dedup: false,
                fault_budget: 0,
                store: StoreConfig::Mem,
            },
            |_, _| Visit::Continue,
        );
        assert!(stats.truncated);
        assert!(stats.visited <= 10);
    }

    #[test]
    fn fingerprint_distinguishes_progress_and_merges_identical_states() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let initial = Config::initial(&imp, &w);
        let mut stepped = initial.clone();
        stepped.step(ProcessId(0));
        assert_ne!(initial.fingerprint(), stepped.fingerprint());
        // Cloning without stepping preserves the fingerprint.
        assert_eq!(initial.fingerprint(), initial.clone().fingerprint());
    }

    #[test]
    fn solo_extensions_complete_each_process() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let c = Config::initial(&imp, &w);
        let exts = solo_extensions(&c, 100);
        assert_eq!(exts.len(), 2);
        for (p, cfg) in exts {
            assert_eq!(cfg.completed(p), 1);
        }
    }
}
