//! Bounded exhaustive exploration of all interleavings.
//!
//! The paper's results quantify over *every* execution of an implementation.
//! For small workloads this quantifier can be discharged mechanically: the
//! explorer enumerates every interleaving of process steps (up to a step
//! bound) and invokes a callback on each configuration, so properties like
//! "every history of this implementation is linearizable" (Theorem 12) or
//! "some reachable configuration is stable" (Proposition 18) can be checked
//! directly.

use crate::config::{Config, StepOutcome};
use crate::program::Implementation;
use crate::workload::Workload;
use evlin_history::ProcessId;
use rayon::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options controlling the exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum number of steps along any single execution path.
    pub max_depth: usize,
    /// Maximum total number of configurations to visit (safety valve).
    pub max_configs: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_depth: 64,
            max_configs: 500_000,
        }
    }
}

/// Statistics about an exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of configurations visited (including the initial one).
    pub visited: usize,
    /// Number of terminal configurations reached (quiescent or at depth
    /// bound).
    pub terminals: usize,
    /// Whether the exploration was truncated by `max_configs`.
    pub truncated: bool,
}

/// What the visitor can tell the explorer after seeing a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Keep exploring from this configuration.
    Continue,
    /// Do not explore successors of this configuration (but keep exploring
    /// its siblings).
    Prune,
    /// Abort the entire exploration (e.g. a counterexample was found).
    Stop,
}

/// Exhaustively explores the executions of `implementation` on `workload`.
///
/// The `visitor` is called on every reachable configuration (including the
/// initial one) together with the depth at which it was reached.  Exploration
/// is depth-first; a configuration's successors are obtained by letting each
/// enabled process take one atomic step.
pub fn explore<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
    mut visitor: F,
) -> ExploreStats
where
    F: FnMut(&Config, usize) -> Visit,
{
    let initial = Config::initial(implementation, workload);
    let mut stats = ExploreStats::default();
    let mut stack: Vec<(Config, usize)> = vec![(initial, 0)];
    while let Some((config, depth)) = stack.pop() {
        if stats.visited >= options.max_configs {
            stats.truncated = true;
            break;
        }
        stats.visited += 1;
        match visitor(&config, depth) {
            Visit::Stop => break,
            Visit::Prune => continue,
            Visit::Continue => {}
        }
        let enabled = config.enabled_processes();
        if enabled.is_empty() || depth >= options.max_depth {
            stats.terminals += 1;
            continue;
        }
        for p in enabled {
            let mut child = config.clone();
            match child.step(p) {
                StepOutcome::Idle => continue,
                _ => stack.push((child, depth + 1)),
            }
        }
    }
    stats
}

/// Convenience wrapper: explores all executions and collects the histories of
/// every *terminal* configuration (quiescent or depth-bounded).
pub fn terminal_histories(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
) -> Vec<evlin_history::History> {
    let mut histories = Vec::new();
    explore(implementation, workload, options, |config, depth| {
        if config.enabled_processes().is_empty() || depth >= options.max_depth {
            histories.push(config.history().clone());
        }
        Visit::Continue
    });
    histories
}

/// Convenience wrapper: checks that `predicate` holds for the history of
/// every reachable configuration; returns the first offending history if one
/// exists.
pub fn find_history_violation<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
    mut predicate: F,
) -> Option<evlin_history::History>
where
    F: FnMut(&evlin_history::History) -> bool,
{
    let mut violation = None;
    explore(implementation, workload, options, |config, _| {
        if !predicate(config.history()) {
            violation = Some(config.history().clone());
            Visit::Stop
        } else {
            Visit::Continue
        }
    });
    violation
}

/// Options controlling parallel exploration (see [`explore_par`]).
#[derive(Debug, Clone, Copy)]
pub struct ParExploreOptions {
    /// The depth and size bounds shared with the sequential explorer.
    pub base: ExploreOptions,
    /// Assumed worker count used to size the stealable frontier; `None`
    /// assumes `rayon::current_num_threads()`.
    ///
    /// Note this is a *sizing hint only*: the actual workers always come
    /// from the global rayon pool (bounded by the `RAYON_NUM_THREADS`
    /// environment variable), so `Some(1)` does **not** serialize the
    /// exploration — it merely carves out a smaller frontier.
    pub threads: Option<usize>,
    /// How many independent subtrees to carve out per assumed worker.  The
    /// root region is expanded breadth-first until at least
    /// `threads × subtrees_per_thread` frontier nodes exist; workers then
    /// steal whole subtrees from that frontier, so a larger factor smooths
    /// out imbalanced subtree sizes at the cost of a longer sequential
    /// prefix.
    pub subtrees_per_thread: usize,
    /// Deduplicate configurations: a configuration reached at the same depth
    /// with identical state *and identical recorded history*
    /// ([`Config::fingerprint`]) is visited only once, across *all* workers
    /// (the dedup set is shared and merged).  Because the recorded history
    /// is part of the key, only interleavings that differ in unrecorded
    /// internal base-object steps merge — which keeps every
    /// history-collecting visitor exact.  Off by default to match the
    /// sequential explorer's pure-tree semantics.
    pub dedup: bool,
}

impl Default for ParExploreOptions {
    fn default() -> Self {
        ParExploreOptions {
            base: ExploreOptions::default(),
            threads: None,
            subtrees_per_thread: 8,
            dedup: false,
        }
    }
}

/// The sharded `(fingerprint, depth)` dedup set shared by all workers.
type DedupShards = [Mutex<HashSet<(u64, usize)>>];

/// Shared mutable state of one parallel exploration.
struct ParShared<'a> {
    /// Configurations the whole exploration may still visit (`max_configs`
    /// budget).  Decremented per visit; exhaustion marks truncation.
    budget: AtomicUsize,
    /// Set by `Visit::Stop` (and by budget exhaustion) to halt all workers.
    stopped: AtomicBool,
    /// Whether the budget ran out anywhere.
    truncated: AtomicBool,
    /// Sharded, merged dedup set over `(fingerprint, depth)` keys; `None`
    /// when deduplication is off.
    dedup: Option<&'a DedupShards>,
}

impl ParShared<'_> {
    /// Attempts to claim one visit from the global budget.
    fn claim_visit(&self) -> bool {
        let mut current = self.budget.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                self.truncated.store(true, Ordering::Relaxed);
                self.stopped.store(true, Ordering::Relaxed);
                return false;
            }
            match self.budget.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Whether `config` at `depth` is seen for the first time (always true
    /// when deduplication is off — the fingerprint is only computed when a
    /// dedup set exists, since it costs a full state serialization).
    fn first_visit(&self, config: &Config, depth: usize) -> bool {
        match self.dedup {
            None => true,
            Some(shards) => {
                let key = (config.fingerprint(), depth);
                let shard = (key.0 % shards.len() as u64) as usize;
                shards[shard]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .insert(key)
            }
        }
    }
}

/// Exhaustively explores the executions of `implementation` on `workload`
/// using multiple worker threads.
///
/// Semantics match [`explore`]: the `visitor` sees every reachable
/// configuration with its depth, may prune or stop, and the returned
/// statistics count visited and terminal configurations.  The interleaving
/// tree is split into independent subtrees — the root region is expanded
/// breadth-first, then workers *steal* whole subtrees from the shared
/// frontier — so on a quiet machine with `N` cores the wall-clock time
/// approaches `1/N` of the sequential explorer's.
///
/// Determinism: with the default options (no dedup) the visited and terminal
/// counts equal the sequential explorer's exactly, for any thread count,
/// because the interleaving tree's node count is independent of traversal
/// order.  With `dedup` enabled the counts equal the number of unique
/// `(state, history, depth)` triples, which is likewise traversal-order
/// independent.
/// Only `Visit::Stop` and `max_configs` truncation are inherently
/// order-sensitive (the sequential explorer's "first" is meaningless under
/// concurrency); in those cases the exploration still stops promptly but the
/// exact counts may vary from run to run, just as they would between two
/// different sequential visit orders.
///
/// The visitor is shared across workers, hence `Fn + Sync` (not `FnMut`);
/// accumulate into a `Mutex` or atomics as [`terminal_histories_par`] does.
pub fn explore_par<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ParExploreOptions,
    visitor: F,
) -> ExploreStats
where
    F: Fn(&Config, usize) -> Visit + Sync,
{
    let threads = options
        .threads
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);
    let target_frontier = threads * options.subtrees_per_thread.max(1);

    let shards: Vec<Mutex<HashSet<(u64, usize)>>> = if options.dedup {
        (0..(threads * 4).max(16))
            .map(|_| Mutex::new(HashSet::new()))
            .collect()
    } else {
        Vec::new()
    };
    let shared = ParShared {
        budget: AtomicUsize::new(options.base.max_configs),
        stopped: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        dedup: options.dedup.then_some(shards.as_slice()),
    };

    // Phase 1: sequential breadth-first expansion of the root region until
    // enough independent subtree roots exist to keep every worker busy.
    let mut stats = ExploreStats::default();
    let mut frontier: VecDeque<(Config, usize)> = VecDeque::new();
    let initial = Config::initial(implementation, workload);
    if shared.first_visit(&initial, 0) {
        frontier.push_back((initial, 0));
    }
    while frontier.len() < target_frontier {
        let Some((config, depth)) = frontier.pop_front() else {
            break;
        };
        if !visit_one(
            &config,
            depth,
            &visitor,
            &shared,
            &mut stats,
            options.base.max_depth,
            |child, d| {
                frontier.push_back((child, d));
            },
        ) {
            break;
        }
    }

    // Phase 2: workers steal subtree roots from the frontier and explore
    // each subtree depth-first, all sharing the visitor, the visit budget
    // and (when enabled) the merged dedup set.
    let subtree_stats: Vec<ExploreStats> = frontier
        .into_iter()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(config, depth)| {
            let mut local = ExploreStats::default();
            let mut stack: Vec<(Config, usize)> = vec![(config, depth)];
            while let Some((config, depth)) = stack.pop() {
                if shared.stopped.load(Ordering::Relaxed) {
                    break;
                }
                if !visit_one(
                    &config,
                    depth,
                    &visitor,
                    &shared,
                    &mut local,
                    options.base.max_depth,
                    |child, d| stack.push((child, d)),
                ) {
                    break;
                }
            }
            local
        })
        .collect();

    for s in subtree_stats {
        stats.visited += s.visited;
        stats.terminals += s.terminals;
    }
    stats.truncated = shared.truncated.load(Ordering::Relaxed);
    stats
}

/// Visits one configuration on behalf of either phase of [`explore_par`]:
/// claims budget, invokes the visitor, classifies terminals and hands
/// non-deduplicated children to `emit`.  Returns `false` when exploration
/// should halt (budget exhausted or `Visit::Stop`).
fn visit_one<F, E>(
    config: &Config,
    depth: usize,
    visitor: &F,
    shared: &ParShared<'_>,
    stats: &mut ExploreStats,
    max_depth: usize,
    mut emit: E,
) -> bool
where
    F: Fn(&Config, usize) -> Visit + Sync,
    E: FnMut(Config, usize),
{
    if !shared.claim_visit() {
        return false;
    }
    stats.visited += 1;
    match visitor(config, depth) {
        Visit::Stop => {
            shared.stopped.store(true, Ordering::Relaxed);
            return false;
        }
        Visit::Prune => return true,
        Visit::Continue => {}
    }
    let enabled = config.enabled_processes();
    if enabled.is_empty() || depth >= max_depth {
        stats.terminals += 1;
        return true;
    }
    for p in enabled {
        let mut child = config.clone();
        match child.step(p) {
            StepOutcome::Idle => continue,
            _ => {
                if shared.first_visit(&child, depth + 1) {
                    emit(child, depth + 1);
                }
            }
        }
    }
    true
}

/// Parallel counterpart of [`terminal_histories`]: collects the history of
/// every terminal configuration using [`explore_par`].  The histories are
/// returned in a deterministic order (sorted by their debug encoding), since
/// parallel workers reach terminals in a nondeterministic sequence.
pub fn terminal_histories_par(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ParExploreOptions,
) -> Vec<evlin_history::History> {
    let histories = Mutex::new(Vec::new());
    explore_par(implementation, workload, options, |config, depth| {
        if config.enabled_processes().is_empty() || depth >= options.base.max_depth {
            histories
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(config.history().clone());
        }
        Visit::Continue
    });
    let mut histories = histories.into_inner().unwrap_or_else(|p| p.into_inner());
    histories.sort_by_cached_key(|h| format!("{h:?}"));
    histories
}

/// Parallel counterpart of [`find_history_violation`]: checks `predicate`
/// against the history of every reachable configuration on all cores and
/// returns *a* violating history if any exists (under concurrency there is
/// no meaningful "first").
pub fn find_history_violation_par<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ParExploreOptions,
    predicate: F,
) -> Option<evlin_history::History>
where
    F: Fn(&evlin_history::History) -> bool + Sync,
{
    let violation = Mutex::new(None);
    explore_par(implementation, workload, options, |config, _| {
        if !predicate(config.history()) {
            *violation
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(config.history().clone());
            Visit::Stop
        } else {
            Visit::Continue
        }
    });
    violation.into_inner().unwrap_or_else(|p| p.into_inner())
}

/// Runs every process solo from the given configuration, one at a time, and
/// returns the resulting configurations (used by valency analysis).
pub fn solo_extensions(config: &Config, max_steps: usize) -> Vec<(ProcessId, Config)> {
    let mut out = Vec::new();
    for p in config.enabled_processes() {
        let mut child = config.clone();
        child.run_solo_until_complete(p, max_steps);
        out.push((p, child));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use evlin_spec::{FetchIncrement, TestAndSet};
    use std::sync::Arc;

    #[test]
    fn explores_all_interleavings_of_two_single_step_ops() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Continue);
        // Configurations: initial, two after one step, two after both steps
        // (each interleaving reaches a distinct configuration object even if
        // equal in content) = 1 + 2 + 2.
        assert_eq!(stats.visited, 5);
        assert_eq!(stats.terminals, 2);
        assert!(!stats.truncated);
    }

    #[test]
    fn terminal_histories_cover_every_interleaving() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let hs = terminal_histories(&imp, &w, ExploreOptions::default());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_eq!(h.complete_operations().len(), 2);
            // The local-copy implementation gives both processes the response
            // 0 — not linearizable, but that is the point of Theorem 12.
            for op in h.complete_operations() {
                assert_eq!(op.response, Some(evlin_spec::Value::from(0i64)));
            }
        }
    }

    #[test]
    fn find_violation_returns_counterexample() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        // "No two operations both return 0" — violated by the local-copy
        // implementation of test&set once both processes have completed.
        let violation = find_history_violation(&imp, &w, ExploreOptions::default(), |h| {
            h.complete_operations()
                .iter()
                .filter(|o| o.response == Some(evlin_spec::Value::from(0i64)))
                .count()
                < 2
        });
        assert!(violation.is_some());
    }

    #[test]
    fn max_configs_truncates() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
        let stats = explore(
            &imp,
            &w,
            ExploreOptions {
                max_depth: 64,
                max_configs: 10,
            },
            |_, _| Visit::Continue,
        );
        assert!(stats.truncated);
        assert_eq!(stats.visited, 10);
    }

    #[test]
    fn prune_and_stop_are_respected() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        // Prune everything: only the root is visited.
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Prune);
        assert_eq!(stats.visited, 1);
        // Stop at the root.
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Stop);
        assert_eq!(stats.visited, 1);
    }

    /// Forces the parallel code path regardless of the machine's core count
    /// (the explorer itself accepts an explicit thread count, but the rayon
    /// work queue is only exercised with >1 workers).
    fn par_options(threads: usize, dedup: bool) -> ParExploreOptions {
        ParExploreOptions {
            base: ExploreOptions::default(),
            threads: Some(threads),
            subtrees_per_thread: 4,
            dedup,
        }
    }

    #[test]
    fn parallel_counts_match_sequential_for_any_thread_count() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        let sequential = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Continue);
        assert!(!sequential.truncated);
        for threads in [1, 2, 4, 8] {
            let parallel = explore_par(&imp, &w, par_options(threads, false), |_, _| {
                Visit::Continue
            });
            assert_eq!(
                (parallel.visited, parallel.terminals, parallel.truncated),
                (sequential.visited, sequential.terminals, false),
                "thread count {threads} diverged from the sequential explorer"
            );
        }
    }

    #[test]
    fn parallel_dedup_counts_are_thread_count_independent() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 2);
        let reference = explore_par(&imp, &w, par_options(1, true), |_, _| Visit::Continue);
        let plain = explore_par(&imp, &w, par_options(1, false), |_, _| Visit::Continue);
        // Deduplication merges states reached by several interleavings…
        assert!(reference.visited <= plain.visited);
        assert!(reference.visited > 0);
        // …and the deduplicated counts are the number of unique
        // (state, history, depth) triples — independent of the worker count.
        for threads in [2, 4, 8] {
            let parallel =
                explore_par(&imp, &w, par_options(threads, true), |_, _| Visit::Continue);
            assert_eq!(
                (parallel.visited, parallel.terminals),
                (reference.visited, reference.terminals),
                "dedup counts diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_terminal_histories_match_sequential() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let mut sequential = terminal_histories(&imp, &w, ExploreOptions::default());
        sequential.sort_by_key(|h| format!("{h:?}"));
        let parallel = terminal_histories_par(&imp, &w, par_options(4, false));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_find_violation_finds_a_counterexample() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let violation = find_history_violation_par(&imp, &w, par_options(4, false), |h| {
            h.complete_operations()
                .iter()
                .filter(|o| o.response == Some(evlin_spec::Value::from(0i64)))
                .count()
                < 2
        });
        assert!(violation.is_some());
        // And no violation is reported for a property that always holds.
        let none =
            find_history_violation_par(&imp, &w, par_options(4, false), |h| h.len() < usize::MAX);
        assert!(none.is_none());
    }

    #[test]
    fn parallel_max_configs_truncates() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
        let stats = explore_par(
            &imp,
            &w,
            ParExploreOptions {
                base: ExploreOptions {
                    max_depth: 64,
                    max_configs: 10,
                },
                threads: Some(4),
                subtrees_per_thread: 4,
                dedup: false,
            },
            |_, _| Visit::Continue,
        );
        assert!(stats.truncated);
        assert!(stats.visited <= 10);
    }

    #[test]
    fn fingerprint_distinguishes_progress_and_merges_identical_states() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let initial = Config::initial(&imp, &w);
        let mut stepped = initial.clone();
        stepped.step(ProcessId(0));
        assert_ne!(initial.fingerprint(), stepped.fingerprint());
        // Cloning without stepping preserves the fingerprint.
        assert_eq!(initial.fingerprint(), initial.clone().fingerprint());
    }

    #[test]
    fn solo_extensions_complete_each_process() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let c = Config::initial(&imp, &w);
        let exts = solo_extensions(&c, 100);
        assert_eq!(exts.len(), 2);
        for (p, cfg) in exts {
            assert_eq!(cfg.completed(p), 1);
        }
    }
}
