//! Bounded exhaustive exploration of all interleavings.
//!
//! The paper's results quantify over *every* execution of an implementation.
//! For small workloads this quantifier can be discharged mechanically: the
//! explorer enumerates every interleaving of process steps (up to a step
//! bound) and invokes a callback on each configuration, so properties like
//! "every history of this implementation is linearizable" (Theorem 12) or
//! "some reachable configuration is stable" (Proposition 18) can be checked
//! directly.

use crate::config::{Config, StepOutcome};
use crate::program::Implementation;
use crate::workload::Workload;
use evlin_history::ProcessId;

/// Options controlling the exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum number of steps along any single execution path.
    pub max_depth: usize,
    /// Maximum total number of configurations to visit (safety valve).
    pub max_configs: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_depth: 64,
            max_configs: 500_000,
        }
    }
}

/// Statistics about an exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of configurations visited (including the initial one).
    pub visited: usize,
    /// Number of terminal configurations reached (quiescent or at depth
    /// bound).
    pub terminals: usize,
    /// Whether the exploration was truncated by `max_configs`.
    pub truncated: bool,
}

/// What the visitor can tell the explorer after seeing a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Keep exploring from this configuration.
    Continue,
    /// Do not explore successors of this configuration (but keep exploring
    /// its siblings).
    Prune,
    /// Abort the entire exploration (e.g. a counterexample was found).
    Stop,
}

/// Exhaustively explores the executions of `implementation` on `workload`.
///
/// The `visitor` is called on every reachable configuration (including the
/// initial one) together with the depth at which it was reached.  Exploration
/// is depth-first; a configuration's successors are obtained by letting each
/// enabled process take one atomic step.
pub fn explore<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
    mut visitor: F,
) -> ExploreStats
where
    F: FnMut(&Config, usize) -> Visit,
{
    let initial = Config::initial(implementation, workload);
    let mut stats = ExploreStats::default();
    let mut stack: Vec<(Config, usize)> = vec![(initial, 0)];
    while let Some((config, depth)) = stack.pop() {
        if stats.visited >= options.max_configs {
            stats.truncated = true;
            break;
        }
        stats.visited += 1;
        match visitor(&config, depth) {
            Visit::Stop => break,
            Visit::Prune => continue,
            Visit::Continue => {}
        }
        let enabled = config.enabled_processes();
        if enabled.is_empty() || depth >= options.max_depth {
            stats.terminals += 1;
            continue;
        }
        for p in enabled {
            let mut child = config.clone();
            match child.step(p) {
                StepOutcome::Idle => continue,
                _ => stack.push((child, depth + 1)),
            }
        }
    }
    stats
}

/// Convenience wrapper: explores all executions and collects the histories of
/// every *terminal* configuration (quiescent or depth-bounded).
pub fn terminal_histories(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
) -> Vec<evlin_history::History> {
    let mut histories = Vec::new();
    explore(implementation, workload, options, |config, depth| {
        if config.enabled_processes().is_empty() || depth >= options.max_depth {
            histories.push(config.history().clone());
        }
        Visit::Continue
    });
    histories
}

/// Convenience wrapper: checks that `predicate` holds for the history of
/// every reachable configuration; returns the first offending history if one
/// exists.
pub fn find_history_violation<F>(
    implementation: &dyn Implementation,
    workload: &Workload,
    options: ExploreOptions,
    mut predicate: F,
) -> Option<evlin_history::History>
where
    F: FnMut(&evlin_history::History) -> bool,
{
    let mut violation = None;
    explore(implementation, workload, options, |config, _| {
        if !predicate(config.history()) {
            violation = Some(config.history().clone());
            Visit::Stop
        } else {
            Visit::Continue
        }
    });
    violation
}

/// Runs every process solo from the given configuration, one at a time, and
/// returns the resulting configurations (used by valency analysis).
pub fn solo_extensions(config: &Config, max_steps: usize) -> Vec<(ProcessId, Config)> {
    let mut out = Vec::new();
    for p in config.enabled_processes() {
        let mut child = config.clone();
        child.run_solo_until_complete(p, max_steps);
        out.push((p, child));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::LocalSpecImplementation;
    use evlin_spec::{FetchIncrement, TestAndSet};
    use std::sync::Arc;

    #[test]
    fn explores_all_interleavings_of_two_single_step_ops() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Continue);
        // Configurations: initial, two after one step, two after both steps
        // (each interleaving reaches a distinct configuration object even if
        // equal in content) = 1 + 2 + 2.
        assert_eq!(stats.visited, 5);
        assert_eq!(stats.terminals, 2);
        assert!(!stats.truncated);
    }

    #[test]
    fn terminal_histories_cover_every_interleaving() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        let hs = terminal_histories(&imp, &w, ExploreOptions::default());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_eq!(h.complete_operations().len(), 2);
            // The local-copy implementation gives both processes the response
            // 0 — not linearizable, but that is the point of Theorem 12.
            for op in h.complete_operations() {
                assert_eq!(op.response, Some(evlin_spec::Value::from(0i64)));
            }
        }
    }

    #[test]
    fn find_violation_returns_counterexample() {
        let imp = LocalSpecImplementation::new(Arc::new(TestAndSet::new()), 2);
        let w = Workload::uniform(2, TestAndSet::test_and_set(), 1);
        // "No two operations both return 0" — violated by the local-copy
        // implementation of test&set once both processes have completed.
        let violation = find_history_violation(&imp, &w, ExploreOptions::default(), |h| {
            h.complete_operations()
                .iter()
                .filter(|o| o.response == Some(evlin_spec::Value::from(0i64)))
                .count()
                < 2
        });
        assert!(violation.is_some());
    }

    #[test]
    fn max_configs_truncates() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 3);
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 3);
        let stats = explore(
            &imp,
            &w,
            ExploreOptions {
                max_depth: 64,
                max_configs: 10,
            },
            |_, _| Visit::Continue,
        );
        assert!(stats.truncated);
        assert_eq!(stats.visited, 10);
    }

    #[test]
    fn prune_and_stop_are_respected() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        // Prune everything: only the root is visited.
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Prune);
        assert_eq!(stats.visited, 1);
        // Stop at the root.
        let stats = explore(&imp, &w, ExploreOptions::default(), |_, _| Visit::Stop);
        assert_eq!(stats.visited, 1);
    }

    #[test]
    fn solo_extensions_complete_each_process() {
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 1);
        let c = Config::initial(&imp, &w);
        let exts = solo_extensions(&c, 100);
        assert_eq!(exts.len(), 2);
        for (p, cfg) in exts {
            assert_eq!(cfg.completed(p), 1);
        }
    }
}
