//! Stable configurations and the Proposition 18 transformation.
//!
//! Proposition 18: if there is an `n`-process eventually linearizable,
//! non-blocking implementation `A` of a fetch&increment object from
//! linearizable base objects, then there is a linearizable one `A′` from the
//! same base objects.  The proof
//!
//! 1. shows that some configuration `C` of `A` is *stable* — every execution
//!    passing through `C` is `|αC|`-linearizable, where `αC` is the path from
//!    the initial configuration to `C`;
//! 2. runs every process to completion from `C` (reaching an idle
//!    configuration), then lets one process run solo until some operation
//!    `op0` returns a value equal to the number of fetch&inc operations
//!    invoked before it; the configuration at the end of `op0` is `C0` and
//!    that count is `v0`;
//! 3. defines `A′` as `A` started from the (base-object and local) state of
//!    `C0`, subtracting `v0` from every response.
//!
//! This module implements each step with bounded checks: stability is tested
//! against all extensions up to a configurable depth, and the resulting
//! [`FrozenImplementation`] (wrapped in an [`OffsetFetchInc`]) can be executed
//! and model-checked like any other implementation.

use crate::base::BaseObject;
use crate::config::Config;
use crate::engine::{self, EngineOptions, Reduction, Visit};
use crate::explorer::ExploreOptions;
use crate::program::{Implementation, ProcessLogic, TaskStep};
use crate::store::StoreConfig;
use crate::workload::Workload;
use evlin_checker::{fi, parallel};
use evlin_history::{History, ProcessId};
use evlin_spec::{FetchIncrement, Invocation, Value};

/// Number of terminal histories accumulated before they are handed to the
/// batched checker: large enough to amortize the fan-out, small enough to
/// keep the early exit on a violating extension responsive.
const CHECK_BATCH: usize = 64;

/// Options for the bounded stability check and stable-configuration search.
#[derive(Debug, Clone, Copy)]
pub struct StabilityOptions {
    /// How many additional fetch&inc operations each process is given when
    /// exploring extensions of a candidate configuration.
    pub extension_ops_per_process: usize,
    /// Depth bound (in steps) of the extension exploration.
    pub extension_depth: usize,
    /// Maximum number of configurations explored per stability check.
    pub max_configs: usize,
    /// Maximum solo steps allowed when completing an operation.
    pub solo_step_budget: usize,
    /// The state-space reduction applied while exploring extensions.  Sound
    /// for every strategy: sleep sets preserve the terminal-history set
    /// exactly, and `t`-linearizability is process-symmetric, so symmetry
    /// canonicalization preserves every verdict.  `Reduction::None` keeps
    /// the seed semantics.
    pub reduction: Reduction,
    /// Transient-fault budget for the extension exploration (see
    /// [`crate::fault`]): with a positive budget, stability is required to
    /// survive up to this many corruption steps in every extension — a
    /// *fault-tolerant* (self-stabilizing) strengthening of Proposition 18's
    /// stability.  0 (the default) keeps the fault-free semantics.
    pub fault_budget: usize,
    /// Which visited-store backend holds the extension exploration's dedup
    /// set (see [`crate::store`]); only consulted when the chosen
    /// `reduction` deduplicates.  The default in-memory backend keeps the
    /// seed semantics; the spill backend bounds resident memory for very
    /// deep extension searches.
    pub store: StoreConfig,
}

impl Default for StabilityOptions {
    fn default() -> Self {
        StabilityOptions {
            extension_ops_per_process: 2,
            extension_depth: 48,
            max_configs: 200_000,
            solo_step_budget: 10_000,
            reduction: Reduction::None,
            fault_budget: 0,
            store: StoreConfig::Mem,
        }
    }
}

/// Checks (up to the bounds in `options`) whether `config` is *stable*:
/// every extension of its execution is `t`-linearizable for `t` equal to the
/// length of the history so far.
///
/// The check enumerates all interleavings in which each process performs up
/// to `extension_ops_per_process` further fetch&inc operations and verifies
/// `t`-linearizability of every terminal history with the specialized
/// fetch&increment checker.  With more than one rayon worker available,
/// terminal histories are accumulated into batches of 64 and handed to
/// [`evlin_checker::parallel::fi_all_t_linearizable_par`], so the
/// checking half of the search uses every core; on a single worker the
/// histories are checked inline (batching would only pay a cloning tax).
/// The exploration half runs through [`crate::engine`] and honours
/// [`StabilityOptions::reduction`], which shrinks the extension tree without
/// changing the verdict.  The verdict is identical either way.  A `true`
/// answer is therefore
/// "stable up to the bound"; a `false` answer is definitive (a violating
/// extension was found).
pub fn is_stable(config: &Config, initial_value: i64, options: &StabilityOptions) -> bool {
    let t = config.history().len();
    // Give every process extra fetch&inc operations to perform.
    let mut extended = config.clone();
    for i in 0..extended.processes() {
        for _ in 0..options.extension_ops_per_process {
            extended.push_operation(ProcessId(i), FetchIncrement::fetch_inc());
        }
    }
    // Engine exploration over interleavings (with the configured reduction);
    // check t-linearizability at terminal nodes (prefix closure, Lemma 6,
    // makes checking interior nodes redundant).
    let batched = rayon::current_num_threads() > 1;
    let engine_options = EngineOptions {
        limits: ExploreOptions {
            max_depth: options.extension_depth,
            max_configs: options.max_configs,
        },
        workers: Some(1),
        reduction: options.reduction,
        fault_budget: options.fault_budget,
        store: options.store,
        ..EngineOptions::default()
    };
    let mut ok = true;
    let mut terminal: Vec<History> = Vec::new();
    let stats = engine::explore_config(extended, &engine_options, |c, depth| {
        if c.is_quiescent() || depth >= options.extension_depth {
            if batched {
                terminal.push(c.history().clone());
                if terminal.len() == CHECK_BATCH {
                    if !parallel::fi_all_t_linearizable_par(&terminal, initial_value, t) {
                        ok = false;
                        return Visit::Stop;
                    }
                    terminal.clear();
                }
            } else if !fi::is_t_linearizable(c.history(), initial_value, t).unwrap_or(false) {
                ok = false;
                return Visit::Stop;
            }
        }
        Visit::Continue
    });
    if stats.truncated {
        // Budget exhausted: treat as unstable so callers keep searching
        // rather than freeze a configuration we could not verify.
        return false;
    }
    ok && parallel::fi_all_t_linearizable_par(&terminal, initial_value, t)
}

/// The result of a successful stable-configuration search and freeze.
#[derive(Debug)]
pub struct StableFreeze {
    /// The linearizable fetch&increment implementation `A′`.
    pub implementation: OffsetFetchInc,
    /// The offset `v0` subtracted from every response (the number of
    /// fetch&inc operations invoked before `op0`).
    pub offset: i64,
    /// The length `t = |αC|` of the history at the stable configuration.
    pub stabilization_index: usize,
    /// Number of steps of the original implementation taken before freezing.
    pub steps_before_freeze: usize,
}

/// Searches for a stable configuration of `implementation` along a
/// round-robin execution in which every process performs `warmup_ops`
/// fetch&inc operations, then freezes it into a linearizable implementation
/// per Proposition 18.
///
/// Returns `None` if no stable configuration was certified within the bounds
/// (e.g. the implementation never stabilizes, or the budget is too small).
pub fn stable_to_linearizable(
    implementation: &dyn Implementation,
    processes: usize,
    warmup_ops: usize,
    initial_value: i64,
    options: &StabilityOptions,
) -> Option<StableFreeze> {
    // Run a round-robin warm-up execution, checking candidate configurations
    // for stability at operation boundaries.
    let workload = Workload::uniform(processes, FetchIncrement::fetch_inc(), warmup_ops);
    let mut config = Config::initial(implementation, &workload);
    let mut scheduler = crate::scheduler::RoundRobinScheduler::new();
    let mut candidate: Option<Config> = None;
    loop {
        // A candidate is only meaningful at a quiescent point of the current
        // workload prefix (the paper quiesces before freezing anyway).
        if config.is_quiescent() {
            if is_stable(&config, initial_value, options) {
                candidate = Some(config.clone());
            }
            break;
        }
        use crate::scheduler::Scheduler;
        let Some(p) = scheduler.next(&config) else {
            break;
        };
        config.step(p);
    }
    // If the fully-quiesced warm-up configuration is not certifiably stable,
    // also try the initial configuration (for implementations that are
    // linearizable from the start, t = 0 works).
    let stable = match candidate {
        Some(c) => c,
        None => {
            let c0 = Config::initial(implementation, &Workload::new(vec![Vec::new(); processes]));
            if is_stable(&c0, initial_value, options) {
                c0
            } else {
                return None;
            }
        }
    };
    freeze(implementation, stable, initial_value, options)
}

/// Performs steps 2–3 of the Proposition 18 proof starting from a stable,
/// quiescent configuration.
fn freeze(
    _implementation: &dyn Implementation,
    stable: Config,
    initial_value: i64,
    options: &StabilityOptions,
) -> Option<StableFreeze> {
    let t = stable.history().len();
    let mut config = stable;
    // Let process 0 run fetch&inc operations repeatedly until some operation
    // op0 returns exactly the number of fetch&inc operations invoked before
    // it (counting from the initial value).
    let p = ProcessId(0);
    let mut v0 = None;
    for _ in 0..options.solo_step_budget {
        let invoked_before = config.history().operations().len() as i64;
        config.push_operation(p, FetchIncrement::fetch_inc());
        let response = config.run_solo_until_complete(p, options.solo_step_budget)?;
        let value = response.as_int()?;
        if value == initial_value + invoked_before {
            v0 = Some(invoked_before + 1);
            break;
        }
    }
    let v0 = v0?;
    let steps_before_freeze = config.steps();
    // Freeze: capture base-object states and per-process local variables.
    let frozen = FrozenImplementation {
        name: "frozen fetch&increment (Proposition 18)".to_owned(),
        base: config.clone_base_objects(),
        logics: (0..config.processes())
            .map(|i| config.clone_process_logic(ProcessId(i)))
            .collect(),
    };
    Some(StableFreeze {
        implementation: OffsetFetchInc::new(frozen, v0),
        offset: v0,
        stabilization_index: t,
        steps_before_freeze,
    })
}

/// An implementation whose initial state is a captured configuration of
/// another implementation: the base objects and each process's local
/// variables start exactly as they were at the freeze point.
#[derive(Debug)]
pub struct FrozenImplementation {
    name: String,
    base: Vec<Box<dyn BaseObject>>,
    logics: Vec<Box<dyn ProcessLogic>>,
}

impl Implementation for FrozenImplementation {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn processes(&self) -> usize {
        self.logics.len()
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        self.base.clone()
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        self.logics[process.index()].clone()
    }
}

/// Wraps a fetch&increment implementation and subtracts a constant offset
/// from every response — the "return `v − v0`" step of Proposition 18.
#[derive(Debug)]
pub struct OffsetFetchInc {
    inner: FrozenImplementation,
    offset: i64,
}

impl OffsetFetchInc {
    /// Creates the offset wrapper.
    pub fn new(inner: FrozenImplementation, offset: i64) -> Self {
        OffsetFetchInc { inner, offset }
    }

    /// The offset subtracted from every response.
    pub fn offset(&self) -> i64 {
        self.offset
    }
}

impl Implementation for OffsetFetchInc {
    fn name(&self) -> String {
        format!("{} − {}", self.inner.name(), self.offset)
    }

    fn processes(&self) -> usize {
        self.inner.processes()
    }

    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        self.inner.initial_base_objects()
    }

    fn new_process(&self, process: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(OffsetLogic {
            inner: self.inner.new_process(process),
            offset: self.offset,
        })
    }
}

/// Programme wrapper that subtracts the offset from completed responses.
#[derive(Debug)]
struct OffsetLogic {
    inner: Box<dyn ProcessLogic>,
    offset: i64,
}

impl ProcessLogic for OffsetLogic {
    fn begin(&mut self, invocation: Invocation) {
        self.inner.begin(invocation);
    }

    fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
        match self.inner.step(previous_response) {
            TaskStep::Complete(v) => {
                let adjusted = v
                    .as_int()
                    .map(|i| Value::from(i - self.offset))
                    .unwrap_or(v);
                TaskStep::Complete(adjusted)
            }
            access => access,
        }
    }

    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(OffsetLogic {
            inner: self.inner.clone(),
            offset: self.offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::objects;
    use crate::explorer::{terminal_histories, ExploreOptions};
    use crate::program::LocalSpecImplementation;
    use evlin_checker::fi;
    use std::sync::Arc;

    /// A linearizable fetch&increment implementation that defers to a
    /// linearizable fetch&increment base object (one access per operation).
    #[derive(Debug, Clone)]
    struct DirectFetchInc {
        processes: usize,
    }

    #[derive(Debug, Clone)]
    struct DirectLogic {
        accessed: bool,
    }

    impl Implementation for DirectFetchInc {
        fn name(&self) -> String {
            "direct fetch&increment".into()
        }
        fn processes(&self) -> usize {
            self.processes
        }
        fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
            vec![objects::fetch_increment(0)]
        }
        fn new_process(&self, _p: ProcessId) -> Box<dyn ProcessLogic> {
            Box::new(DirectLogic { accessed: false })
        }
    }

    impl ProcessLogic for DirectLogic {
        fn begin(&mut self, _invocation: Invocation) {
            self.accessed = false;
        }
        fn step(&mut self, previous_response: Option<Value>) -> TaskStep {
            if !self.accessed {
                self.accessed = true;
                TaskStep::Access {
                    object: 0,
                    invocation: FetchIncrement::fetch_inc(),
                }
            } else {
                TaskStep::Complete(previous_response.expect("base object response"))
            }
        }
        fn clone_box(&self) -> Box<dyn ProcessLogic> {
            Box::new(self.clone())
        }
    }

    fn small_options() -> StabilityOptions {
        StabilityOptions {
            extension_ops_per_process: 2,
            extension_depth: 24,
            max_configs: 100_000,
            solo_step_budget: 1_000,
            reduction: Reduction::None,
            fault_budget: 0,
            store: StoreConfig::Mem,
        }
    }

    #[test]
    fn linearizable_implementation_is_stable_at_the_start() {
        let imp = DirectFetchInc { processes: 2 };
        let config = Config::initial(&imp, &Workload::new(vec![Vec::new(), Vec::new()]));
        assert!(is_stable(&config, 0, &small_options()));
    }

    #[test]
    fn reduced_stability_checks_agree_with_unreduced() {
        let direct = DirectFetchInc { processes: 2 };
        let stable = Config::initial(&direct, &Workload::new(vec![Vec::new(), Vec::new()]));
        let local = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let unstable = Config::initial(&local, &Workload::new(vec![Vec::new(), Vec::new()]));
        for reduction in [
            Reduction::SleepSet,
            Reduction::Symmetry,
            Reduction::SleepSetSymmetry,
        ] {
            let options = StabilityOptions {
                reduction,
                ..small_options()
            };
            assert!(is_stable(&stable, 0, &options), "{reduction:?}");
            assert!(!is_stable(&unstable, 0, &options), "{reduction:?}");
        }
    }

    #[test]
    fn stability_does_not_survive_a_transient_fault_budget() {
        // Fault-free the direct implementation is stable immediately, but a
        // single corruption of the shared counter skips responses, so no
        // configuration is *fault-tolerantly* stable at budget 1.
        let imp = DirectFetchInc { processes: 2 };
        let config = Config::initial(&imp, &Workload::new(vec![Vec::new(), Vec::new()]));
        assert!(is_stable(&config, 0, &small_options()));
        let faulty = StabilityOptions {
            fault_budget: 1,
            ..small_options()
        };
        assert!(!is_stable(&config, 0, &faulty));
    }

    #[test]
    fn local_copy_implementation_is_never_stable() {
        // The no-communication fetch&increment is weakly consistent but its
        // executions produce duplicate responses forever, so no configuration
        // is stable.
        let imp = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), 2);
        let config = Config::initial(&imp, &Workload::new(vec![Vec::new(), Vec::new()]));
        assert!(!is_stable(&config, 0, &small_options()));
    }

    #[test]
    fn freezing_a_direct_implementation_yields_a_linearizable_one() {
        let imp = DirectFetchInc { processes: 2 };
        let freeze = stable_to_linearizable(&imp, 2, 1, 0, &small_options())
            .expect("a stable configuration must exist");
        // The warm-up performed 2 operations, plus op0 = 3 invocations.
        assert!(freeze.offset >= 1);
        // Every execution of the frozen implementation is linearizable with
        // initial value 0 (responses are offset back to 0, 1, 2, …).
        let histories = terminal_histories(
            &freeze.implementation,
            &Workload::uniform(2, FetchIncrement::fetch_inc(), 2),
            ExploreOptions {
                max_depth: 24,
                max_configs: 100_000,
            },
        );
        assert!(!histories.is_empty());
        for h in histories {
            assert_eq!(fi::is_linearizable(&h, 0), Ok(true));
        }
    }

    #[test]
    fn offset_wrapper_subtracts_from_responses() {
        let imp = DirectFetchInc { processes: 1 };
        let config = Config::initial(&imp, &Workload::new(vec![Vec::new()]));
        let frozen = FrozenImplementation {
            name: "frozen".into(),
            base: config.clone_base_objects(),
            logics: vec![config.clone_process_logic(ProcessId(0))],
        };
        let offset_imp = OffsetFetchInc::new(frozen, 5);
        assert_eq!(offset_imp.offset(), 5);
        assert!(offset_imp.name().contains("5"));
        let mut c = Config::initial(
            &offset_imp,
            &Workload::uniform(1, FetchIncrement::fetch_inc(), 1),
        );
        c.run_solo_until_complete(ProcessId(0), 100);
        let ops = c.history().complete_operations();
        assert_eq!(ops[0].response, Some(Value::from(-5i64)));
    }
}
