//! Base objects: the shared primitives implementations are built from.

use evlin_history::ProcessId;
use evlin_spec::{Invocation, ObjectType, Value};
use std::fmt;
use std::sync::Arc;

/// How a base object's state depends on process identities.
///
/// Consulted by the symmetry reduction of [`crate::engine`] before it merges
/// configurations that differ only by a renaming of the processes: every base
/// object in the configuration must be [`PidDependence::Independent`] or
/// [`PidDependence::Permutable`], otherwise canonicalization is disabled
/// (plain deduplication still applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PidDependence {
    /// The state never records which process performed an access (for
    /// example a plain register): renaming processes leaves the object
    /// untouched.
    Independent,
    /// The state mentions process ids, and the object knows how to rename
    /// them ([`BaseObject::permute_processes`] is overridden consistently
    /// with its `Debug` output).
    Permutable,
    /// Unknown — the conservative default.  Symmetry reduction is disabled
    /// for configurations containing such an object.
    Opaque,
}

/// A shared base object accessed by atomic steps.
///
/// `invoke` performs one operation atomically and returns its response.  Base
/// objects must be cloneable (via [`BaseObject::clone_box`]) so that whole
/// configurations can be cloned during exhaustive exploration, and they must
/// expose their state (via [`BaseObject::state_value`]) so that the
/// Proposition 18 freezing machinery can re-initialize an implementation from
/// a captured configuration.
///
/// Base objects are also `Send`: configurations holding them migrate between
/// worker threads during parallel exploration ([`crate::explorer::explore_par`]).
pub trait BaseObject: fmt::Debug + Send + Sync {
    /// Atomically applies `invocation` on behalf of process `process` and
    /// returns the response.
    fn invoke(&mut self, process: ProcessId, invocation: &Invocation) -> Value;

    /// Clones the object into a new box.
    fn clone_box(&self) -> Box<dyn BaseObject>;

    /// A snapshot of the object's current abstract state.
    fn state_value(&self) -> Value;

    /// The name of the object's type (for diagnostics).
    fn type_name(&self) -> String;

    /// How the object's state depends on process identities (see
    /// [`PidDependence`]).  Defaults to the conservative
    /// [`PidDependence::Opaque`], which disables symmetry reduction.
    fn pid_dependence(&self) -> PidDependence {
        PidDependence::Opaque
    }

    /// Renames every process id recorded in the object's state: process `p`
    /// becomes `perm[p]`.  Must be overridden by objects declaring
    /// [`PidDependence::Permutable`]; the default no-op is only correct for
    /// [`PidDependence::Independent`] objects.
    fn permute_processes(&mut self, _perm: &[usize]) {}

    /// The number of distinct *transient-fault corruptions* of the object's
    /// current state that the fault-injection layer ([`crate::fault`]) may
    /// apply.  Each index in `0..corruption_count()` names one
    /// reachable-but-different state the object can be corrupted to; the
    /// enumeration must be a deterministic function of the current state.
    /// Objects that cannot enumerate such states (the conservative default)
    /// return 0 and are never corrupted.
    fn corruption_count(&self) -> usize {
        0
    }

    /// Corrupts the object's state to its `index`-th enumerable corruption.
    ///
    /// # Panics
    ///
    /// May panic when `index >= corruption_count()`; the default panics
    /// unconditionally (objects declaring no corruptions are never asked).
    fn corrupt(&mut self, index: usize) {
        panic!(
            "base object {} declares no corruptions (corrupt({index}))",
            self.type_name()
        );
    }
}

impl Clone for Box<dyn BaseObject> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A linearizable (atomic) base object of any deterministic
/// [`ObjectType`] — registers, compare&swap, fetch&increment, test&set,
/// queues, …  Every access is applied directly to the sequential
/// specification, so the object is trivially linearizable.
#[derive(Clone)]
pub struct SpecObject {
    ty: Arc<dyn ObjectType>,
    state: Value,
}

impl SpecObject {
    /// Creates an object of the given type in the type's first initial state.
    pub fn new(ty: Arc<dyn ObjectType>) -> Self {
        let state = ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        SpecObject { ty, state }
    }

    /// Creates an object of the given type in an explicit state.
    pub fn with_state(ty: Arc<dyn ObjectType>, state: Value) -> Self {
        SpecObject { ty, state }
    }

    /// The object's current state.
    pub fn state(&self) -> &Value {
        &self.state
    }

    /// The object's type.
    pub fn object_type(&self) -> &Arc<dyn ObjectType> {
        &self.ty
    }

    /// The states a transient fault may corrupt this object to: the first
    /// [`crate::fault::CORRUPTION_STATE_CAP`] states reachable from the
    /// type's first initial state (by sampled invocations, breadth-first),
    /// minus the current state.  Deterministic in the current state, which is
    /// what keeps fault enumeration stable under exploration and symmetry
    /// canonicalization (the spec state never mentions process ids).
    fn corruption_states(&self) -> Vec<Value> {
        let initial = self
            .ty
            .initial_states()
            .into_iter()
            .next()
            .expect("object types must have at least one initial state");
        self.ty
            .reachable_states(&initial, crate::fault::CORRUPTION_STATE_CAP)
            .into_iter()
            .filter(|s| s != &self.state)
            .collect()
    }
}

impl fmt::Debug for SpecObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpecObject({} = {})", self.ty.name(), self.state)
    }
}

impl BaseObject for SpecObject {
    fn invoke(&mut self, _process: ProcessId, invocation: &Invocation) -> Value {
        match self.ty.apply_deterministic(&self.state, invocation) {
            Ok((response, next)) => {
                self.state = next;
                response
            }
            Err(err) => panic!(
                "invalid access to linearizable base object {}: {err}",
                self.ty.name()
            ),
        }
    }

    fn clone_box(&self) -> Box<dyn BaseObject> {
        Box::new(self.clone())
    }

    fn state_value(&self) -> Value {
        self.state.clone()
    }

    fn type_name(&self) -> String {
        self.ty.name().to_owned()
    }

    // The sequential specification ignores the caller's identity, so the
    // state can never depend on process ids.
    fn pid_dependence(&self) -> PidDependence {
        PidDependence::Independent
    }

    fn corruption_count(&self) -> usize {
        self.corruption_states().len()
    }

    fn corrupt(&mut self, index: usize) {
        let states = self.corruption_states();
        self.state = states
            .get(index)
            .unwrap_or_else(|| {
                panic!(
                    "corrupt({index}) out of range for {} ({} corruptions)",
                    self.ty.name(),
                    states.len()
                )
            })
            .clone();
    }
}

/// Convenience constructors for the base objects used by the algorithms.
pub mod objects {
    use super::*;
    use evlin_spec::{CompareAndSwap, Consensus, FetchIncrement, Register, TestAndSet};

    /// A linearizable read/write register initialized to `initial`.
    pub fn register(initial: Value) -> Box<dyn BaseObject> {
        Box::new(SpecObject::with_state(
            Arc::new(Register::new(initial.clone())),
            initial,
        ))
    }

    /// A linearizable register initialized to `⊥`.
    pub fn bottom_register() -> Box<dyn BaseObject> {
        register(Value::Bottom)
    }

    /// A linearizable compare&swap register initialized to `initial`.
    pub fn cas(initial: Value) -> Box<dyn BaseObject> {
        Box::new(SpecObject::with_state(
            Arc::new(CompareAndSwap::new(initial.clone())),
            initial,
        ))
    }

    /// A linearizable fetch&increment object initialized to `initial`.
    pub fn fetch_increment(initial: i64) -> Box<dyn BaseObject> {
        Box::new(SpecObject::with_state(
            Arc::new(FetchIncrement::starting_at(initial)),
            Value::from(initial),
        ))
    }

    /// A linearizable test&set object, initially unset.
    pub fn test_and_set() -> Box<dyn BaseObject> {
        Box::new(SpecObject::new(Arc::new(TestAndSet::new())))
    }

    /// A linearizable consensus object, initially undecided.
    pub fn consensus() -> Box<dyn BaseObject> {
        Box::new(SpecObject::new(Arc::new(Consensus::new())))
    }
}

/// An append-only, single-writer announce log: `append(v)` adds a value (only
/// the owning process is expected to call it) and `read_all()` returns the
/// list of values appended so far.
///
/// This is the register structure used by the Figure 1 wrapper (Proposition
/// 11): the paper uses an unbounded array `R_i[0, 1, 2, …]` of single-writer
/// registers per process; a single append-only log per process preserves the
/// algorithm's structure (announce before computing, scan all announcements)
/// while staying finite-state per configuration.
#[derive(Debug, Clone, Default)]
pub struct AnnounceLog {
    entries: Vec<Value>,
}

impl AnnounceLog {
    /// Creates an empty announce log.
    pub fn new() -> Self {
        AnnounceLog {
            entries: Vec::new(),
        }
    }

    /// The `append(v)` invocation.
    pub fn append(v: Value) -> Invocation {
        Invocation::unary("append", v)
    }

    /// The `read_all()` invocation.
    pub fn read_all() -> Invocation {
        Invocation::nullary("read_all")
    }
}

impl BaseObject for AnnounceLog {
    fn invoke(&mut self, _process: ProcessId, invocation: &Invocation) -> Value {
        match invocation.method() {
            "append" => {
                let v = invocation
                    .arg(0)
                    .cloned()
                    .expect("append requires an argument");
                self.entries.push(v);
                Value::Unit
            }
            "read_all" => Value::List(self.entries.clone()),
            other => panic!("invalid announce-log invocation: {other}"),
        }
    }

    fn clone_box(&self) -> Box<dyn BaseObject> {
        Box::new(self.clone())
    }

    fn state_value(&self) -> Value {
        Value::List(self.entries.clone())
    }

    fn type_name(&self) -> String {
        "announce-log".to_owned()
    }

    // Deliberately left `PidDependence::Opaque` (the default): the log itself
    // ignores the caller's identity, but the *values* appended by the Figure 1
    // wrapper embed process ids, which a renaming could not reach.

    // A transient fault on an announce log *loses one announcement* — the
    // channel-fault model of Dolev et al. transplanted to the paper's
    // announce-before-compute structure.  Variant `i` removes entry `i`.
    fn corruption_count(&self) -> usize {
        self.entries.len()
    }

    fn corrupt(&mut self, index: usize) {
        assert!(
            index < self.entries.len(),
            "corrupt({index}) out of range for announce-log ({} entries)",
            self.entries.len()
        );
        self.entries.remove(index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{CompareAndSwap, FetchIncrement, Register};

    #[test]
    fn spec_object_register_behaviour() {
        let mut r = objects::register(Value::from(0i64));
        assert_eq!(r.invoke(ProcessId(0), &Register::read()), Value::from(0i64));
        assert_eq!(
            r.invoke(ProcessId(1), &Register::write(Value::from(9i64))),
            Value::Unit
        );
        assert_eq!(r.invoke(ProcessId(0), &Register::read()), Value::from(9i64));
        assert_eq!(r.state_value(), Value::from(9i64));
        assert_eq!(r.type_name(), "register");
    }

    #[test]
    fn spec_object_cas_and_fetch_inc() {
        let mut c = objects::cas(Value::from(0i64));
        assert_eq!(
            c.invoke(
                ProcessId(0),
                &CompareAndSwap::cas(Value::from(0i64), Value::from(1i64))
            ),
            Value::Bool(true)
        );
        assert_eq!(
            c.invoke(
                ProcessId(1),
                &CompareAndSwap::cas(Value::from(0i64), Value::from(2i64))
            ),
            Value::Bool(false)
        );

        let mut x = objects::fetch_increment(5);
        assert_eq!(
            x.invoke(ProcessId(0), &FetchIncrement::fetch_inc()),
            Value::from(5i64)
        );
        assert_eq!(
            x.invoke(ProcessId(0), &FetchIncrement::fetch_inc()),
            Value::from(6i64)
        );
    }

    #[test]
    fn cloning_is_deep() {
        let mut a = objects::register(Value::from(0i64));
        let mut b = a.clone();
        a.invoke(ProcessId(0), &Register::write(Value::from(1i64)));
        assert_eq!(a.state_value(), Value::from(1i64));
        assert_eq!(b.state_value(), Value::from(0i64));
        b.invoke(ProcessId(0), &Register::write(Value::from(2i64)));
        assert_eq!(a.state_value(), Value::from(1i64));
    }

    #[test]
    #[should_panic(expected = "invalid access")]
    fn invalid_invocation_panics() {
        let mut r = objects::register(Value::from(0i64));
        r.invoke(ProcessId(0), &Invocation::nullary("bogus"));
    }

    #[test]
    fn announce_log_appends_and_reads() {
        let mut log = AnnounceLog::new();
        assert_eq!(
            log.invoke(ProcessId(0), &AnnounceLog::read_all()),
            Value::list([])
        );
        log.invoke(ProcessId(0), &AnnounceLog::append(Value::from(3i64)));
        log.invoke(ProcessId(0), &AnnounceLog::append(Value::sym("x")));
        assert_eq!(
            log.invoke(ProcessId(1), &AnnounceLog::read_all()),
            Value::list([Value::from(3i64), Value::sym("x")])
        );
        assert_eq!(log.type_name(), "announce-log");
    }
}
