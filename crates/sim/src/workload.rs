//! Workloads: the high-level operations each process is asked to perform.

use evlin_spec::Invocation;

/// The sequence of high-level operations each process performs in a run.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    per_process: Vec<Vec<Invocation>>,
}

impl Workload {
    /// Creates a workload from an explicit per-process list of operations.
    pub fn new(per_process: Vec<Vec<Invocation>>) -> Self {
        Workload { per_process }
    }

    /// A uniform workload: every one of `processes` processes performs the
    /// same invocation `repeat` times.
    pub fn uniform(processes: usize, invocation: Invocation, repeat: usize) -> Self {
        Workload {
            per_process: (0..processes)
                .map(|_| vec![invocation.clone(); repeat])
                .collect(),
        }
    }

    /// A workload where process `i` performs the single operation `ops[i]`.
    pub fn one_shot(ops: Vec<Invocation>) -> Self {
        Workload {
            per_process: ops.into_iter().map(|op| vec![op]).collect(),
        }
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.per_process.len()
    }

    /// The operations of process `i`.
    pub fn operations(&self, i: usize) -> &[Invocation] {
        &self.per_process[i]
    }

    /// Total number of operations across all processes.
    pub fn total_operations(&self) -> usize {
        self.per_process.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::{Consensus, FetchIncrement, Value};

    #[test]
    fn uniform_workload() {
        let w = Workload::uniform(3, FetchIncrement::fetch_inc(), 4);
        assert_eq!(w.processes(), 3);
        assert_eq!(w.total_operations(), 12);
        assert_eq!(w.operations(1).len(), 4);
    }

    #[test]
    fn one_shot_workload() {
        let w = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        assert_eq!(w.processes(), 2);
        assert_eq!(w.total_operations(), 2);
        assert_eq!(w.operations(0), &[Consensus::propose(Value::from(0i64))]);
    }

    #[test]
    fn explicit_workload_may_be_asymmetric() {
        let w = Workload::new(vec![
            vec![FetchIncrement::fetch_inc(); 2],
            Vec::new(),
            vec![FetchIncrement::fetch_inc()],
        ]);
        assert_eq!(w.processes(), 3);
        assert_eq!(w.total_operations(), 3);
        assert!(w.operations(1).is_empty());
    }
}
