//! Differential tests for the visited-store seam: on seeded random small
//! configurations, the three [`StoreConfig`] backends must be
//! *observationally identical* — same distinct terminal-history sets, same
//! checker verdicts, same visited/terminal/pruned counts — under every
//! reduction, because the dedup verdict for a `(key, depth)` pair is a set
//! property, not a layout property.  On top of the backends, the resumable
//! drivers are checked end-to-end:
//!
//! * an uninterrupted [`explore_checkpointed`] run equals the plain engine
//!   bit-for-bit (including the byte accounting);
//! * a run killed at random points (simulated SIGKILL via
//!   `abort_after_visits`, which leaves only the last durable checkpoint)
//!   and resumed until completion reproduces the uninterrupted final stats
//!   exactly;
//! * [`explore_partitioned`] totals recompose the single-run stats exactly;
//! * a checkpoint written under different exploration parameters is
//!   rejected instead of silently diverging.
//!
//! The quick tests run fixed seed ranges on every `cargo test`; the
//! `#[ignore]`d extended variants honour `EVLIN_DIFF_CASES` and run in the
//! nightly CI fuzz job.

use evlin_algorithms::{CasFetchInc, GossipFetchInc, NoisyPrefixFetchInc};
use evlin_checker::{linearizability, weak_consistency};
use evlin_history::{History, ObjectUniverse};
use evlin_sim::checkpoint::{self, CheckpointOptions};
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::store::StoreConfig;
use evlin_sim::workload::Workload;
use evlin_spec::{FetchIncrement, ObjectType, Register, TestAndSet, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const STRATEGIES: [Reduction; 4] = [
    Reduction::None,
    Reduction::SleepSet,
    Reduction::Symmetry,
    Reduction::SleepSetSymmetry,
];

/// The non-default backends, sized so the spill store really spills on
/// these trees (budget 256 bytes = 32 records per shard).
const ALT_BACKENDS: [StoreConfig; 2] = [
    StoreConfig::Prefix {
        shards_log2: 2,
        shard_budget: 4096,
    },
    StoreConfig::Spill {
        shards_log2: 2,
        shard_budget: 256,
    },
];

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "evlin-store-diff-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// One random subject: an implementation, a workload for it, bounds, and the
/// universe its histories are checked against (same construction as
/// `reduction_differential.rs`).
struct Case {
    name: String,
    implementation: Box<dyn Implementation>,
    workload: Workload,
    limits: ExploreOptions,
    universe: ObjectUniverse,
}

fn random_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let processes = rng.gen_range(2..4usize);
    let family = rng.gen_range(0..6u32);
    let ops = if family >= 3 && processes > 2 {
        1
    } else {
        rng.gen_range(1..3usize)
    };
    let mut universe = ObjectUniverse::new();
    let (name, implementation, workload): (String, Box<dyn Implementation>, Workload) = match family
    {
        0 => {
            let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
            universe.add_object(FetchIncrement::new());
            (
                format!("local-copy fi ({processes}p×{ops})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        1 => {
            let ty: Arc<dyn ObjectType> = Arc::new(TestAndSet::new());
            universe.add_object(TestAndSet::new());
            (
                format!("local-copy tas ({processes}p×{ops})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::uniform(processes, TestAndSet::test_and_set(), ops),
            )
        }
        2 => {
            let ty: Arc<dyn ObjectType> = Arc::new(Register::new(Value::from(0i64)));
            universe.add_object(Register::new(Value::from(0i64)));
            let mut invocations = Vec::new();
            for k in 0..ops {
                invocations.push(if k % 2 == 0 {
                    Register::write(Value::from(1i64))
                } else {
                    Register::read()
                });
            }
            (
                format!("local-copy register ({processes}p×{ops})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::new(vec![invocations; processes]),
            )
        }
        3 => {
            universe.add_object(FetchIncrement::new());
            (
                format!("cas fetch&inc ({processes}p×{ops})"),
                Box::new(CasFetchInc::new(processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        4 => {
            universe.add_object(FetchIncrement::new());
            (
                format!("noisy-prefix fetch&inc ({processes}p×{ops})"),
                Box::new(NoisyPrefixFetchInc::new(processes, rng.gen_range(0..4i64))),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        _ => {
            universe.add_object(FetchIncrement::new());
            (
                format!("gossip fetch&inc ({processes}p×{ops})"),
                Box::new(GossipFetchInc::new(processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), 1.min(ops)),
            )
        }
    };
    Case {
        name,
        implementation,
        workload,
        limits: ExploreOptions {
            max_depth: rng.gen_range(9..12usize),
            max_configs: 2_000_000,
        },
        universe,
    }
}

/// Engine options with deduplication forced on (the store seam is only
/// exercised by deduplicating explorations) and the given backend.
fn options(case: &Case, reduction: Reduction, store: StoreConfig) -> EngineOptions {
    EngineOptions {
        limits: case.limits,
        workers: Some(1),
        reduction,
        dedup: true,
        store,
        ..EngineOptions::default()
    }
}

/// Explores with the given backend, collecting distinct terminal histories.
fn run_with_store(
    case: &Case,
    reduction: Reduction,
    store: StoreConfig,
) -> (engine::ExploreStats, Vec<History>) {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let max_depth = case.limits.max_depth;
    let stats = engine::explore(
        case.implementation.as_ref(),
        &case.workload,
        &options(case, reduction, store),
        |config, depth| {
            if config.enabled_processes().is_empty() || depth >= max_depth {
                let h = config.history().clone();
                if seen.insert(format!("{h:?}")) {
                    out.push(h);
                }
            }
            Visit::Continue
        },
    );
    assert!(
        !stats.truncated,
        "{}: {reduction:?}/{} truncated — shrink the case",
        case.name,
        store.label()
    );
    (stats, out)
}

fn verdict_set(histories: &[History], universe: &ObjectUniverse) -> BTreeSet<(bool, bool)> {
    histories
        .iter()
        .map(|h| {
            (
                weak_consistency::is_weakly_consistent(h, universe),
                linearizability::is_linearizable(h, universe),
            )
        })
        .collect()
}

fn debug_set(histories: &[History]) -> BTreeSet<String> {
    histories.iter().map(|h| format!("{h:?}")).collect()
}

fn check_backends_seed(seed: u64) {
    let case = random_case(seed);
    for reduction in STRATEGIES {
        let (base_stats, base_terms) = run_with_store(&case, reduction, StoreConfig::Mem);
        assert!(
            !base_terms.is_empty(),
            "seed {seed} ({}): no terminals",
            case.name
        );
        let base_set = debug_set(&base_terms);
        let base_verdicts = verdict_set(&base_terms, &case.universe);
        for backend in ALT_BACKENDS {
            let (stats, terms) = run_with_store(&case, reduction, backend);
            assert_eq!(
                (
                    stats.visited,
                    stats.terminals,
                    stats.pruned,
                    stats.truncated
                ),
                (
                    base_stats.visited,
                    base_stats.terminals,
                    base_stats.pruned,
                    base_stats.truncated
                ),
                "seed {seed} ({}): {reduction:?}/{} changed the engine counts",
                case.name,
                backend.label()
            );
            assert_eq!(
                base_set,
                debug_set(&terms),
                "seed {seed} ({}): {reduction:?}/{} changed the terminal set",
                case.name,
                backend.label()
            );
            assert_eq!(
                base_verdicts,
                verdict_set(&terms, &case.universe),
                "seed {seed} ({}): {reduction:?}/{} changed the verdict set",
                case.name,
                backend.label()
            );
            // The seam's byte accounting responds to the backend (resident
            // only for in-memory stores, spilled + filter when runs exist)
            // but always totals into `bytes_allocated`.
            assert_eq!(stats.bytes_allocated, stats.store_bytes.total());
            if let StoreConfig::Spill { .. } = backend {
                assert!(
                    stats.store_bytes.spilled > 0 || stats.visited < 128,
                    "seed {seed} ({}): spill backend never spilled {} visited states",
                    case.name,
                    stats.visited
                );
            }
        }
    }
}

fn check_resume_seed(seed: u64) {
    let mut case = random_case(seed);
    // Keep the kill/resume loop cheap: each simulated kill redoes up to one
    // checkpoint interval of work.
    case.limits.max_depth = case.limits.max_depth.min(10);
    let reduction = STRATEGIES[(seed % 4) as usize];
    let backend = if seed.is_multiple_of(2) {
        StoreConfig::Spill {
            shards_log2: 2,
            shard_budget: 256,
        }
    } else {
        StoreConfig::Mem
    };
    let engine_options = options(&case, reduction, backend);

    // Reference 1: the plain engine.
    let (plain_stats, plain_terms) = run_with_store(&case, reduction, backend);

    // Reference 2: an uninterrupted checkpointed run — must equal the plain
    // engine bit-for-bit, byte accounting included.
    let dir_ref = temp_dir("ref");
    let ck_ref = CheckpointOptions {
        interval_visits: 25,
        ..CheckpointOptions::new(&dir_ref)
    };
    let mut seen = BTreeSet::new();
    let reference = checkpoint::explore_checkpointed(
        case.implementation.as_ref(),
        &case.workload,
        &engine_options,
        &ck_ref,
        |config, depth| {
            if config.enabled_processes().is_empty() || depth >= case.limits.max_depth {
                seen.insert(format!("{:?}", config.history()));
            }
            Visit::Continue
        },
    )
    .expect("uninterrupted checkpointed run");
    assert!(reference.completed && !reference.resumed);
    assert_eq!(
        reference.stats, plain_stats,
        "seed {seed} ({}): checkpointed run diverged from the plain engine",
        case.name
    );
    assert_eq!(seen, debug_set(&plain_terms));

    // Kill at random points until done; every process run resumes from the
    // last durable checkpoint and the final stats must match exactly.
    let dir_kill = temp_dir("kill");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let mut runs = 0usize;
    let final_stats = loop {
        runs += 1;
        assert!(runs < 10_000, "kill/resume loop made no progress");
        let ck = CheckpointOptions {
            dir: dir_kill.clone(),
            interval_visits: 25,
            // Strictly more than one interval, so every run durably
            // checkpoints before it "crashes".
            abort_after_visits: Some(rng.gen_range(26..90)),
        };
        let run = checkpoint::explore_checkpointed(
            case.implementation.as_ref(),
            &case.workload,
            &engine_options,
            &ck,
            |_, _| Visit::Continue,
        )
        .expect("killed/resumed run");
        assert_eq!(run.resumed, runs > 1);
        if run.completed {
            break run.stats;
        }
    };
    assert_eq!(
        final_stats, reference.stats,
        "seed {seed} ({}): kill/resume diverged from the uninterrupted run after {runs} kills",
        case.name
    );

    // A further invocation hits the done-marker and returns the same stats
    // without re-exploring.
    let ck_done = CheckpointOptions {
        interval_visits: 25,
        ..CheckpointOptions::new(&dir_kill)
    };
    let replay = checkpoint::explore_checkpointed(
        case.implementation.as_ref(),
        &case.workload,
        &engine_options,
        &ck_done,
        |_, _| panic!("a completed checkpoint must not re-visit anything"),
    )
    .expect("done-marker replay");
    assert!(replay.completed && replay.resumed);
    assert_eq!(replay.stats, reference.stats);

    std::fs::remove_dir_all(&dir_ref).ok();
    std::fs::remove_dir_all(&dir_kill).ok();
}

fn check_partitioned_seed(seed: u64) {
    let case = random_case(seed);
    let reduction = STRATEGIES[(seed % 4) as usize];
    let parts_log2 = 1 + (seed % 2) as u32;
    for backend in [
        StoreConfig::Mem,
        StoreConfig::Spill {
            shards_log2: 2,
            shard_budget: 256,
        },
    ] {
        let (single_stats, single_terms) = run_with_store(&case, reduction, backend);
        let mut seen = BTreeSet::new();
        let run = checkpoint::explore_partitioned(
            case.implementation.as_ref(),
            &case.workload,
            &options(&case, reduction, backend),
            parts_log2,
            |config, depth| {
                if config.enabled_processes().is_empty() || depth >= case.limits.max_depth {
                    seen.insert(format!("{:?}", config.history()));
                }
                Visit::Continue
            },
        )
        .expect("partitioned exploration");
        assert_eq!(run.per_partition.len(), 1 << parts_log2);
        assert_eq!(
            (
                run.total.visited,
                run.total.terminals,
                run.total.pruned,
                run.total.truncated
            ),
            (
                single_stats.visited,
                single_stats.terminals,
                single_stats.pruned,
                single_stats.truncated
            ),
            "seed {seed} ({}): {reduction:?}/{} partitioned totals diverged",
            case.name,
            backend.label()
        );
        assert_eq!(
            seen,
            debug_set(&single_terms),
            "seed {seed} ({}): partitioned terminal set diverged",
            case.name
        );
        let partition_sum: usize = run.per_partition.iter().map(|s| s.visited).sum();
        assert_eq!(partition_sum, run.total.visited);
        if backend == StoreConfig::Mem {
            // In-memory bytes are a pure set function, so even the byte
            // accounting recomposes exactly.
            assert_eq!(run.total.store_bytes, single_stats.store_bytes);
        }
        if run.total.visited > 1 && parts_log2 > 0 {
            assert!(
                run.exported > 0,
                "seed {seed} ({}): avalanched keys must cross partitions",
                case.name
            );
        }
    }
}

fn check_parallel_checkpoint_seed(seed: u64) {
    let mut case = random_case(seed);
    case.limits.max_depth = case.limits.max_depth.min(10);
    let reduction = STRATEGIES[(seed % 4) as usize];
    let backend = StoreConfig::Mem;
    let (plain_stats, _) = run_with_store(&case, reduction, backend);
    let dir = temp_dir("par");
    let ck = CheckpointOptions {
        interval_visits: 50,
        ..CheckpointOptions::new(&dir)
    };
    let run = checkpoint::explore_checkpointed_par(
        case.implementation.as_ref(),
        &case.workload,
        &options(&case, reduction, backend),
        &ck,
        |_, _| Visit::Continue,
    )
    .expect("parallel checkpointed run");
    assert!(run.completed);
    // Counts (and in-memory bytes) are worker-order independent set
    // functions; only spill run *boundaries* may differ in parallel.
    assert_eq!(
        (
            run.stats.visited,
            run.stats.terminals,
            run.stats.pruned,
            run.stats.bytes_allocated
        ),
        (
            plain_stats.visited,
            plain_stats.terminals,
            plain_stats.pruned,
            plain_stats.bytes_allocated
        ),
        "seed {seed} ({}): parallel checkpointed counts diverged",
        case.name
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_backends_are_observationally_identical() {
    for seed in 0..8 {
        check_backends_seed(seed);
    }
}

#[test]
fn kill_and_resume_reproduces_uninterrupted_stats() {
    for seed in 0..6 {
        check_resume_seed(seed);
    }
}

#[test]
fn partitioned_exploration_recomposes_single_run_totals() {
    for seed in 0..6 {
        check_partitioned_seed(seed);
    }
}

#[test]
fn parallel_checkpointed_run_matches_sequential_counts() {
    for seed in 0..4 {
        check_parallel_checkpoint_seed(seed);
    }
}

#[test]
fn checkpoint_rejects_mismatched_parameters() {
    let case = random_case(1);
    let dir = temp_dir("mismatch");
    let ck = CheckpointOptions::new(&dir);
    checkpoint::explore_checkpointed(
        case.implementation.as_ref(),
        &case.workload,
        &options(&case, Reduction::SleepSet, StoreConfig::Mem),
        &ck,
        |_, _| Visit::Continue,
    )
    .expect("first run");
    // Same directory, different reduction: the config hash must reject it.
    let err = checkpoint::explore_checkpointed(
        case.implementation.as_ref(),
        &case.workload,
        &options(&case, Reduction::Symmetry, StoreConfig::Mem),
        &ck,
        |_, _| Visit::Continue,
    )
    .expect_err("mismatched parameters must not resume");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).ok();
}

/// Extended nightly run: `EVLIN_DIFF_CASES` seeds (default 200).
#[test]
#[ignore = "long-running; exercised by the nightly fuzz job"]
fn store_backends_agree_extended() {
    let cases: u64 = std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for seed in 3_000..3_000 + cases {
        check_backends_seed(seed);
    }
}

/// Extended nightly kill/resume + partitioning sweep: `EVLIN_DIFF_CASES`
/// seeds (default 100 — each seed runs a full kill/resume loop).
#[test]
#[ignore = "long-running; exercised by the nightly fuzz job"]
fn resumable_and_partitioned_agree_extended() {
    let cases: u64 = std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|n: u64| n / 2)
        .unwrap_or(100);
    for seed in 4_000..4_000 + cases {
        check_resume_seed(seed);
        check_partitioned_seed(seed);
    }
}
