//! Differential tests for fault-bounded exploration: on seeded random small
//! configurations explored with a transient-fault budget
//! (`EngineOptions::fault_budget`), every [`Reduction`] strategy must agree
//! with the unreduced engine on
//!
//! * the set of **distinct terminal histories** — exactly for sleep sets
//!   (faults are dependent with everything, so none may ever be slept), up
//!   to process renaming for the symmetry strategies (a renaming permutes
//!   fault targets along with the processes);
//! * the **verdict set** of those histories (weakly consistent /
//!   linearizable, decided by the checker kernel);
//! * the **incremental fingerprint**: every visited configuration of a
//!   deduplicating faulty exploration must match a from-scratch rehash.
//!
//! A separate monitor test pins the runtime story the fault layer exists
//! for: a corrupted-then-quiescent event stream is *flagged* by the strict
//! online checker and *forgiven* by the `t`-linearizability floater
//! machinery once `t` covers the corrupted prefix.
//!
//! The quick tests run fixed seed ranges on every `cargo test`; the
//! `#[ignore]`d extended tests honour the `EVLIN_DIFF_CASES` environment
//! variable and are exercised by the nightly CI fuzz job.

use evlin_algorithms::CasFetchInc;
use evlin_checker::monitor::{Monitor, MonitorCondition, MonitorConfig, MonitorVerdict};
use evlin_checker::{fi, linearizability, weak_consistency};
use evlin_history::{Event, History, ObjectId, ObjectUniverse, ProcessId};
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::workload::Workload;
use evlin_spec::{FetchIncrement, ObjectType, Register, TestAndSet, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

const STRATEGIES: [Reduction; 4] = [
    Reduction::None,
    Reduction::SleepSet,
    Reduction::Symmetry,
    Reduction::SleepSetSymmetry,
];

/// One random subject: an implementation with corruptible state, a workload,
/// bounds, a fault budget, and the universe its histories are checked
/// against.
struct Case {
    name: String,
    implementation: Box<dyn Implementation>,
    workload: Workload,
    limits: ExploreOptions,
    fault_budget: usize,
    universe: ObjectUniverse,
}

fn random_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fault children multiply the tree at every interior node, so the cases
    // stay deliberately smaller than the fault-free differential's: two
    // processes, shallow depth, and budget 2 only on one-op workloads.
    let processes = 2usize;
    let family = rng.gen_range(0..4u32);
    let ops = rng.gen_range(1..3usize);
    let fault_budget = if ops == 1 {
        rng.gen_range(1..3usize)
    } else {
        1
    };
    let mut universe = ObjectUniverse::new();
    let (name, implementation, workload): (String, Box<dyn Implementation>, Workload) = match family
    {
        0 => {
            let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
            universe.add_object(FetchIncrement::new());
            (
                format!("local-copy fi ({processes}p×{ops}, k={fault_budget})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        1 => {
            let ty: Arc<dyn ObjectType> = Arc::new(TestAndSet::new());
            universe.add_object(TestAndSet::new());
            (
                format!("local-copy tas ({processes}p×{ops}, k={fault_budget})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::uniform(processes, TestAndSet::test_and_set(), ops),
            )
        }
        2 => {
            let ty: Arc<dyn ObjectType> = Arc::new(Register::new(Value::from(0i64)));
            universe.add_object(Register::new(Value::from(0i64)));
            let mut invocations = Vec::new();
            for k in 0..ops {
                invocations.push(if k % 2 == 0 {
                    Register::write(Value::from(1i64))
                } else {
                    Register::read()
                });
            }
            (
                format!("local-copy register ({processes}p×{ops}, k={fault_budget})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::new(vec![invocations; processes]),
            )
        }
        _ => {
            universe.add_object(FetchIncrement::new());
            // Shared corruptible base objects (the cas and the announce
            // registers) rather than corruptible programme state.
            (
                format!("cas fetch&inc ({processes}p×1, k={fault_budget})"),
                Box::new(CasFetchInc::new(processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), 1),
            )
        }
    };
    Case {
        name,
        implementation,
        workload,
        limits: ExploreOptions {
            max_depth: rng.gen_range(8..11usize),
            max_configs: 4_000_000,
        },
        fault_budget,
        universe,
    }
}

fn options(case: &Case, reduction: Reduction) -> EngineOptions {
    EngineOptions {
        limits: case.limits,
        workers: Some(1),
        reduction,
        fault_budget: case.fault_budget,
        ..EngineOptions::default()
    }
}

/// Distinct terminal histories under `reduction` with the case's fault
/// budget (panics on truncation — a truncated exploration is
/// shape-sensitive and must not be compared).
fn distinct_terminals(case: &Case, reduction: Reduction) -> Vec<History> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let max_depth = case.limits.max_depth;
    let stats = engine::explore(
        case.implementation.as_ref(),
        &case.workload,
        &options(case, reduction),
        |config, depth| {
            if config.enabled_processes().is_empty() || depth >= max_depth {
                let h = config.history().clone();
                if seen.insert(format!("{h:?}")) {
                    out.push(h);
                }
            }
            Visit::Continue
        },
    );
    assert!(
        !stats.truncated,
        "{}: {reduction:?} faulty exploration truncated — shrink the case",
        case.name
    );
    out
}

/// The least debug string of a history's orbit under process renaming.
fn canonical_form(history: &History, processes: usize) -> String {
    engine::permutations(processes)
        .iter()
        .map(|perm| {
            let mut renamed = history.clone();
            let map: Vec<ProcessId> = perm.iter().map(|&i| ProcessId(i)).collect();
            renamed.rename_processes(&map);
            format!("{renamed:?}")
        })
        .min()
        .expect("at least the identity renaming")
}

fn canonical_set(histories: &[History], processes: usize) -> BTreeSet<String> {
    histories
        .iter()
        .map(|h| canonical_form(h, processes))
        .collect()
}

fn verdict(history: &History, universe: &ObjectUniverse) -> (bool, bool) {
    (
        weak_consistency::is_weakly_consistent(history, universe),
        linearizability::is_linearizable(history, universe),
    )
}

fn check_seed(seed: u64) {
    let case = random_case(seed);
    let processes = case.workload.processes();
    let baseline = distinct_terminals(&case, Reduction::None);
    assert!(
        !baseline.is_empty(),
        "seed {seed} ({}) explored no terminals",
        case.name
    );
    let baseline_canonical = canonical_set(&baseline, processes);
    let baseline_verdicts: BTreeSet<(bool, bool)> = baseline
        .iter()
        .map(|h| verdict(h, &case.universe))
        .collect();
    for reduction in STRATEGIES {
        if reduction == Reduction::None {
            continue; // the baseline itself
        }
        let reduced = distinct_terminals(&case, reduction);
        match reduction {
            Reduction::None => {}
            Reduction::SleepSet => {
                let lhs: BTreeSet<String> = baseline.iter().map(|h| format!("{h:?}")).collect();
                let rhs: BTreeSet<String> = reduced.iter().map(|h| format!("{h:?}")).collect();
                assert_eq!(
                    lhs, rhs,
                    "seed {seed} ({}): sleep sets changed the faulty terminal set",
                    case.name
                );
            }
            Reduction::Symmetry | Reduction::SleepSetSymmetry => {
                assert_eq!(
                    baseline_canonical,
                    canonical_set(&reduced, processes),
                    "seed {seed} ({}): {reduction:?} changed the canonical faulty terminal set",
                    case.name
                );
            }
        }
        let verdicts: BTreeSet<(bool, bool)> =
            reduced.iter().map(|h| verdict(h, &case.universe)).collect();
        assert_eq!(
            baseline_verdicts, verdicts,
            "seed {seed} ({}): {reduction:?} changed the faulty verdict set",
            case.name
        );
    }
}

/// Fingerprint cross-check under faults: corruption steps route through
/// `Fingerprint::set_obj`/`set_proc`, and every visited configuration of a
/// deduplicating faulty exploration must match a from-scratch rehash.
fn check_fingerprint_seed(seed: u64) {
    let case = random_case(seed);
    for reduction in STRATEGIES {
        let options = EngineOptions {
            limits: case.limits,
            workers: Some(1),
            reduction,
            dedup: true, // forces fingerprint tracking on
            fault_budget: case.fault_budget,
            ..EngineOptions::default()
        };
        let mut checked = 0usize;
        engine::explore(
            case.implementation.as_ref(),
            &case.workload,
            &options,
            |config, _| {
                assert!(
                    config.fingerprint_consistent(),
                    "seed {seed} ({}): {reduction:?} drifted from the full rehash under faults",
                    case.name
                );
                checked += 1;
                Visit::Continue
            },
        );
        assert!(checked > 0, "seed {seed}: nothing visited");
    }
}

#[test]
fn fault_bounded_reductions_agree_with_unreduced_engine() {
    for seed in 0..10 {
        check_seed(seed);
    }
}

#[test]
fn fingerprints_survive_fault_mutations_on_visited_states() {
    for seed in 0..6 {
        check_fingerprint_seed(seed);
    }
}

/// A fetch&inc event stream with a corrupted prefix (a duplicated response,
/// the visible signature of a transient fault) followed by a quiescent,
/// clean continuation.
fn corrupted_then_quiescent_stream() -> (ObjectUniverse, Vec<Event>, History) {
    let mut universe = ObjectUniverse::new();
    let object = universe.add_object(FetchIncrement::new());
    debug_assert_eq!(object, ObjectId(0));
    let p = ProcessId(0);
    let responses = [0i64, 0, 1, 2, 3]; // the second 0 is the corruption
    let mut events = Vec::new();
    for r in responses {
        events.push(Event::invoke(p, object, FetchIncrement::fetch_inc()));
        events.push(Event::respond(p, object, Value::from(r)));
    }
    let history = History::from_events(events.clone());
    (universe, events, history)
}

fn monitor_verdict(condition: MonitorCondition) -> MonitorVerdict {
    let (universe, events, _) = corrupted_then_quiescent_stream();
    let mut monitor = Monitor::new(universe, MonitorConfig::for_condition(condition));
    monitor
        .ingest_all(events)
        .expect("the stream is well-formed");
    monitor.finish().verdict
}

#[test]
fn monitor_flags_then_forgives_a_corrupted_prefix() {
    let (_, _, history) = corrupted_then_quiescent_stream();
    // The strict online checker flags the corruption...
    let strict = monitor_verdict(MonitorCondition::Linearizability);
    assert!(
        matches!(strict, MonitorVerdict::Violation(_)),
        "corrupted stream must be flagged, got {strict:?}"
    );
    // ...a `t` covering the corrupted prefix forgives it through the
    // floater machinery (the offline specialized checker pins the bound)...
    let t = fi::min_stabilization(&history, 0).expect("pure fetch&inc stream");
    assert!(t > 0, "a corrupted stream cannot be 0-linearizable");
    assert_eq!(
        monitor_verdict(MonitorCondition::TLinearizability { t }),
        MonitorVerdict::Ok,
        "the t-lin floaters must forgive the corrupted prefix at t = {t}"
    );
    // ...and so does the liveness half of eventual linearizability, which
    // only asks that *some* t works.
    assert_eq!(
        monitor_verdict(MonitorCondition::StabilizesEventually),
        MonitorVerdict::Ok
    );
    // One less than the stabilization bound still flags: the forgiveness is
    // exactly as wide as the corruption, not a blanket pass.
    assert!(
        matches!(
            monitor_verdict(MonitorCondition::TLinearizability { t: t - 1 }),
            MonitorVerdict::Violation(_)
        ),
        "t - 1 must still be flagged"
    );
}

/// Extended nightly run: `EVLIN_DIFF_CASES` seeds (default 200).
#[test]
#[ignore = "long-running; exercised by the nightly fuzz job"]
fn fault_bounded_reductions_agree_extended() {
    let cases: u64 = std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for seed in 3_000..3_000 + cases {
        check_seed(seed);
    }
}

/// Extended nightly fingerprint cross-check under faults.
#[test]
#[ignore = "long-running; exercised by the nightly fuzz job"]
fn fingerprints_survive_fault_mutations_extended() {
    let cases: u64 = std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for seed in 4_000..4_000 + cases {
        check_fingerprint_seed(seed);
    }
}
