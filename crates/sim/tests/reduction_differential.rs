//! Differential tests for the reduction engine: on seeded random small
//! configurations, every [`Reduction`] strategy must agree with the
//! unreduced engine on
//!
//! * the set of **distinct terminal histories** — exactly for sleep sets,
//!   up to process renaming (canonicalized comparison) for the symmetry
//!   strategies;
//! * the **verdict set** of those histories (weakly consistent /
//!   linearizable, decided by the checker kernel);
//! * **violation findings**: `find_history_violation` with a
//!   process-symmetric predicate reports a violation under a reduction iff
//!   the unreduced engine does.
//!
//! The quick test runs a fixed seed range on every `cargo test`; the
//! `#[ignore]`d extended test honours the `EVLIN_DIFF_CASES` environment
//! variable and is exercised by the nightly CI fuzz job.

use evlin_algorithms::{CasFetchInc, GossipFetchInc, NoisyPrefixFetchInc};
use evlin_checker::{linearizability, weak_consistency};
use evlin_history::{History, ObjectUniverse, ProcessId};
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::workload::Workload;
use evlin_spec::{FetchIncrement, ObjectType, Register, TestAndSet, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

const STRATEGIES: [Reduction; 4] = [
    Reduction::None,
    Reduction::SleepSet,
    Reduction::Symmetry,
    Reduction::SleepSetSymmetry,
];

/// One random subject: an implementation, a workload for it, bounds, and the
/// universe its histories are checked against.
struct Case {
    name: String,
    implementation: Box<dyn Implementation>,
    workload: Workload,
    limits: ExploreOptions,
    universe: ObjectUniverse,
}

fn random_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let processes = rng.gen_range(2..4usize);
    let family = rng.gen_range(0..6u32);
    // Multi-step implementations (CAS retry loops, register scans) grow much
    // deeper trees per operation than the one-step local-copy families; keep
    // their workloads small enough that the *unreduced* engine never hits the
    // visit budget (truncation is shape-sensitive by design, so a truncated
    // baseline would compare junk).
    let ops = if family >= 3 && processes > 2 {
        1
    } else {
        rng.gen_range(1..3usize)
    };
    let mut universe = ObjectUniverse::new();
    let (name, implementation, workload): (String, Box<dyn Implementation>, Workload) = match family
    {
        0 => {
            let ty: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
            universe.add_object(FetchIncrement::new());
            (
                format!("local-copy fi ({processes}p×{ops})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        1 => {
            let ty: Arc<dyn ObjectType> = Arc::new(TestAndSet::new());
            universe.add_object(TestAndSet::new());
            (
                format!("local-copy tas ({processes}p×{ops})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::uniform(processes, TestAndSet::test_and_set(), ops),
            )
        }
        2 => {
            let ty: Arc<dyn ObjectType> = Arc::new(Register::new(Value::from(0i64)));
            universe.add_object(Register::new(Value::from(0i64)));
            // Mixed reads and writes, still uniform across processes.
            let mut invocations = Vec::new();
            for k in 0..ops {
                invocations.push(if k % 2 == 0 {
                    Register::write(Value::from(1i64))
                } else {
                    Register::read()
                });
            }
            (
                format!("local-copy register ({processes}p×{ops})"),
                Box::new(LocalSpecImplementation::new(ty, processes)),
                Workload::new(vec![invocations; processes]),
            )
        }
        3 => {
            universe.add_object(FetchIncrement::new());
            (
                format!("cas fetch&inc ({processes}p×{ops})"),
                Box::new(CasFetchInc::new(processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        4 => {
            universe.add_object(FetchIncrement::new());
            (
                format!("noisy-prefix fetch&inc ({processes}p×{ops})"),
                Box::new(NoisyPrefixFetchInc::new(processes, rng.gen_range(0..4i64))),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), ops),
            )
        }
        _ => {
            universe.add_object(FetchIncrement::new());
            // Gossip is register-heavy: many commuting accesses, and an
            // asymmetric programme the symmetry detection must veto.
            (
                format!("gossip fetch&inc ({processes}p×{ops})"),
                Box::new(GossipFetchInc::new(processes)),
                Workload::uniform(processes, FetchIncrement::fetch_inc(), 1.min(ops)),
            )
        }
    };
    Case {
        name,
        implementation,
        workload,
        limits: ExploreOptions {
            max_depth: rng.gen_range(10..14usize),
            max_configs: 2_000_000,
        },
        universe,
    }
}

fn options(case: &Case, reduction: Reduction) -> EngineOptions {
    EngineOptions {
        limits: case.limits,
        workers: Some(1),
        reduction,
        ..EngineOptions::default()
    }
}

/// Distinct terminal histories under `reduction` (panics on truncation — a
/// truncated exploration is shape-sensitive and must not be compared).
fn distinct_terminals(case: &Case, reduction: Reduction) -> Vec<History> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let max_depth = case.limits.max_depth;
    let stats = engine::explore(
        case.implementation.as_ref(),
        &case.workload,
        &options(case, reduction),
        |config, depth| {
            if config.enabled_processes().is_empty() || depth >= max_depth {
                let h = config.history().clone();
                if seen.insert(format!("{h:?}")) {
                    out.push(h);
                }
            }
            Visit::Continue
        },
    );
    assert!(
        !stats.truncated,
        "{}: {reduction:?} exploration truncated — shrink the case",
        case.name
    );
    out
}

/// The least debug string of a history's orbit under process renaming — the
/// canonical form the symmetry strategies are compared in, enumerating the
/// orbit with the same [`engine::permutations`] table the engine
/// canonicalizes configurations with.
fn canonical_form(history: &History, processes: usize) -> String {
    engine::permutations(processes)
        .iter()
        .map(|perm| {
            let mut renamed = history.clone();
            let map: Vec<ProcessId> = perm.iter().map(|&i| ProcessId(i)).collect();
            renamed.rename_processes(&map);
            format!("{renamed:?}")
        })
        .min()
        .expect("at least the identity renaming")
}

fn canonical_set(histories: &[History], processes: usize) -> BTreeSet<String> {
    histories
        .iter()
        .map(|h| canonical_form(h, processes))
        .collect()
}

/// Process-symmetric verdicts of a history under the checker kernel.
fn verdict(history: &History, universe: &ObjectUniverse) -> (bool, bool) {
    (
        weak_consistency::is_weakly_consistent(history, universe),
        linearizability::is_linearizable(history, universe),
    )
}

fn check_seed(seed: u64) {
    let case = random_case(seed);
    let processes = case.workload.processes();
    let baseline = distinct_terminals(&case, Reduction::None);
    assert!(
        !baseline.is_empty(),
        "seed {seed} ({}) explored no terminals",
        case.name
    );
    let baseline_canonical = canonical_set(&baseline, processes);
    let baseline_verdicts: BTreeSet<(bool, bool)> = baseline
        .iter()
        .map(|h| verdict(h, &case.universe))
        .collect();
    // A process-symmetric safety predicate: no two completed operations of
    // the same invocation return the same response... for idempotent reads
    // that is expected, so use the coarser "some response is duplicated
    // across processes" signal only for counting-style objects; the
    // universally valid differential signal is the verdict itself.
    let violates = |h: &History| !weak_consistency::is_weakly_consistent(h, &case.universe);
    let baseline_violation = engine::find_history_violation(
        case.implementation.as_ref(),
        &case.workload,
        &options(&case, Reduction::None),
        |h| !violates(h),
    )
    .is_some();

    for reduction in STRATEGIES {
        if reduction == Reduction::None {
            continue; // the baseline itself
        }
        let reduced = distinct_terminals(&case, reduction);
        match reduction {
            Reduction::None => {}
            Reduction::SleepSet => {
                // Exact preservation of the distinct terminal-history set.
                let lhs: BTreeSet<String> = baseline.iter().map(|h| format!("{h:?}")).collect();
                let rhs: BTreeSet<String> = reduced.iter().map(|h| format!("{h:?}")).collect();
                assert_eq!(
                    lhs, rhs,
                    "seed {seed} ({}): sleep sets changed the terminal set",
                    case.name
                );
            }
            Reduction::Symmetry | Reduction::SleepSetSymmetry => {
                assert_eq!(
                    baseline_canonical,
                    canonical_set(&reduced, processes),
                    "seed {seed} ({}): {reduction:?} changed the canonical terminal set",
                    case.name
                );
            }
        }
        let verdicts: BTreeSet<(bool, bool)> =
            reduced.iter().map(|h| verdict(h, &case.universe)).collect();
        assert_eq!(
            baseline_verdicts, verdicts,
            "seed {seed} ({}): {reduction:?} changed the verdict set",
            case.name
        );
        let violation = engine::find_history_violation(
            case.implementation.as_ref(),
            &case.workload,
            &options(&case, reduction),
            |h| !violates(h),
        )
        .is_some();
        assert_eq!(
            baseline_violation, violation,
            "seed {seed} ({}): {reduction:?} changed the violation finding",
            case.name
        );
    }
}

/// Fingerprint cross-check mode: on every configuration visited by a
/// deduplicating exploration, the *incrementally maintained* Zobrist
/// fingerprint must agree with a full from-scratch rebuild
/// ([`evlin_sim::config::Config::fingerprint_consistent`]), and the
/// decomposed permuted fingerprint must agree with physically renaming the
/// configuration and reading its fingerprint.
fn check_fingerprint_seed(seed: u64) {
    let case = random_case(seed);
    let processes = case.workload.processes();
    let perms = engine::permutations(processes);
    for reduction in STRATEGIES {
        let options = EngineOptions {
            limits: case.limits,
            workers: Some(1),
            reduction,
            dedup: true, // forces fingerprint tracking on
            ..EngineOptions::default()
        };
        let mut checked = 0usize;
        engine::explore(
            case.implementation.as_ref(),
            &case.workload,
            &options,
            |config, _| {
                assert!(
                    config.fingerprint_consistent(),
                    "seed {seed} ({}): {reduction:?} drifted from the full rehash",
                    case.name
                );
                // Spot-check the permuted fold against a physical renaming on
                // a deterministic subsample (every 7th state keeps the quick
                // suite fast; the nightly run covers many more seeds).
                if checked.is_multiple_of(7) {
                    for perm in &perms {
                        let folded = config.fingerprint_permuted(perm);
                        let mut renamed = config.clone();
                        renamed.apply_permutation(perm);
                        assert_eq!(
                            folded,
                            renamed.fingerprint(),
                            "seed {seed} ({}): permuted fold diverged for {perm:?}",
                            case.name
                        );
                    }
                }
                checked += 1;
                Visit::Continue
            },
        );
        assert!(checked > 0, "seed {seed}: nothing visited");
    }
}

#[test]
fn reductions_agree_with_unreduced_engine_on_random_configs() {
    for seed in 0..12 {
        check_seed(seed);
    }
}

#[test]
fn fingerprints_match_full_rehash_on_visited_states() {
    for seed in 0..8 {
        check_fingerprint_seed(seed);
    }
}

/// Extended nightly fingerprint cross-check: `EVLIN_DIFF_CASES` seeds.
#[test]
#[ignore = "long-running; exercised by the nightly fuzz job"]
fn fingerprints_match_full_rehash_extended() {
    let cases: u64 = std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    for seed in 2_000..2_000 + cases {
        check_fingerprint_seed(seed);
    }
}

/// Extended nightly run: `EVLIN_DIFF_CASES` seeds (default 300).
#[test]
#[ignore = "long-running; exercised by the nightly fuzz job"]
fn reductions_agree_extended() {
    let cases: u64 = std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    for seed in 1_000..1_000 + cases {
        check_seed(seed);
    }
}
