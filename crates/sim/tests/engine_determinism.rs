//! Property test: engine determinism.
//!
//! Same configuration + same reduction strategy ⇒ identical [`ExploreStats`]
//! (visited, terminals, pruned, truncated) across worker counts and across
//! runs.  CI runs this suite under `RAYON_NUM_THREADS ∈ {1, 4}` (the
//! determinism matrix), so equality against the in-process sequential
//! reference here is equality across the thread-count matrix too.

use evlin_algorithms::{CasFetchInc, GossipFetchInc};
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::workload::Workload;
use evlin_spec::{FetchIncrement, TestAndSet};
use proptest::prelude::*;
use std::sync::Arc;

fn subject(family: usize, processes: usize) -> (Box<dyn Implementation>, Workload) {
    match family {
        0 => (
            Box::new(LocalSpecImplementation::new(
                Arc::new(FetchIncrement::new()),
                processes,
            )),
            Workload::uniform(processes, FetchIncrement::fetch_inc(), 2),
        ),
        1 => (
            Box::new(LocalSpecImplementation::new(
                Arc::new(TestAndSet::new()),
                processes,
            )),
            Workload::uniform(processes, TestAndSet::test_and_set(), 2),
        ),
        2 => (
            Box::new(CasFetchInc::new(processes)),
            Workload::uniform(processes, FetchIncrement::fetch_inc(), 1),
        ),
        _ => (
            Box::new(GossipFetchInc::new(processes)),
            Workload::uniform(processes, FetchIncrement::fetch_inc(), 1),
        ),
    }
}

fn reduction(code: usize) -> Reduction {
    match code {
        0 => Reduction::None,
        1 => Reduction::SleepSet,
        2 => Reduction::Symmetry,
        _ => Reduction::SleepSetSymmetry,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn stats_identical_across_workers_and_runs(
        family in 0..4usize,
        processes in 2..4usize,
        code in 0..4usize,
        dedup_code in 0..2usize,
    ) {
        let (implementation, workload) = subject(family, processes);
        let strategy = reduction(code);
        let dedup = dedup_code == 1;
        let base = EngineOptions {
            limits: ExploreOptions {
                max_depth: 14,
                max_configs: 400_000,
            },
            dedup,
            reduction: strategy,
            ..EngineOptions::default()
        };
        let sequential = engine::explore(
            implementation.as_ref(),
            &workload,
            &EngineOptions { workers: Some(1), ..base },
            |_, _| Visit::Continue,
        );
        prop_assert!(!sequential.truncated, "budget too small for {strategy:?}");
        // Across runs: the sequential walk is reproducible.
        let again = engine::explore(
            implementation.as_ref(),
            &workload,
            &EngineOptions { workers: Some(1), ..base },
            |_, _| Visit::Continue,
        );
        prop_assert_eq!(again, sequential);
        // Across worker counts (the actual pool is rayon's, pinned by
        // RAYON_NUM_THREADS in CI's determinism matrix): identical stats.
        for workers in [1usize, 4] {
            for _run in 0..2 {
                let parallel = engine::explore_shared(
                    implementation.as_ref(),
                    &workload,
                    &EngineOptions {
                        workers: Some(workers),
                        subtrees_per_worker: 4,
                        ..base
                    },
                    |_, _| Visit::Continue,
                );
                prop_assert_eq!(
                    parallel,
                    sequential,
                    "family {} / {:?} / dedup {} diverged at {} workers",
                    family,
                    strategy,
                    dedup,
                    workers
                );
            }
        }
    }
}
