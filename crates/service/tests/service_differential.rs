//! Differential tests for the whole service: N producer clients streaming a
//! recorded history over the wire to M monitor replicas must yield exactly
//! the offline kernel's verdict — for all four consistency conditions, any
//! client count, any shard count, clean and under frame-level transport
//! faults.
//!
//! **Clean transport.**  The recomposed service verdict must equal the
//! offline kernel's verdict on the original history (for object-local
//! conditions this exercises the locality theorem end to end: per-shard
//! verdicts over disjoint object sets recompose into the global verdict),
//! and additionally every shard's own verdict must equal the offline kernel
//! run on that shard's accepted substream.
//!
//! **Faulted transport.**  A lossy link changes which events reach a shard,
//! so the exactness claim moves to the post-fault streams: each shard's
//! verdict must equal the offline kernel on the events that shard's ingest
//! *accepted* (captured via [`ServiceConfig::capture_streams`]).  Corruption
//! changes the stream, never the checking.
//!
//! The nightly fuzz job runs the `#[ignore]`d extended tests with
//! `EVLIN_DIFF_CASES` seeds for deep coverage.

use evlin_checker::kernel::{self, SearchLimits};
use evlin_checker::monitor::{MonitorCondition, MonitorConfig, MonitorVerdict};
use evlin_checker::{eventual, linearizability, t_linearizability, weak_consistency};
use evlin_history::{EventKind, History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_runtime::FaultPlan;
use evlin_service::{MonitorService, ServiceConfig, ServiceReport};
use evlin_spec::{FetchIncrement, Register, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u
}

/// Random well-formed history over two registers and two fetch&inc objects
/// — the same shape as the pipeline differential's generator, widened to
/// four objects so multi-shard routing actually splits the stream.
fn random_history(seed: u64, max_ops: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = universe().object_ids();
    let processes = rng.gen_range(2..4usize);
    let total_ops = rng.gen_range(2..=max_ops);
    let mut plans: Vec<Vec<(evlin_history::ObjectId, evlin_spec::Invocation)>> =
        vec![Vec::new(); processes];
    for _ in 0..total_ops {
        let p = rng.gen_range(0..processes);
        let o = objects[rng.gen_range(0..objects.len())];
        let inv = if o.0 % 2 == 1 {
            FetchIncrement::fetch_inc()
        } else if rng.gen_bool(0.5) {
            Register::write(Value::from(rng.gen_range(1..4i64)))
        } else {
            Register::read()
        };
        plans[p].push((o, inv));
    }
    let mut b = HistoryBuilder::new();
    let mut next_op: Vec<usize> = vec![0; processes];
    let mut pending: Vec<Option<(evlin_history::ObjectId, evlin_spec::Invocation)>> =
        vec![None; processes];
    for _ in 0..total_ops * 8 {
        let p = rng.gen_range(0..processes);
        if let Some((o, inv)) = pending[p].clone() {
            if rng.gen_bool(0.7) {
                let response = if inv.method() == "write" {
                    Value::Unit
                } else {
                    Value::from(rng.gen_range(0..4i64))
                };
                b = b.respond(ProcessId(p), o, response);
                pending[p] = None;
            }
        } else if next_op[p] < plans[p].len() {
            let (o, inv) = plans[p][next_op[p]].clone();
            next_op[p] += 1;
            b = b.invoke(ProcessId(p), o, inv.clone());
            pending[p] = Some((o, inv));
        }
    }
    b.build()
}

/// Runs `history` through an in-process service — `clients` producers,
/// `shards` requested replicas — and returns the report.  Events of a
/// process always go through the same client (the recorder-shard contract);
/// frame capacity and monitor batching are seed-dependent.
fn service_run(
    history: &History,
    clients: usize,
    shards: usize,
    condition: MonitorCondition,
    seed: u64,
    plan: Option<FaultPlan>,
) -> ServiceReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e41_1ce0);
    // Buffers sized so the single-threaded drive never blocks: the k-way
    // merge inside a shard cannot emit past a claimed ring it has heard
    // nothing from, so a blocking send anywhere would cycle back through
    // this thread (which serves every client) into a deadlock.  Real
    // deployments run one thread per client and need no such sizing; a
    // duplicating fault plan at most doubles the frames in flight.
    let slack = 2 * history.len() + 8;
    let config = ServiceConfig {
        shards,
        monitor: MonitorConfig {
            condition,
            min_segment_events: rng.gen_range(1..5usize),
            segment_batch: rng.gen_range(1..4usize),
            ..MonitorConfig::default()
        },
        frame_capacity: rng.gen_range(1..5usize),
        ring_frames: slack,
        conn_frames: slack,
        stage_queue: rng.gen_range(1..3usize),
        fault: plan,
        capture_streams: true,
    };
    let u = universe();
    let (mut handles, service) = MonitorService::in_process(&u, clients, config);
    for event in history.events() {
        let client = &mut handles[event.process.0 % clients];
        match &event.kind {
            EventKind::Invoke(inv) => client.invoke(event.process, event.object, inv.clone()),
            EventKind::Respond(v) => client.respond(event.process, event.object, v.clone()),
        }
    }
    let closed: Vec<_> = handles.into_iter().map(|c| c.finish()).collect();
    let report = service.finish();
    // Every client must have received each shard's reliable final summary,
    // and those summaries must agree with the server-side report.
    for closed in closed {
        let client_report = closed.collect_verdicts();
        assert_eq!(client_report.protocol_errors, 0);
        let finals = client_report.final_summaries();
        assert_eq!(finals.len(), report.shards.len(), "missing final verdicts");
        for (summary, shard) in finals.iter().zip(&report.shards) {
            assert_eq!(**summary, shard.summary);
        }
    }
    report
}

/// `verdict.is_ok()` of the offline kernel for `condition` on `history`.
fn offline_ok(history: &History, condition: MonitorCondition) -> bool {
    let u = universe();
    match condition {
        MonitorCondition::Linearizability => linearizability::is_linearizable(history, &u),
        MonitorCondition::TLinearizability { t } => {
            t_linearizability::is_t_linearizable(history, &u, t)
        }
        MonitorCondition::WeakConsistency => weak_consistency::violations(history, &u).is_empty(),
        MonitorCondition::StabilizesEventually => kernel::check(
            &eventual::StabilizesEventually,
            history,
            &u,
            SearchLimits::default(),
        )
        .is_yes(),
    }
}

/// The per-shard claim: each shard's verdict equals the offline kernel run
/// on the substream its ingest accepted.  Holds on clean *and* faulted
/// transports — faults change the accepted stream, never the checking.
fn assert_shards_match_offline(report: &ServiceReport, condition: MonitorCondition, seed: u64) {
    let streams = report
        .accepted_streams
        .as_ref()
        .expect("capture_streams was set");
    for (shard, stream) in report.shards.iter().zip(streams) {
        assert_ne!(
            shard.report.verdict,
            MonitorVerdict::Unknown,
            "budgets must not be exhausted at test sizes (seed {seed})"
        );
        let accepted = History::from_events(stream.clone());
        assert_eq!(
            shard.report.verdict.is_ok(),
            offline_ok(&accepted, condition),
            "shard {} verdict diverged from offline (seed {seed}, {condition:?})\n{accepted}",
            shard.summary.shard,
        );
    }
}

/// The full claim for one seed.
fn check_service_all_conditions(seed: u64, clients: usize, max_ops: usize, faulty: bool) {
    let h = random_history(seed, max_ops);
    let plan = faulty.then_some(FaultPlan {
        seed: seed ^ 0xfa17,
        lose: 200,
        duplicate: 200,
        reorder: 200,
    });

    // Linearizability is object-local: any shard count is sound, and on a
    // clean transport the recomposed verdict must be the global one.
    for shards in [1, 2, 4] {
        let report = service_run(
            &h,
            clients,
            shards,
            MonitorCondition::Linearizability,
            seed,
            plan,
        );
        assert_eq!(report.shards.len(), shards, "linearizability shards freely");
        assert_shards_match_offline(&report, MonitorCondition::Linearizability, seed);
        if !faulty {
            assert_eq!(
                report.events(),
                h.len() as u64,
                "clean transport lost events"
            );
            assert_eq!(
                report.verdict.is_ok(),
                offline_ok(&h, MonitorCondition::Linearizability),
                "recomposed service verdict diverged (seed {seed}, {shards} shards)\n{h}"
            );
        }
    }

    // The non-local conditions must collapse to one replica regardless of
    // the requested shard count — and then match offline exactly.
    let non_local = [
        MonitorCondition::TLinearizability { t: 1 },
        MonitorCondition::WeakConsistency,
        MonitorCondition::StabilizesEventually,
    ];
    for condition in non_local {
        let report = service_run(&h, clients, 4, condition, seed, plan);
        assert_eq!(
            report.shards.len(),
            1,
            "{condition:?} is not object-local; the router must not split it"
        );
        assert_shards_match_offline(&report, condition, seed);
        if !faulty {
            assert_eq!(
                report.verdict.is_ok(),
                offline_ok(&h, condition),
                "service verdict diverged (seed {seed}, {condition:?})\n{h}"
            );
        }
    }

    // t = 0 degenerates to linearizability and is therefore local again.
    let report = service_run(
        &h,
        clients,
        2,
        MonitorCondition::TLinearizability { t: 0 },
        seed,
        plan,
    );
    assert_eq!(report.shards.len(), 2);
    assert_shards_match_offline(&report, MonitorCondition::TLinearizability { t: 0 }, seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clean_service_matches_offline_for_1_and_3_clients(seed in 0u64..u64::MAX / 2) {
        for clients in [1, 3] {
            check_service_all_conditions(seed, clients, 6, false);
        }
    }

    #[test]
    fn faulty_service_matches_offline_on_the_surviving_streams(seed in 0u64..u64::MAX / 2) {
        for clients in [1, 3] {
            check_service_all_conditions(seed, clients, 6, true);
        }
    }
}

/// Number of cases for the `#[ignore]`d extended (nightly-fuzz) tests.
fn extended_cases() -> u64 {
    std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_clean_service_vs_offline() {
    for seed in 0..extended_cases() / 16 {
        for clients in [1, 3] {
            check_service_all_conditions(seed.wrapping_mul(0x9e37_79b9), clients, 7, false);
        }
    }
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_faulty_service_vs_offline() {
    for seed in 0..extended_cases() / 16 {
        for clients in [1, 3] {
            check_service_all_conditions(seed.wrapping_mul(0x9e37_79b9), clients, 7, true);
        }
    }
}

/// The loopback-TCP transport end to end: same history, same verdict as the
/// offline kernel, clients connecting over real sockets.
#[test]
fn loopback_tcp_service_matches_offline() {
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    let h = random_history(42, 10);
    let u = universe();
    let config = ServiceConfig {
        shards: 2,
        capture_streams: true,
        ..ServiceConfig::default()
    };
    let clients = 2;
    let (addr, service) = MonitorService::loopback_tcp(&u, clients, config).unwrap();
    let seq = Arc::new(AtomicU64::new(0));
    let mut handles: Vec<_> = (0..clients)
        .map(|c| {
            evlin_service::ServiceClient::connect_tcp(addr, c as u32, Arc::clone(&seq), 4).unwrap()
        })
        .collect();
    for event in h.events() {
        let client = &mut handles[event.process.0 % clients];
        match &event.kind {
            EventKind::Invoke(inv) => client.invoke(event.process, event.object, inv.clone()),
            EventKind::Respond(v) => client.respond(event.process, event.object, v.clone()),
        }
    }
    let closed: Vec<_> = handles.into_iter().map(|c| c.finish()).collect();
    let report = service.finish();
    assert_eq!(report.events(), h.len() as u64);
    assert_eq!(
        report.verdict.is_ok(),
        offline_ok(&h, MonitorCondition::Linearizability)
    );
    assert_shards_match_offline(&report, MonitorCondition::Linearizability, 42);
    for closed in closed {
        let finals_seen = closed.collect_verdicts().final_summaries().len();
        assert_eq!(finals_seen, report.shards.len());
    }
}
