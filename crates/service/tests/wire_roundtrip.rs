//! Property tests for the wire codec: `decode ∘ encode = id` over every
//! frame kind, truncation and corruption rejected with the documented
//! errors, and the streaming splitter reassembling frame boundaries.
//!
//! Inputs are seed-driven (the workspace proptest shim has no combinators):
//! each case derives a `StdRng` and builds arbitrary frames — nested values,
//! multi-argument invocations, violation verdicts — from it, so a failure
//! reproduces from the printed seed alone.

use evlin_checker::monitor::{MonitorVerdict, MonitorViolation};
use evlin_history::{Event, EventKind, ObjectId, OpId, ProcessId};
use evlin_service::wire::{
    decode_frame, decode_frame_limited, decode_frame_with, encode_frame, event_batch_fingerprint,
    split_frame, ResumeCursor, VerdictSummary, WireError, WireFrame, LEGACY_VERSION, VERSION,
};
use evlin_spec::{Invocation, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_string(rng: &mut StdRng, max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
        .collect()
}

fn random_value(rng: &mut StdRng, depth: usize) -> Value {
    let top = if depth == 0 { 5 } else { 7 };
    match rng.gen_range(0..top) {
        0 => Value::Unit,
        1 => Value::Bottom,
        2 => Value::Bool(rng.gen()),
        3 => Value::Int(rng.gen::<u64>() as i64),
        4 => Value::Sym(random_string(rng, 8)),
        5 => Value::Pair(
            Box::new(random_value(rng, depth - 1)),
            Box::new(random_value(rng, depth - 1)),
        ),
        _ => {
            let n = rng.gen_range(0..3usize);
            Value::List((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
    }
}

fn random_event(rng: &mut StdRng) -> Event {
    let process = ProcessId(rng.gen_range(0..50usize));
    let object = ObjectId(rng.gen_range(0..50usize));
    if rng.gen_bool(0.5) {
        let method = format!("m{}", random_string(rng, 6));
        let argc = rng.gen_range(0..3usize);
        let args = (0..argc).map(|_| random_value(rng, 2)).collect();
        Event::invoke(process, object, Invocation::new(method, args))
    } else {
        Event::respond(process, object, random_value(rng, 2))
    }
}

fn random_events_frame(rng: &mut StdRng) -> WireFrame {
    let client = rng.gen_range(0..8u32);
    let n = rng.gen_range(0..6usize);
    let events: Vec<(u64, Event)> = (0..n)
        .map(|_| (rng.gen::<u64>(), random_event(rng)))
        .collect();
    WireFrame::Events {
        client,
        frame_seq: rng.gen(),
        fingerprint: event_batch_fingerprint(client, &events),
        events,
    }
}

fn random_verdict(rng: &mut StdRng) -> MonitorVerdict {
    match rng.gen_range(0..3u32) {
        0 => MonitorVerdict::Ok,
        1 => MonitorVerdict::Unknown,
        _ => MonitorVerdict::Violation(MonitorViolation {
            segment_start: rng.gen_range(0..1_000_000usize),
            segment_len: rng.gen_range(0..10_000usize),
            object: rng
                .gen_bool(0.5)
                .then(|| ObjectId(rng.gen_range(0..100usize))),
            op: rng.gen_bool(0.5).then(|| OpId(rng.gen_range(0..100usize))),
            detail: random_string(rng, 40),
        }),
    }
}

fn random_cursor(rng: &mut StdRng) -> ResumeCursor {
    ResumeCursor {
        frames: rng.gen(),
        events: rng.gen(),
        chain: rng.gen(),
    }
}

fn random_frame(rng: &mut StdRng) -> WireFrame {
    match rng.gen_range(0..10u32) {
        0 => {
            // Only spoken versions round-trip; unknown ones are rejected at
            // decode (covered by `version_gate_rejects_cleanly`).
            let version = if rng.gen_bool(0.5) {
                VERSION
            } else {
                LEGACY_VERSION
            };
            WireFrame::Hello {
                client: rng.gen(),
                version,
                session: if version == LEGACY_VERSION {
                    0
                } else {
                    rng.gen()
                },
                resume: (version == VERSION && rng.gen_bool(0.5)).then(|| random_cursor(rng)),
            }
        }
        1 => WireFrame::Ack {
            client: rng.gen(),
            session: rng.gen(),
            cursor: random_cursor(rng),
        },
        2 => WireFrame::Ping { token: rng.gen() },
        3 => WireFrame::Pong { token: rng.gen() },
        4 => WireFrame::Overloaded {
            client: rng.gen(),
            retry_after_ms: rng.gen(),
        },
        5 => WireFrame::Verdict(VerdictSummary {
            shard: rng.gen(),
            round: rng.gen(),
            events: rng.gen(),
            checked_ops: rng.gen(),
            fingerprint: rng.gen(),
            last: rng.gen(),
            verdict: random_verdict(rng),
        }),
        6 => WireFrame::Shutdown {
            client: rng.gen(),
            events_sent: rng.gen(),
            stream_fingerprint: rng.gen(),
        },
        // Event frames carry the interesting payloads; weight them.
        _ => random_events_frame(rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `decode(encode(f)) = f` for every frame kind, both through the
    /// one-shot decoder and through a shared long-lived interner.
    #[test]
    fn encode_decode_round_trips_every_frame_kind(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut interner = Vec::new();
        for _ in 0..8 {
            let frame = random_frame(&mut rng);
            let bytes = encode_frame(&frame);
            prop_assert_eq!(decode_frame(&bytes).as_ref(), Ok(&frame));
            prop_assert_eq!(decode_frame_with(&bytes, &mut interner), Ok(frame));
        }
    }

    /// Every strict prefix of a frame is rejected: fewer than 5 bytes is a
    /// truncation, anything longer contradicts its own length prefix.
    #[test]
    fn truncation_is_rejected_with_the_right_error(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = random_frame(&mut rng);
        let bytes = encode_frame(&frame);
        let announced = bytes.len() - 4;
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { needed: 5, have }) => {
                    prop_assert!(cut < 5 && have == cut);
                }
                Err(WireError::LengthMismatch { announced: a, have }) => {
                    prop_assert!(cut >= 5 && a == announced && have == cut - 4);
                }
                other => panic!("cut {cut} of {} gave {other:?}", bytes.len()),
            }
        }
    }

    /// Single-byte corruption of an event frame can never deliver altered
    /// event content as a valid event frame: either the decoder rejects the
    /// bytes (structure or fingerprint), or the decoded events are identical
    /// (the flip hit a non-semantic byte such as a boolean's nonzero byte).
    #[test]
    fn corruption_never_alters_decoded_event_content(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = random_events_frame(&mut rng);
        let WireFrame::Events { events: ref original, .. } = frame else { unreachable!() };
        let bytes = encode_frame(&frame);
        for _ in 0..16 {
            let mut corrupted = bytes.clone();
            let idx = rng.gen_range(4..corrupted.len());
            corrupted[idx] ^= rng.gen_range(1..=255u8);
            match decode_frame(&corrupted) {
                Err(_) => {}
                Ok(WireFrame::Events { events, .. }) => {
                    prop_assert_eq!(&events, original, "corrupt byte {} slipped through", idx);
                }
                // Tag corruption may legally re-parse as another frame kind;
                // the replica's direction/state checks reject those.
                Ok(_) => {}
            }
        }
    }

    /// Corrupting a byte the fingerprint covers (a sequence number or event
    /// payload) is rejected as exactly a fingerprint mismatch.
    #[test]
    fn payload_corruption_is_a_fingerprint_mismatch(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = rng.gen_range(0..8u32);
        let events = vec![(rng.gen::<u64>(), random_event(&mut rng))];
        let frame = WireFrame::Events {
            client,
            frame_seq: rng.gen(),
            fingerprint: event_batch_fingerprint(client, &events),
            events,
        };
        let mut bytes = encode_frame(&frame);
        // The first event's sequence number starts after the 4-byte length
        // prefix and the 17-byte events header (tag, client, frame_seq,
        // count); its raw little-endian bytes always re-parse, so the only
        // guard that can fire is the fingerprint.
        let idx = 4 + 17 + rng.gen_range(0..8usize);
        bytes[idx] ^= rng.gen_range(1..=255u8);
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::FingerprintMismatch { .. })
        ));
    }

    /// A byte stream of concatenated frames splits back into exactly those
    /// frames, and partial tails are reported as incomplete, not as errors.
    #[test]
    fn split_frame_reassembles_concatenated_streams(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<WireFrame> = (0..rng.gen_range(1..5usize))
            .map(|_| random_frame(&mut rng))
            .collect();
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode_frame(frame));
        }
        // A strict prefix of the final frame must read as incomplete.
        let cut = rng.gen_range(0..stream.len());
        let mut reassembled = Vec::new();
        let mut rest: &[u8] = &stream;
        while let Some((head, tail)) = split_frame(rest).unwrap() {
            reassembled.push(decode_frame(head).unwrap());
            rest = tail;
        }
        prop_assert_eq!(reassembled, frames.clone());
        prop_assert!(rest.is_empty());
        let mut partial: &[u8] = &stream[..cut];
        while let Some((head, tail)) = split_frame(partial).unwrap() {
            decode_frame(head).unwrap();
            partial = tail;
        }
        prop_assert!(partial.len() < stream.len());
    }

    /// The version gate: an old (version-1) replica meeting any version-2
    /// construct — a resume hello, an ack, a liveness probe, an overload
    /// rejection — returns exactly `UnsupportedVersion`, never a panic or a
    /// structural mis-decode; legacy frames keep decoding under the cap.
    #[test]
    fn version_gate_rejects_cleanly(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut interner = Vec::new();
        let v2_frames = [
            WireFrame::Hello {
                client: rng.gen(),
                version: VERSION,
                session: rng.gen(),
                resume: rng.gen_bool(0.5).then(|| random_cursor(&mut rng)),
            },
            WireFrame::Ack {
                client: rng.gen(),
                session: rng.gen(),
                cursor: random_cursor(&mut rng),
            },
            WireFrame::Ping { token: rng.gen() },
            WireFrame::Pong { token: rng.gen() },
            WireFrame::Overloaded { client: rng.gen(), retry_after_ms: rng.gen() },
        ];
        for frame in &v2_frames {
            let bytes = encode_frame(frame);
            prop_assert!(
                matches!(
                    decode_frame_limited(&bytes, &mut interner, LEGACY_VERSION),
                    Err(WireError::UnsupportedVersion(_)),
                ),
                "{frame:?}"
            );
            // The modern decoder accepts the same bytes.
            prop_assert_eq!(decode_frame(&bytes).as_ref(), Ok(frame));
        }
        // Version-1 frames pass both decoders unchanged.
        let legacy = [
            WireFrame::Hello {
                client: rng.gen(),
                version: LEGACY_VERSION,
                session: 0,
                resume: None,
            },
            random_events_frame(&mut rng),
            WireFrame::Shutdown {
                client: rng.gen(),
                events_sent: rng.gen(),
                stream_fingerprint: rng.gen(),
            },
        ];
        for frame in legacy {
            let bytes = encode_frame(&frame);
            prop_assert_eq!(
                decode_frame_limited(&bytes, &mut interner, LEGACY_VERSION).as_ref(),
                Ok(&frame)
            );
            prop_assert_eq!(decode_frame(&bytes), Ok(frame));
        }
        // A hello announcing a version nobody speaks is rejected by its
        // exact number, even by the modern decoder.
        let future: u16 = rng.gen_range(3..u16::MAX);
        let mut bytes = encode_frame(&WireFrame::Hello {
            client: 1,
            version: VERSION,
            session: 0,
            resume: None,
        });
        bytes[9..11].copy_from_slice(&future.to_le_bytes());
        prop_assert_eq!(
            decode_frame(&bytes),
            Err(WireError::UnsupportedVersion(future))
        );
    }
}

/// The interner only ever canonicalizes zero-argument invocations — two
/// frames with the same nullary method decode to `Invocation`s sharing one
/// allocation, and the sharing is invisible to equality.
#[test]
fn interner_reuses_nullary_invocations_across_frames() {
    let event = |seq: u64| {
        (
            seq,
            Event::invoke(ProcessId(0), ObjectId(0), Invocation::nullary("fetch_inc")),
        )
    };
    let frame = |events: Vec<(u64, Event)>| {
        let fingerprint = event_batch_fingerprint(1, &events);
        encode_frame(&WireFrame::Events {
            client: 1,
            frame_seq: 0,
            events,
            fingerprint,
        })
    };
    let mut interner = Vec::new();
    let a = decode_frame_with(&frame(vec![event(0)]), &mut interner).unwrap();
    let b = decode_frame_with(&frame(vec![event(1)]), &mut interner).unwrap();
    assert_eq!(interner.len(), 1);
    let inv = |f: &WireFrame| match f {
        WireFrame::Events { events, .. } => match &events[0].1.kind {
            EventKind::Invoke(inv) => inv.clone(),
            _ => unreachable!(),
        },
        _ => unreachable!(),
    };
    assert_eq!(inv(&a), inv(&b));
}
