//! Integration tests for the crash-recoverable service: session resumption,
//! journaled replica replay, heartbeats, overload shedding and typed retry
//! exhaustion — every path exercised over real loopback TCP sockets.
//!
//! The organizing claim is *exactly-once despite everything*: connections
//! die mid-frame, replica pools are killed and rebuilt from journals, whole
//! processes "crash" (a new [`RecoverableService`] binds over the old
//! journal directory) — and the monitor still checks precisely the recorded
//! history, once, with a verdict equal to the offline kernel's.

use evlin_checker::monitor::{MonitorCondition, MonitorConfig};
use evlin_history::{EventKind, History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_service::{
    ClientRecoveryConfig, ReconnectChaos, RecoverableClient, RecoverableService, RecoveryConfig,
    RecoveryReport,
};
use evlin_spec::{FetchIncrement, Register, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

fn universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u
}

/// Random well-formed history — same generator shape as the service
/// differential, so verdict coverage includes both outcomes.
fn random_history(seed: u64, max_ops: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = universe().object_ids();
    let processes = rng.gen_range(2..4usize);
    let total_ops = rng.gen_range(2..=max_ops);
    let mut plans: Vec<Vec<(evlin_history::ObjectId, evlin_spec::Invocation)>> =
        vec![Vec::new(); processes];
    for _ in 0..total_ops {
        let p = rng.gen_range(0..processes);
        let o = objects[rng.gen_range(0..objects.len())];
        let inv = if o.0 % 2 == 1 {
            FetchIncrement::fetch_inc()
        } else if rng.gen_bool(0.5) {
            Register::write(Value::from(rng.gen_range(1..4i64)))
        } else {
            Register::read()
        };
        plans[p].push((o, inv));
    }
    let mut b = HistoryBuilder::new();
    let mut next_op: Vec<usize> = vec![0; processes];
    let mut pending: Vec<Option<(evlin_history::ObjectId, evlin_spec::Invocation)>> =
        vec![None; processes];
    for _ in 0..total_ops * 8 {
        let p = rng.gen_range(0..processes);
        if let Some((o, inv)) = pending[p].clone() {
            if rng.gen_bool(0.7) {
                let response = if inv.method() == "write" {
                    Value::Unit
                } else {
                    Value::from(rng.gen_range(0..4i64))
                };
                b = b.respond(ProcessId(p), o, response);
                pending[p] = None;
            }
        } else if next_op[p] < plans[p].len() {
            let (o, inv) = plans[p][next_op[p]].clone();
            next_op[p] += 1;
            b = b.invoke(ProcessId(p), o, inv.clone());
            pending[p] = Some((o, inv));
        }
    }
    b.build()
}

fn linearizability_offline(h: &History, u: &ObjectUniverse) -> bool {
    evlin_checker::linearizability::is_linearizable(h, u)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "evjl-suite-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A recovery config tuned for fast tests: small frames, quick heartbeat.
fn test_config(journal_dir: PathBuf, slots: usize, shards: usize) -> RecoveryConfig {
    let mut config = RecoveryConfig::new(journal_dir, slots);
    config.service = evlin_service::ServiceConfig {
        shards,
        monitor: MonitorConfig::for_condition(MonitorCondition::Linearizability),
        capture_streams: true,
        ..evlin_service::ServiceConfig::default()
    };
    config.heartbeat = Duration::from_millis(100);
    config
}

/// Drives `history` through `clients` recoverable clients against `addr`,
/// calling `between(i)` after event `i` (the restart/crash injection hook).
/// Returns the closed clients — callers collect verdicts *after*
/// [`RecoverableService::finish`] hangs up the verdict plane.
fn drive(
    addr: std::net::SocketAddr,
    clients: usize,
    history: &History,
    client_config: impl Fn(u32) -> ClientRecoveryConfig,
    mut between: impl FnMut(usize),
) -> Vec<evlin_service::ClosedRecoverableClient> {
    let seq = Arc::new(AtomicU64::new(0));
    let mut handles: Vec<_> = (0..clients)
        .map(|c| {
            RecoverableClient::connect_tcp(
                addr,
                c as u32,
                0x5E55_0000 + c as u64 + 1,
                Arc::clone(&seq),
                client_config(c as u32),
            )
            .expect("initial connect")
        })
        .collect();
    for (i, event) in history.events().iter().enumerate() {
        let client = &mut handles[event.process.0 % clients];
        match &event.kind {
            EventKind::Invoke(inv) => client.invoke(event.process, event.object, inv.clone()),
            EventKind::Respond(v) => client.respond(event.process, event.object, v.clone()),
        }
        between(i);
    }
    handles
        .into_iter()
        .map(|c| c.finish().expect("client retry budget held"))
        .collect()
}

/// The exactness claim, shared by every test below: the service checked the
/// whole history exactly once, every replay re-folded to the journal's
/// chain, and the recomposed verdict equals the offline kernel's.
fn assert_exact(report: &RecoveryReport, history: &History, seed: u64) {
    assert_eq!(
        report.events(),
        history.len() as u64,
        "exactly-once violated (seed {seed}): {} events checked, {} recorded",
        report.events(),
        history.len()
    );
    assert_eq!(report.replay_chain_mismatches, 0, "replay diverged");
    let offline = linearizability_offline(history, &universe());
    assert_eq!(
        report.verdict.is_ok(),
        offline,
        "verdict diverged from offline (seed {seed})\n{history}"
    );
    // The same claim per shard, on the shard's accepted substream.
    let streams = report.accepted_streams.as_ref().expect("streams captured");
    for (shard, stream) in report.shards.iter().zip(streams) {
        let accepted = History::from_events(stream.clone());
        assert_eq!(
            shard.report.verdict.is_ok(),
            linearizability_offline(&accepted, &universe()),
            "shard {} diverged from offline (seed {seed})",
            shard.summary.shard
        );
    }
}

#[test]
fn clean_run_is_exactly_once_with_durable_acks() {
    for seed in [3u64, 17, 40] {
        let h = random_history(seed, 12);
        let dir = temp_dir("clean");
        let u = universe();
        let clients = 2;
        let (addr, service) =
            RecoverableService::bind(&u, test_config(dir.clone(), clients, 2)).unwrap();
        let closed = drive(
            addr,
            clients,
            &h,
            |c| ClientRecoveryConfig {
                frame_capacity: 3,
                ..ClientRecoveryConfig::standard(seed ^ c as u64)
            },
            |_| {},
        );
        let report = service.finish();
        let reports: Vec<_> = closed.into_iter().map(|c| c.collect_verdicts()).collect();
        assert_exact(&report, &h, seed);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.recovered_at_startup, 0);
        // Every staged frame was acked durable before the client shut down
        // (the attach handshake acks too, so acks ≥ frames), first try.
        for client in &reports {
            assert!(client.stats.acks >= client.stats.frames);
            assert_eq!(client.stats.reconnects, 0);
            assert_eq!(client.stats.retransmitted_frames, 0);
            assert_eq!(client.stats.protocol_errors, 0);
            assert_eq!(
                client.final_summaries().len(),
                report.shards.len(),
                "missing reliable finals"
            );
        }
        // Sessions saw no anomalies on a clean transport.
        for s in &report.sessions {
            assert_eq!(s.resume_rejections, 0);
            assert_eq!(s.corrupt_frames, 0);
            assert_eq!(s.shutdown_mismatches, 0);
            assert_eq!(s.shutdowns, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_pool_is_rebuilt_from_journals_mid_run() {
    for seed in [7u64, 23] {
        let h = random_history(seed, 14);
        let dir = temp_dir("restart");
        let u = universe();
        let clients = 2;
        let (addr, service) =
            RecoverableService::bind(&u, test_config(dir.clone(), clients, 2)).unwrap();
        // Kill the pool twice, a third and two-thirds of the way in.
        let kills = [h.len() / 3, 2 * h.len() / 3];
        let closed = drive(
            addr,
            clients,
            &h,
            |c| ClientRecoveryConfig {
                frame_capacity: 2,
                ..ClientRecoveryConfig::standard(seed ^ c as u64)
            },
            |i| {
                if kills.contains(&i) {
                    service.kill_and_restart().expect("restart");
                }
            },
        );
        let report = service.finish();
        let reports: Vec<_> = closed.into_iter().map(|c| c.collect_verdicts()).collect();
        assert!(report.restarts >= 2, "both kills must restart the pool");
        assert_exact(&report, &h, seed);
        for client in &reports {
            assert_eq!(client.stats.protocol_errors, 0);
            assert_eq!(client.final_summaries().len(), report.shards.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn process_crash_recovers_from_the_journal_directory_alone() {
    let seed = 11u64;
    let h = random_history(seed, 12);
    let dir = temp_dir("crash");
    let u = universe();
    let clients = 2;

    // First life: stream everything, finish the clients (acks make the
    // journals complete), then drop the service.
    let (addr, service) =
        RecoverableService::bind(&u, test_config(dir.clone(), clients, 2)).unwrap();
    let closed = drive(
        addr,
        clients,
        &h,
        |c| ClientRecoveryConfig {
            frame_capacity: 3,
            ..ClientRecoveryConfig::standard(seed ^ c as u64)
        },
        |_| {},
    );
    let first = service.finish();
    drop(closed);
    assert_exact(&first, &h, seed);

    // Second life: a fresh bind over the same directory must rebuild the
    // full monitor state from disk alone — no clients connect at all.
    let (_, reborn) = RecoverableService::bind(&u, test_config(dir.clone(), clients, 2)).unwrap();
    let report = reborn.finish();
    assert_eq!(report.recovered_at_startup, clients);
    assert!(report.replayed_frames > 0, "startup replay must run");
    assert_exact(&report, &h, seed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_chaos_never_loses_or_duplicates_events() {
    for seed in [5u64, 29] {
        let h = random_history(seed, 14);
        let dir = temp_dir("chaos");
        let u = universe();
        let clients = 2;
        let (addr, service) =
            RecoverableService::bind(&u, test_config(dir.clone(), clients, 2)).unwrap();
        let closed = drive(
            addr,
            clients,
            &h,
            |c| ClientRecoveryConfig {
                frame_capacity: 1,
                chaos: Some(ReconnectChaos {
                    seed: seed ^ c as u64,
                    split_per_mille: 300,
                    kill_after_min: 2,
                    kill_after_span: 3,
                }),
                ..ClientRecoveryConfig::standard(seed ^ c as u64)
            },
            |_| {},
        );
        let report = service.finish();
        let reports: Vec<_> = closed.into_iter().map(|c| c.collect_verdicts()).collect();
        assert_exact(&report, &h, seed);
        let reconnects: u64 = reports.iter().map(|r| r.stats.reconnects).sum();
        assert!(reconnects > 0, "chaos must actually kill connections");
        let resumes: u64 = report.sessions.iter().map(|s| s.resumes).sum();
        assert!(resumes > 0, "reconnects must resume the session");
        for s in &report.sessions {
            assert_eq!(s.resume_rejections, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn overload_shedding_is_typed_and_lossless() {
    let seed = 13u64;
    let h = random_history(seed, 16);
    let dir = temp_dir("overload");
    let u = universe();
    // A tiny backlog bound forces the handler down the shedding path; the
    // client honors `retry_after` and retransmits, so nothing is lost.
    let mut config = test_config(dir.clone(), 1, 2);
    config.overload_backlog = 1;
    let (addr, service) = RecoverableService::bind(&u, config).unwrap();
    let closed = drive(
        addr,
        1,
        &h,
        |c| ClientRecoveryConfig {
            frame_capacity: 1,
            ..ClientRecoveryConfig::standard(seed ^ c as u64)
        },
        |_| {},
    );
    let report = service.finish();
    let reports: Vec<_> = closed.into_iter().map(|c| c.collect_verdicts()).collect();
    assert_exact(&report, &h, seed);
    assert_eq!(reports[0].stats.protocol_errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_endpoint_exhausts_the_retry_budget_typed() {
    // An address nothing listens on: bind, learn the port, drop.
    let addr = {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    };
    let mut config = ClientRecoveryConfig::standard(1);
    config.backoff =
        evlin_service::Backoff::new(1, Duration::from_millis(1), Duration::from_millis(4), 3);
    let seq = Arc::new(AtomicU64::new(0));
    let err = RecoverableClient::connect_tcp(addr, 0, 1, seq, config)
        .err()
        .expect("no listener: the budget must exhaust");
    assert_eq!(err.attempts, 3);
}

#[test]
fn resumed_session_survives_a_server_side_idle_timeout() {
    // A client that pauses longer than the heartbeat gets its *connection*
    // reaped, not its session: the next event reconnects and resumes.
    let dir = temp_dir("idle");
    let u = universe();
    let mut config = test_config(dir.clone(), 1, 1);
    config.heartbeat = Duration::from_millis(30);
    let (addr, service) = RecoverableService::bind(&u, config).unwrap();
    let seq = Arc::new(AtomicU64::new(0));
    let mut client = RecoverableClient::connect_tcp(
        addr,
        0,
        0xA11CE,
        seq,
        ClientRecoveryConfig {
            frame_capacity: 1,
            ..ClientRecoveryConfig::standard(3)
        },
    )
    .unwrap();
    let object = u.object_ids()[1];
    client.invoke(ProcessId(0), object, FetchIncrement::fetch_inc());
    client.respond(ProcessId(0), object, Value::from(0i64));
    client.flush();
    std::thread::sleep(Duration::from_millis(200));
    client.invoke(ProcessId(0), object, FetchIncrement::fetch_inc());
    client.respond(ProcessId(0), object, Value::from(1i64));
    let closed = client.finish().expect("session survives the idle reap");
    let report = service.finish();
    assert_eq!(report.events(), 4);
    assert!(report.verdict.is_ok());
    let _ = closed.collect_verdicts();
    let _ = std::fs::remove_dir_all(&dir);
}
