//! Chaos differential: *N* recoverable clients × *M* replica shards under a
//! random schedule of connection kills, partial writes, pool crashes and
//! restarts must still check **exactly** the recorded history — equal to
//! the offline kernel, for all four consistency conditions.
//!
//! This is a strictly stronger claim than the lossy-transport differential
//! (`service_differential.rs`): there, faults change the accepted stream
//! and the claim retreats to the surviving events.  Here the session layer
//! (journals, acks, window replays, dedup) makes delivery exactly-once, so
//! chaos must change *nothing* — same events, same count, same verdict.
//!
//! The nightly fuzz job runs the `#[ignore]`d extended tests with
//! `EVLIN_DIFF_CASES` seeds for deep coverage.

use evlin_checker::kernel::{self, SearchLimits};
use evlin_checker::monitor::{MonitorCondition, MonitorConfig, MonitorVerdict};
use evlin_checker::{eventual, linearizability, t_linearizability, weak_consistency};
use evlin_history::{EventKind, History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_service::{
    ClientRecoveryConfig, ReconnectChaos, RecoverableClient, RecoverableService, RecoveryConfig,
    RecoveryReport, ServiceConfig,
};
use evlin_spec::{FetchIncrement, Register, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

fn universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u
}

/// Random well-formed history — the differential generator, shared shape.
fn random_history(seed: u64, max_ops: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = universe().object_ids();
    let processes = rng.gen_range(2..4usize);
    let total_ops = rng.gen_range(2..=max_ops);
    let mut plans: Vec<Vec<(evlin_history::ObjectId, evlin_spec::Invocation)>> =
        vec![Vec::new(); processes];
    for _ in 0..total_ops {
        let p = rng.gen_range(0..processes);
        let o = objects[rng.gen_range(0..objects.len())];
        let inv = if o.0 % 2 == 1 {
            FetchIncrement::fetch_inc()
        } else if rng.gen_bool(0.5) {
            Register::write(Value::from(rng.gen_range(1..4i64)))
        } else {
            Register::read()
        };
        plans[p].push((o, inv));
    }
    let mut b = HistoryBuilder::new();
    let mut next_op: Vec<usize> = vec![0; processes];
    let mut pending: Vec<Option<(evlin_history::ObjectId, evlin_spec::Invocation)>> =
        vec![None; processes];
    for _ in 0..total_ops * 8 {
        let p = rng.gen_range(0..processes);
        if let Some((o, inv)) = pending[p].clone() {
            if rng.gen_bool(0.7) {
                let response = if inv.method() == "write" {
                    Value::Unit
                } else {
                    Value::from(rng.gen_range(0..4i64))
                };
                b = b.respond(ProcessId(p), o, response);
                pending[p] = None;
            }
        } else if next_op[p] < plans[p].len() {
            let (o, inv) = plans[p][next_op[p]].clone();
            next_op[p] += 1;
            b = b.invoke(ProcessId(p), o, inv.clone());
            pending[p] = Some((o, inv));
        }
    }
    b.build()
}

/// `verdict.is_ok()` of the offline kernel for `condition` on `history`.
fn offline_ok(history: &History, condition: MonitorCondition) -> bool {
    let u = universe();
    match condition {
        MonitorCondition::Linearizability => linearizability::is_linearizable(history, &u),
        MonitorCondition::TLinearizability { t } => {
            t_linearizability::is_t_linearizable(history, &u, t)
        }
        MonitorCondition::WeakConsistency => weak_consistency::violations(history, &u).is_empty(),
        MonitorCondition::StabilizesEventually => kernel::check(
            &eventual::StabilizesEventually,
            history,
            &u,
            SearchLimits::default(),
        )
        .is_yes(),
    }
}

fn temp_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "evjl-chaos-{tag}-{seed}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One chaos run: `clients` recoverable clients stream `history` to a
/// recoverable service, with seed-derived connection chaos on every client
/// and `pool_kills` pool crashes injected at seed-derived points in the
/// drive.  Returns the service report.
fn chaos_run(
    history: &History,
    clients: usize,
    shards: usize,
    condition: MonitorCondition,
    seed: u64,
    pool_kills: usize,
) -> RecoveryReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5FED);
    let dir = temp_dir("run", seed ^ condition_tag(condition));
    let mut config = RecoveryConfig::new(dir.clone(), clients);
    config.service = ServiceConfig {
        shards,
        monitor: MonitorConfig {
            condition,
            min_segment_events: rng.gen_range(1..5usize),
            segment_batch: rng.gen_range(1..4usize),
            ..MonitorConfig::default()
        },
        capture_streams: true,
        ..ServiceConfig::default()
    };
    config.heartbeat = Duration::from_millis(100);
    let u = universe();
    let (addr, service) = RecoverableService::bind(&u, config).expect("bind");
    let kill_points: Vec<usize> = (0..pool_kills)
        .map(|_| rng.gen_range(0..history.len().max(1)))
        .collect();
    let seq = Arc::new(AtomicU64::new(0));
    let mut handles: Vec<_> = (0..clients)
        .map(|c| {
            RecoverableClient::connect_tcp(
                addr,
                c as u32,
                seed ^ 0x5E55_0000 ^ (c as u64 + 1),
                Arc::clone(&seq),
                ClientRecoveryConfig {
                    frame_capacity: rng.gen_range(1..4usize),
                    chaos: Some(ReconnectChaos {
                        seed: seed ^ c as u64,
                        split_per_mille: 250,
                        kill_after_min: rng.gen_range(2..4u64),
                        kill_after_span: 4,
                    }),
                    ..ClientRecoveryConfig::standard(seed ^ c as u64)
                },
            )
            .expect("initial connect")
        })
        .collect();
    for (i, event) in history.events().iter().enumerate() {
        let client = &mut handles[event.process.0 % clients];
        match &event.kind {
            EventKind::Invoke(inv) => client.invoke(event.process, event.object, inv.clone()),
            EventKind::Respond(v) => client.respond(event.process, event.object, v.clone()),
        }
        if kill_points.contains(&i) {
            service.kill_and_restart().expect("pool restart");
        }
    }
    let closed: Vec<_> = handles
        .into_iter()
        .map(|c| c.finish().expect("client retry budget held"))
        .collect();
    let report = service.finish();
    // Every client got each final-pool shard's reliable final verdict.
    for closed in closed {
        let client = closed.collect_verdicts();
        assert_eq!(client.stats.protocol_errors, 0, "seed {seed}");
        assert_eq!(
            client.final_summaries().len(),
            report.shards.len(),
            "missing reliable finals (seed {seed})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn condition_tag(condition: MonitorCondition) -> u64 {
    match condition {
        MonitorCondition::Linearizability => 1,
        MonitorCondition::TLinearizability { t } => 0x10 | t as u64,
        MonitorCondition::WeakConsistency => 2,
        MonitorCondition::StabilizesEventually => 3,
    }
}

/// The exactness claim under chaos, per shard and recomposed.
fn assert_chaos_exact(
    report: &RecoveryReport,
    history: &History,
    condition: MonitorCondition,
    seed: u64,
) {
    assert_eq!(
        report.events(),
        history.len() as u64,
        "chaos lost or duplicated events (seed {seed}, {condition:?})"
    );
    assert_eq!(report.replay_chain_mismatches, 0, "replay diverged");
    assert_eq!(
        report.verdict.is_ok(),
        offline_ok(history, condition),
        "verdict diverged under chaos (seed {seed}, {condition:?})\n{history}"
    );
    let streams = report.accepted_streams.as_ref().expect("streams captured");
    for (shard, stream) in report.shards.iter().zip(streams) {
        assert_ne!(
            shard.report.verdict,
            MonitorVerdict::Unknown,
            "budgets must not be exhausted at test sizes (seed {seed})"
        );
        let accepted = History::from_events(stream.clone());
        assert_eq!(
            shard.report.verdict.is_ok(),
            offline_ok(&accepted, condition),
            "shard {} diverged under chaos (seed {seed}, {condition:?})",
            shard.summary.shard
        );
    }
}

/// The full claim for one seed: every condition, with connection chaos and
/// seed-derived pool kills.
fn check_chaos_all_conditions(seed: u64, clients: usize, max_ops: usize) {
    let h = random_history(seed, max_ops);

    // Linearizability shards freely; give it the most chaos.
    for shards in [1, 2] {
        let report = chaos_run(
            &h,
            clients,
            shards,
            MonitorCondition::Linearizability,
            seed,
            2,
        );
        assert_eq!(report.shards.len(), shards);
        assert_chaos_exact(&report, &h, MonitorCondition::Linearizability, seed);
    }

    // The non-local conditions collapse to one replica and must *still*
    // recover exactly.
    for condition in [
        MonitorCondition::TLinearizability { t: 1 },
        MonitorCondition::WeakConsistency,
        MonitorCondition::StabilizesEventually,
    ] {
        let report = chaos_run(&h, clients, 4, condition, seed, 1);
        assert_eq!(report.shards.len(), 1, "{condition:?} must not split");
        assert_chaos_exact(&report, &h, condition, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chaos_service_is_exactly_once_for_all_conditions(seed in 0u64..u64::MAX / 2) {
        for clients in [1, 2] {
            check_chaos_all_conditions(seed, clients, 8);
        }
    }
}

/// Number of cases for the `#[ignore]`d extended (nightly-fuzz) tests.
fn extended_cases() -> u64 {
    std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_chaos_vs_offline() {
    for seed in 0..extended_cases() / 64 {
        for clients in [1, 2] {
            check_chaos_all_conditions(seed.wrapping_mul(0x9e37_79b9) | 1, clients, 9);
        }
    }
}
