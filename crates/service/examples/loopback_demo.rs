//! Run the monitoring service over loopback TCP: four producer clients on
//! their own threads stream fetch&increment histories to a pool of four
//! monitor replicas, which check linearizability online and push verdict
//! rounds back over the same sockets.
//!
//! ```text
//! cargo run --release -p evlin-service --example loopback_demo
//! ```

use evlin_checker::monitor::{MonitorCondition, MonitorConfig};
use evlin_history::{ObjectId, ObjectUniverse, ProcessId};
use evlin_service::{MonitorService, ServiceClient, ServiceConfig};
use evlin_spec::{FetchIncrement, Value};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const OBJECTS: usize = 16;
const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 5_000;

fn main() {
    let mut universe = ObjectUniverse::new();
    for _ in 0..OBJECTS {
        universe.add_object(FetchIncrement::new());
    }
    let config = ServiceConfig {
        shards: 4,
        monitor: MonitorConfig::for_condition(MonitorCondition::Linearizability),
        ..ServiceConfig::default()
    };

    let (addr, service) =
        MonitorService::loopback_tcp(&universe, CLIENTS, config).expect("bind loopback");
    println!("service listening on {addr}: {OBJECTS} objects, 4 replica shards");

    // The linearizable ground truth the clients report: one atomic counter
    // per object, fetch-added under a real race.  The global sequence
    // counter is shared so replicas can reassemble real-time order.
    let seq = Arc::new(AtomicU64::new(0));
    let counters: Arc<Vec<AtomicI64>> = Arc::new((0..OBJECTS).map(|_| AtomicI64::new(0)).collect());

    let producers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let seq = Arc::clone(&seq);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect_tcp(addr, c as u32, seq, 256)
                    .expect("connect to service");
                let process = ProcessId(c);
                for i in 0..OPS_PER_CLIENT {
                    let object = ObjectId((c + i) % OBJECTS);
                    client.invoke(process, object, FetchIncrement::fetch_inc());
                    let old = counters[object.0].fetch_add(1, Ordering::SeqCst);
                    client.respond(process, object, Value::Int(old));
                }
                // Hand the closed connection back; verdicts are drained
                // after the service winds down and hangs up (draining here
                // would wait on an end-of-stream that only `finish` sends).
                client.finish()
            })
        })
        .collect();

    let closed: Vec<_> = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread"))
        .collect();
    let report = service.finish();
    let client_reports: Vec<_> = closed.into_iter().map(|c| c.collect_verdicts()).collect();

    println!(
        "verdict: {:?} — {} events checked, {} ops decided, {} verdict rounds",
        report.verdict,
        report.events(),
        report.checked_ops(),
        report.shards.iter().map(|s| s.rounds).sum::<u64>(),
    );
    for shard in &report.shards {
        println!(
            "  shard {}: {:>6} events, {:>5} ops, {} rounds, fast-path segments {}",
            shard.summary.shard,
            shard.report.stats.events,
            shard.report.stats.checked_ops,
            shard.rounds,
            shard.report.stats.fast_path_segments,
        );
    }
    for (c, client_report) in client_reports.iter().enumerate() {
        println!(
            "  client {c}: {} frames, {} events sent, {} verdict rounds received",
            client_report.stats.frames,
            client_report.stats.events,
            client_report.summaries.len(),
        );
    }
    assert!(report.verdict.is_ok(), "demo history is linearizable");
}
