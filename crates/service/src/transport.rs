//! Frame transports: how encoded frames move between clients and replicas.
//!
//! The service is written against two one-direction traits — [`FrameTx`]
//! (send whole encoded frames) and [`FrameRx`] (receive whole encoded
//! frames) — with two shims behind them:
//!
//! * **In-process duplex** ([`duplex`]): a pair of bounded
//!   [`evlin_runtime::channel`]s carrying frame byte vectors.  The
//!   client→replica direction can run behind a
//!   [`evlin_runtime::FaultySender`], which loses, duplicates and reorders
//!   *whole frames* with the same seeded [`FaultPlan`] machinery the
//!   in-process pipeline uses — that is how the differential tests subject
//!   the wire protocol to transport faults deterministically.
//! * **Loopback TCP** ([`tcp_pair`] over `std::net`): real sockets, built
//!   offline with the standard library only.  The frame length prefix is
//!   the stream framing: a reader takes four length bytes, then the body.
//!
//! Both shims deliver *whole frames or nothing* — TCP by read-exact on the
//! announced length, the duplex channel by construction — so the codec layer
//! never sees a split frame and every corruption mode is frame-granular,
//! matching the fault-tolerance contract in `docs/PROTOCOL.md`.

use crate::wire::{WireError, MAX_FRAME_BYTES};
use evlin_runtime::channel::{self, Receiver, Sender, TrySendError};
use evlin_runtime::{FaultPlan, FaultySender};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// The sending half of a frame transport.
///
/// `send` must deliver the frame or report why it could not; `try_send` is
/// the best-effort variant used by the lossy mid-run verdict plane — it
/// returns `Ok(false)` when the frame was dropped because the link was
/// saturated (only the duplex shim ever does; TCP just blocks briefly).
pub trait FrameTx: Send {
    /// Sends one encoded frame, blocking until the link accepts it.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), WireError>;

    /// Sends one encoded frame without blocking; `Ok(false)` means the
    /// frame was dropped on a saturated link.
    fn try_send(&mut self, frame: Vec<u8>) -> Result<bool, WireError> {
        self.send(frame).map(|()| true)
    }

    /// Signals end of stream to the peer's receiver.
    ///
    /// The duplex shim ends the stream when the sender drops, so its `close`
    /// is a no-op; TCP must half-close explicitly, because the receiving
    /// half holds a duplicated descriptor that keeps the socket open.
    fn close(&mut self) {}

    /// Whether a send now would still leave `reserve` slots free.
    ///
    /// The verdict plane calls this before best-effort sends so the
    /// bounded duplex link always has seats left for the final, reliable
    /// per-shard summaries — the reservation that makes those sends
    /// non-blocking.  Links without admission control (TCP, whose kernel
    /// buffers absorb small frames) report `true`.
    fn has_room(&self, _reserve: usize) -> bool {
        true
    }
}

/// The receiving half of a frame transport.
pub trait FrameRx: Send {
    /// Receives the next whole frame; `None` is a clean end of stream.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError>;
}

// ---------------------------------------------------------------------------
// In-process duplex
// ---------------------------------------------------------------------------

enum DuplexSink {
    Clean(Sender<Vec<u8>>),
    Faulty(FaultySender<Vec<u8>>),
}

/// Sending half of an in-process duplex link (see [`duplex`]).
pub struct DuplexTx {
    sink: DuplexSink,
}

/// Receiving half of an in-process duplex link (see [`duplex`]).
pub struct DuplexRx {
    rx: Receiver<Vec<u8>>,
}

/// Builds one direction of an in-process link: a bounded channel of whole
/// frames, optionally behind a frame-granularity fault injector.
///
/// A hung-up receiver turns `send` into an error, never a hang — the
/// shutdown discipline inherited from the runtime channel.
pub fn duplex(capacity: usize, plan: Option<FaultPlan>) -> (DuplexTx, DuplexRx) {
    let (tx, rx) = channel::bounded(capacity);
    let sink = match plan {
        Some(plan) => DuplexSink::Faulty(FaultySender::new(tx, plan)),
        None => DuplexSink::Clean(tx),
    };
    (DuplexTx { sink }, DuplexRx { rx })
}

impl FrameTx for DuplexTx {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), WireError> {
        let result = match &mut self.sink {
            DuplexSink::Clean(tx) => tx.send(frame),
            DuplexSink::Faulty(tx) => tx.send(frame),
        };
        result.map_err(|_| WireError::Transport("peer hung up".into()))
    }

    fn try_send(&mut self, frame: Vec<u8>) -> Result<bool, WireError> {
        match &mut self.sink {
            DuplexSink::Clean(tx) => match tx.try_send(frame) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(_)) => Ok(false),
                Err(TrySendError::Disconnected(_)) => {
                    Err(WireError::Transport("peer hung up".into()))
                }
            },
            // The faulty sink buffers for reordering; best-effort sends go
            // through the same lossy path as everything else.
            DuplexSink::Faulty(tx) => tx
                .send(frame)
                .map(|()| true)
                .map_err(|_| WireError::Transport("peer hung up".into())),
        }
    }

    fn has_room(&self, reserve: usize) -> bool {
        match &self.sink {
            DuplexSink::Clean(tx) => tx.queued() + reserve < tx.capacity(),
            DuplexSink::Faulty(_) => true,
        }
    }
}

impl FrameRx for DuplexRx {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self.rx.recv())
    }
}

// ---------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------

/// Sending half of a TCP link.  Cloneable: the replica's verdict plane and
/// its connection handler share one socket through the inner lock.
#[derive(Clone)]
pub struct TcpTx {
    stream: Arc<Mutex<TcpStream>>,
}

/// Receiving half of a TCP link.
pub struct TcpRx {
    stream: TcpStream,
}

fn io_err(e: std::io::Error) -> WireError {
    WireError::Transport(e.to_string())
}

/// Splits a connected socket into frame halves.
pub fn tcp_pair(stream: TcpStream) -> Result<(TcpTx, TcpRx), WireError> {
    let reader = stream.try_clone().map_err(io_err)?;
    Ok((
        TcpTx {
            stream: Arc::new(Mutex::new(stream)),
        },
        TcpRx { stream: reader },
    ))
}

/// Connects to a listening service endpoint and returns the frame halves.
pub fn tcp_connect(addr: SocketAddr) -> Result<(TcpTx, TcpRx), WireError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    stream.set_nodelay(true).map_err(io_err)?;
    tcp_pair(stream)
}

/// Binds a loopback listener on an ephemeral port.
pub fn loopback_listener() -> Result<TcpListener, WireError> {
    TcpListener::bind(("127.0.0.1", 0)).map_err(io_err)
}

impl TcpTx {
    /// Half-closes the write side so the peer's reader sees end of stream.
    pub fn shutdown_write(&self) {
        if let Ok(stream) = self.stream.lock() {
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }
}

impl FrameTx for TcpTx {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), WireError> {
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| WireError::Transport("socket lock poisoned".into()))?;
        stream.write_all(&frame).map_err(io_err)
    }

    fn close(&mut self) {
        self.shutdown_write();
    }
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let mut prefix = [0u8; 4];
        match self.stream.read_exact(&mut prefix) {
            Ok(()) => {}
            // EOF exactly on a frame boundary is a clean close.
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(io_err(e)),
        }
        let body = u32::from_le_bytes(prefix) as usize;
        if body > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge(body));
        }
        let mut frame = vec![0u8; 4 + body];
        frame[..4].copy_from_slice(&prefix);
        self.stream.read_exact(&mut frame[4..]).map_err(io_err)?;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, WireFrame, VERSION};

    #[test]
    fn duplex_delivers_frames_in_order() {
        let (mut tx, mut rx) = duplex(4, None);
        for client in 0..3 {
            tx.send(encode_frame(&WireFrame::Hello {
                client,
                version: VERSION,
            }))
            .unwrap();
        }
        drop(tx);
        for client in 0..3 {
            let bytes = rx.recv().unwrap().unwrap();
            assert_eq!(
                decode_frame(&bytes).unwrap(),
                WireFrame::Hello {
                    client,
                    version: VERSION
                }
            );
        }
        assert_eq!(rx.recv().unwrap(), None);
    }

    #[test]
    fn duplex_send_errors_after_peer_hangup() {
        let (mut tx, rx) = duplex(1, None);
        drop(rx);
        assert!(tx.send(vec![0; 5]).is_err());
    }

    #[test]
    fn tcp_round_trips_frames_and_closes_cleanly() {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = tcp_pair(stream).unwrap();
            let mut seen = Vec::new();
            while let Some(frame) = rx.recv().unwrap() {
                seen.push(decode_frame(&frame).unwrap());
            }
            seen
        });
        let (mut tx, _rx) = tcp_connect(addr).unwrap();
        let frame = WireFrame::Shutdown {
            client: 1,
            events_sent: 42,
            stream_fingerprint: 7,
        };
        tx.send(encode_frame(&frame)).unwrap();
        tx.shutdown_write();
        assert_eq!(server.join().unwrap(), vec![frame]);
    }
}
