//! Frame transports: how encoded frames move between clients and replicas.
//!
//! The service is written against two one-direction traits — [`FrameTx`]
//! (send whole encoded frames) and [`FrameRx`] (receive whole encoded
//! frames) — with two shims behind them:
//!
//! * **In-process duplex** ([`duplex`]): a pair of bounded
//!   [`evlin_runtime::channel`]s carrying frame byte vectors.  The
//!   client→replica direction can run behind a
//!   [`evlin_runtime::FaultySender`], which loses, duplicates and reorders
//!   *whole frames* with the same seeded [`FaultPlan`] machinery the
//!   in-process pipeline uses — that is how the differential tests subject
//!   the wire protocol to transport faults deterministically.
//! * **Loopback TCP** ([`tcp_pair`] over `std::net`): real sockets, built
//!   offline with the standard library only.  The frame length prefix is
//!   the stream framing: a reader takes four length bytes, then the body.
//!
//! Both shims deliver *whole frames or nothing* — TCP by buffering raw bytes
//! and carving frames at length-prefix boundaries ([`split_frame`]), the
//! duplex channel by construction — so the codec layer never sees a split
//! frame and every corruption mode is frame-granular, matching the
//! fault-tolerance contract in `docs/PROTOCOL.md`.  Receivers additionally
//! support read deadlines ([`FrameRx::set_read_deadline`] /
//! [`FrameRx::recv_timeout`] → [`WireError::PeerTimeout`]) so a silently
//! dead peer can never park a thread forever, and senders can be armed with
//! a [`ChaosPlan`] injecting partial writes and mid-frame connection kills
//! for the chaos differential suite.

use crate::wire::{split_frame, WireError};
use evlin_runtime::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use evlin_runtime::{FaultPlan, FaultySender};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The sending half of a frame transport.
///
/// `send` must deliver the frame or report why it could not; `try_send` is
/// the best-effort variant used by the lossy mid-run verdict plane — it
/// returns `Ok(false)` when the frame was dropped because the link was
/// saturated (only the duplex shim ever does; TCP just blocks briefly).
pub trait FrameTx: Send {
    /// Sends one encoded frame, blocking until the link accepts it.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), WireError>;

    /// Sends one encoded frame without blocking; `Ok(false)` means the
    /// frame was dropped on a saturated link.
    fn try_send(&mut self, frame: Vec<u8>) -> Result<bool, WireError> {
        self.send(frame).map(|()| true)
    }

    /// Signals end of stream to the peer's receiver.
    ///
    /// The duplex shim ends the stream when the sender drops, so its `close`
    /// is a no-op; TCP must half-close explicitly, because the receiving
    /// half holds a duplicated descriptor that keeps the socket open.
    fn close(&mut self) {}

    /// Whether a send now would still leave `reserve` slots free.
    ///
    /// The verdict plane calls this before best-effort sends so the
    /// bounded duplex link always has seats left for the final, reliable
    /// per-shard summaries — the reservation that makes those sends
    /// non-blocking.  Links without admission control (TCP, whose kernel
    /// buffers absorb small frames) report `true`.
    fn has_room(&self, _reserve: usize) -> bool {
        true
    }
}

/// The receiving half of a frame transport.
pub trait FrameRx: Send {
    /// Receives the next whole frame; `None` is a clean end of stream.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError>;

    /// Receives with a deadline: blocks at most `timeout`, then surfaces
    /// [`WireError::PeerTimeout`] if the peer stayed silent.  Partial frame
    /// bytes already read are retained across timeouts — a slow peer is not
    /// a corrupt peer — so a later call resumes mid-frame.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, WireError>;

    /// Installs a standing read deadline on plain [`FrameRx::recv`] calls
    /// (`None` restores blocking reads).  This is the liveness fix for
    /// handler threads: with a deadline set, a silently dead peer turns
    /// into a periodic [`WireError::PeerTimeout`] the caller can answer
    /// with a ping or a hang-up, never a thread parked forever.
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> Result<(), WireError>;
}

// ---------------------------------------------------------------------------
// Chaos: mid-frame kills and partial writes
// ---------------------------------------------------------------------------

/// Seeded byte-level fault plan for a transport's *send* side, extending the
/// whole-frame [`FaultPlan`] faults (loss, duplication, reordering) with the
/// two failure shapes only a byte stream has: **partial writes** (a frame
/// split across multiple syscalls, exercising the reader's reassembly
/// buffer) and **mid-frame kills** (the connection torn down with a strict
/// prefix of a frame written — what a crashed client or an RST mid-`write`
/// leaves on the wire).
///
/// On the in-process duplex shim — which carries whole frames — a kill
/// degrades to delivering a truncated frame and closing, which the codec
/// rejects frame-granularly; splits are a no-op there.  Determinism: the
/// same seed and call sequence produce the same cut points.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    state: u64,
    /// Per-mille probability that a send is split into two writes.
    split_per_mille: u16,
    /// 0-based send index at which the connection is killed mid-frame.
    kill_at_frame: Option<u64>,
    sent: u64,
}

impl ChaosPlan {
    /// A no-fault plan with the given seed; compose with the builders.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            // Xorshift needs a nonzero state.
            state: seed | 1,
            split_per_mille: 0,
            kill_at_frame: None,
            sent: 0,
        }
    }

    /// Splits roughly `per_mille`‰ of sends into two partial writes.
    pub fn split_writes(mut self, per_mille: u16) -> Self {
        self.split_per_mille = per_mille.min(1000);
        self
    }

    /// Kills the connection mid-frame on the `frame`-th send (0-based).
    pub fn kill_at(mut self, frame: u64) -> Self {
        self.kill_at_frame = Some(frame);
        self
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Decides this send's fate: `Kill(cut)` writes only `frame[..cut]` and
    /// tears the link down; `Split(cut)` writes in two halves; `Pass` sends
    /// normally.  `cut` is always a strict, nonzero prefix length.
    fn judge(&mut self, frame_len: usize) -> ChaosVerdict {
        let idx = self.sent;
        self.sent += 1;
        let cut = |r: u64| 1 + (r as usize % frame_len.saturating_sub(1).max(1));
        if self.kill_at_frame == Some(idx) {
            let r = self.next();
            return ChaosVerdict::Kill(cut(r));
        }
        if self.split_per_mille > 0 && frame_len > 1 {
            let roll = self.next() % 1000;
            if roll < self.split_per_mille as u64 {
                let r = self.next();
                return ChaosVerdict::Split(cut(r));
            }
        }
        ChaosVerdict::Pass
    }
}

enum ChaosVerdict {
    Pass,
    Split(usize),
    Kill(usize),
}

// ---------------------------------------------------------------------------
// In-process duplex
// ---------------------------------------------------------------------------

enum DuplexSink {
    Clean(Sender<Vec<u8>>),
    Faulty(FaultySender<Vec<u8>>),
}

/// Sending half of an in-process duplex link (see [`duplex`]).
pub struct DuplexTx {
    sink: DuplexSink,
    chaos: Option<ChaosPlan>,
    killed: bool,
}

/// Receiving half of an in-process duplex link (see [`duplex`]).
pub struct DuplexRx {
    rx: Receiver<Vec<u8>>,
    deadline: Option<Duration>,
}

/// Builds one direction of an in-process link: a bounded channel of whole
/// frames, optionally behind a frame-granularity fault injector.
///
/// A hung-up receiver turns `send` into an error, never a hang — the
/// shutdown discipline inherited from the runtime channel.
pub fn duplex(capacity: usize, plan: Option<FaultPlan>) -> (DuplexTx, DuplexRx) {
    let (tx, rx) = channel::bounded(capacity);
    let sink = match plan {
        Some(plan) => DuplexSink::Faulty(FaultySender::new(tx, plan)),
        None => DuplexSink::Clean(tx),
    };
    (
        DuplexTx {
            sink,
            chaos: None,
            killed: false,
        },
        DuplexRx { rx, deadline: None },
    )
}

impl DuplexTx {
    /// Arms a [`ChaosPlan`] on this sender (kills only; the duplex link
    /// carries whole frames, so split writes do not apply).
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(plan);
    }
}

impl FrameTx for DuplexTx {
    fn send(&mut self, mut frame: Vec<u8>) -> Result<(), WireError> {
        if self.killed {
            return Err(WireError::Transport("chaos: connection killed".into()));
        }
        if let Some(plan) = &mut self.chaos {
            if let ChaosVerdict::Kill(cut) = plan.judge(frame.len()) {
                // Deliver the torn prefix (the peer's decoder rejects it
                // frame-granularly), then die.
                frame.truncate(cut);
                let _ = match &mut self.sink {
                    DuplexSink::Clean(tx) => tx.send(frame),
                    DuplexSink::Faulty(tx) => tx.send(frame),
                };
                self.killed = true;
                return Err(WireError::Transport(
                    "chaos: connection killed mid-frame".into(),
                ));
            }
        }
        let result = match &mut self.sink {
            DuplexSink::Clean(tx) => tx.send(frame),
            DuplexSink::Faulty(tx) => tx.send(frame),
        };
        result.map_err(|_| WireError::Transport("peer hung up".into()))
    }

    fn try_send(&mut self, frame: Vec<u8>) -> Result<bool, WireError> {
        if self.killed {
            return Err(WireError::Transport("chaos: connection killed".into()));
        }
        match &mut self.sink {
            DuplexSink::Clean(tx) => match tx.try_send(frame) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(_)) => Ok(false),
                Err(TrySendError::Disconnected(_)) => {
                    Err(WireError::Transport("peer hung up".into()))
                }
            },
            // The faulty sink buffers for reordering; best-effort sends go
            // through the same lossy path as everything else.
            DuplexSink::Faulty(tx) => tx
                .send(frame)
                .map(|()| true)
                .map_err(|_| WireError::Transport("peer hung up".into())),
        }
    }

    fn has_room(&self, reserve: usize) -> bool {
        match &self.sink {
            DuplexSink::Clean(tx) => tx.queued() + reserve < tx.capacity(),
            DuplexSink::Faulty(_) => true,
        }
    }
}

impl FrameRx for DuplexRx {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match self.deadline {
            Some(deadline) => self.recv_timeout(deadline),
            None => Ok(self.rx.recv()),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, WireError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(RecvTimeoutError::Timeout) => Err(WireError::PeerTimeout),
        }
    }

    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> Result<(), WireError> {
        self.deadline = deadline;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------

/// Sending half of a TCP link.  Cloneable: the replica's verdict plane and
/// its connection handler share one socket through the inner lock.
#[derive(Clone)]
pub struct TcpTx {
    stream: Arc<Mutex<TcpStream>>,
    chaos: Option<ChaosPlan>,
}

/// Receiving half of a TCP link.
///
/// Reads are *buffered*: bytes are pulled from the socket in chunks and
/// frames carved out of the buffer by [`split_frame`], so a read deadline
/// that fires mid-frame keeps the partial bytes — a slow peer resumes where
/// it left off; only silence is reported ([`WireError::PeerTimeout`]).
pub struct TcpRx {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Option<Duration>,
}

fn io_err(e: std::io::Error) -> WireError {
    WireError::Transport(e.to_string())
}

/// Splits a connected socket into frame halves.
pub fn tcp_pair(stream: TcpStream) -> Result<(TcpTx, TcpRx), WireError> {
    let reader = stream.try_clone().map_err(io_err)?;
    Ok((
        TcpTx {
            stream: Arc::new(Mutex::new(stream)),
            chaos: None,
        },
        TcpRx {
            stream: reader,
            buf: Vec::new(),
            deadline: None,
        },
    ))
}

/// Connects to a listening service endpoint and returns the frame halves.
pub fn tcp_connect(addr: SocketAddr) -> Result<(TcpTx, TcpRx), WireError> {
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    stream.set_nodelay(true).map_err(io_err)?;
    tcp_pair(stream)
}

/// Binds a loopback listener on an ephemeral port.
pub fn loopback_listener() -> Result<TcpListener, WireError> {
    TcpListener::bind(("127.0.0.1", 0)).map_err(io_err)
}

impl TcpTx {
    /// Half-closes the write side so the peer's reader sees end of stream.
    pub fn shutdown_write(&self) {
        if let Ok(stream) = self.stream.lock() {
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }

    /// Arms a [`ChaosPlan`] on this sender: partial writes and mid-frame
    /// kills on the real socket.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = Some(plan);
    }
}

impl FrameTx for TcpTx {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), WireError> {
        let verdict = match &mut self.chaos {
            Some(plan) => plan.judge(frame.len()),
            None => ChaosVerdict::Pass,
        };
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| WireError::Transport("socket lock poisoned".into()))?;
        match verdict {
            ChaosVerdict::Pass => stream.write_all(&frame).map_err(io_err),
            ChaosVerdict::Split(cut) => {
                // Two syscalls with a flush between: the bytes all arrive,
                // but never as one read on the peer — reassembly territory.
                stream.write_all(&frame[..cut]).map_err(io_err)?;
                stream.flush().map_err(io_err)?;
                std::thread::yield_now();
                stream.write_all(&frame[cut..]).map_err(io_err)
            }
            ChaosVerdict::Kill(cut) => {
                // A crash mid-write: a strict prefix reaches the wire, then
                // the socket dies in both directions.
                let _ = stream.write_all(&frame[..cut]);
                let _ = stream.flush();
                let _ = stream.shutdown(std::net::Shutdown::Both);
                Err(WireError::Transport(
                    "chaos: connection killed mid-frame".into(),
                ))
            }
        }
    }

    fn close(&mut self) {
        self.shutdown_write();
    }
}

impl TcpRx {
    /// Carves the first whole frame out of the reassembly buffer.
    fn take_buffered(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match split_frame(&self.buf)? {
            Some((head, _)) => {
                let len = head.len();
                let frame = self.buf[..len].to_vec();
                self.buf.drain(..len);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    fn recv_inner(&mut self, deadline: Option<Instant>) -> Result<Option<Vec<u8>>, WireError> {
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            if let Some(deadline) = deadline {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(WireError::PeerTimeout);
                }
                self.stream
                    .set_read_timeout(Some(remaining))
                    .map_err(io_err)?;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF on a frame boundary is a clean close; EOF with
                    // buffered bytes is a torn frame (a mid-frame kill).
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(WireError::Transport(format!(
                            "connection closed mid-frame ({} bytes buffered)",
                            self.buf.len()
                        )))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(WireError::PeerTimeout);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let deadline = self.deadline.map(|d| Instant::now() + d);
        self.recv_inner(deadline)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, WireError> {
        let result = self.recv_inner(Some(Instant::now() + timeout));
        // Restore the standing deadline (or blocking mode) for later recvs.
        let _ = self.stream.set_read_timeout(self.deadline);
        result
    }

    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> Result<(), WireError> {
        self.deadline = deadline;
        self.stream.set_read_timeout(deadline).map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, WireFrame, VERSION};

    #[test]
    fn duplex_delivers_frames_in_order() {
        let (mut tx, mut rx) = duplex(4, None);
        for client in 0..3 {
            tx.send(encode_frame(&WireFrame::Hello {
                client,
                version: VERSION,
                session: 0,
                resume: None,
            }))
            .unwrap();
        }
        drop(tx);
        for client in 0..3 {
            let bytes = rx.recv().unwrap().unwrap();
            assert_eq!(
                decode_frame(&bytes).unwrap(),
                WireFrame::Hello {
                    client,
                    version: VERSION,
                    session: 0,
                    resume: None,
                }
            );
        }
        assert_eq!(rx.recv().unwrap(), None);
    }

    #[test]
    fn duplex_send_errors_after_peer_hangup() {
        let (mut tx, rx) = duplex(1, None);
        drop(rx);
        assert!(tx.send(vec![0; 5]).is_err());
    }

    #[test]
    fn tcp_round_trips_frames_and_closes_cleanly() {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = tcp_pair(stream).unwrap();
            let mut seen = Vec::new();
            while let Some(frame) = rx.recv().unwrap() {
                seen.push(decode_frame(&frame).unwrap());
            }
            seen
        });
        let (mut tx, _rx) = tcp_connect(addr).unwrap();
        let frame = WireFrame::Shutdown {
            client: 1,
            events_sent: 42,
            stream_fingerprint: 7,
        };
        tx.send(encode_frame(&frame)).unwrap();
        tx.shutdown_write();
        assert_eq!(server.join().unwrap(), vec![frame]);
    }

    #[test]
    fn frozen_tcp_peer_surfaces_peer_timeout_not_a_hang() {
        use std::time::Duration;
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let (mut tx, _rx) = tcp_connect(addr).unwrap();
            // Send one whole frame plus a *partial* second frame, then
            // freeze (keep the socket open, write nothing more).
            let whole = encode_frame(&WireFrame::Ping { token: 7 });
            tx.send(whole).unwrap();
            let partial = encode_frame(&WireFrame::Ping { token: 8 });
            tx.send(partial[..partial.len() - 3].to_vec()).unwrap();
            // Hold the connection open until the server is done probing.
            std::thread::sleep(Duration::from_millis(400));
        });
        let (stream, _) = listener.accept().unwrap();
        let (_tx, mut rx) = tcp_pair(stream).unwrap();
        rx.set_read_deadline(Some(Duration::from_millis(50)))
            .unwrap();
        // The whole frame arrives fine.
        let bytes = rx.recv().unwrap().unwrap();
        assert_eq!(decode_frame(&bytes).unwrap(), WireFrame::Ping { token: 7 });
        // The partial frame: every recv reports the silence as a typed
        // timeout — not a hang, not a corruption — and the buffered prefix
        // survives each one.
        for _ in 0..2 {
            assert_eq!(rx.recv(), Err(WireError::PeerTimeout));
        }
        client.join().unwrap();
    }

    #[test]
    fn tcp_partial_frame_resumes_after_timeout() {
        use std::time::Duration;
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let frame = encode_frame(&WireFrame::Shutdown {
            client: 2,
            events_sent: 9,
            stream_fingerprint: 11,
        });
        let expected = frame.clone();
        let client = std::thread::spawn(move || {
            let (mut tx, _rx) = tcp_connect(addr).unwrap();
            let (head, tail) = frame.split_at(frame.len() - 5);
            tx.send(head.to_vec()).unwrap();
            // Stall past the reader's deadline, then finish the frame.
            std::thread::sleep(Duration::from_millis(120));
            tx.send(tail.to_vec()).unwrap();
            std::thread::sleep(Duration::from_millis(50));
        });
        let (stream, _) = listener.accept().unwrap();
        let (_tx, mut rx) = tcp_pair(stream).unwrap();
        // First attempt times out mid-frame; the retry completes it — the
        // buffered prefix was kept, so a slow peer loses nothing.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(40)),
            Err(WireError::PeerTimeout)
        );
        let bytes = rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert_eq!(bytes, expected);
        client.join().unwrap();
    }

    #[test]
    fn chaos_split_writes_still_deliver_whole_frames() {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = tcp_pair(stream).unwrap();
            let mut seen = Vec::new();
            while let Some(frame) = rx.recv().unwrap() {
                seen.push(decode_frame(&frame).unwrap());
            }
            seen
        });
        let (mut tx, _rx) = tcp_connect(addr).unwrap();
        // Split every send in two; the reader's buffer must reassemble.
        tx.set_chaos(ChaosPlan::new(42).split_writes(1000));
        let frames: Vec<WireFrame> = (0..20).map(|i| WireFrame::Ping { token: i }).collect();
        for frame in &frames {
            tx.send(encode_frame(frame)).unwrap();
        }
        tx.shutdown_write();
        assert_eq!(server.join().unwrap(), frames);
    }

    #[test]
    fn chaos_kill_tears_the_connection_mid_frame() {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = tcp_pair(stream).unwrap();
            let mut whole = 0usize;
            loop {
                match rx.recv() {
                    Ok(Some(frame)) => {
                        decode_frame(&frame).unwrap();
                        whole += 1;
                    }
                    // Clean EOF or a torn tail both end the stream.
                    Ok(None) | Err(_) => return whole,
                }
            }
        });
        let (mut tx, _rx) = tcp_connect(addr).unwrap();
        tx.set_chaos(ChaosPlan::new(7).kill_at(3));
        let mut sent_ok = 0usize;
        for i in 0..10u64 {
            match tx.send(encode_frame(&WireFrame::Ping { token: i })) {
                Ok(()) => sent_ok += 1,
                Err(_) => break,
            }
        }
        assert_eq!(sent_ok, 3, "the 4th send is the kill");
        // The reader saw exactly the whole frames — the torn prefix of the
        // 4th never decodes.
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn duplex_deadline_reports_silence_as_peer_timeout() {
        use std::time::Duration;
        let (mut tx, mut rx) = duplex(4, None);
        rx.set_read_deadline(Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(rx.recv(), Err(WireError::PeerTimeout));
        tx.send(encode_frame(&WireFrame::Ping { token: 1 }))
            .unwrap();
        assert!(rx.recv().unwrap().is_some());
        drop(tx);
        // Hang-up still reads as a clean close, not a timeout.
        assert_eq!(rx.recv().unwrap(), None);
    }

    #[test]
    fn duplex_chaos_kill_delivers_a_torn_frame_then_errors() {
        let (mut tx, mut rx) = duplex(4, None);
        tx.set_chaos(ChaosPlan::new(3).kill_at(1));
        tx.send(encode_frame(&WireFrame::Ping { token: 0 }))
            .unwrap();
        let err = tx
            .send(encode_frame(&WireFrame::Ping { token: 1 }))
            .unwrap_err();
        assert!(matches!(err, WireError::Transport(_)));
        // Subsequent sends fail fast.
        assert!(tx.send(vec![1, 2, 3]).is_err());
        drop(tx);
        // The receiver sees the whole first frame, then the torn prefix
        // (which the codec rejects), then end of stream.
        let first = rx.recv().unwrap().unwrap();
        assert_eq!(decode_frame(&first).unwrap(), WireFrame::Ping { token: 0 });
        let torn = rx.recv().unwrap().unwrap();
        assert!(decode_frame(&torn).is_err());
        assert_eq!(rx.recv().unwrap(), None);
    }
}
