//! Session resumption: exactly-once frame ingestion across reconnects.
//!
//! A *session* is a client's logical stream, decoupled from any one
//! connection.  The client names it in its hello (a nonzero session id) and
//! keeps an **unacked window** ([`SessionTx`]) of every `EVENTS` frame not
//! yet covered by a durability ack; the replica keeps the session's
//! **journal-backed acceptance state** ([`SessionRx`]), admitting frames in
//! exact sequence order:
//!
//! * `frame_seq == next` — fresh: journal + fsync, deliver, ack the new
//!   cursor.
//! * `frame_seq < next` — duplicate (a replay of something already
//!   durable): drop, re-ack the cursor so the client prunes its window.
//! * `frame_seq > next` — gap (frames died with a connection): reject and
//!   ack the *current* cursor, which tells the client exactly where to
//!   rewind its window.
//!
//! Together the two sides absorb duplication and reordering and turn loss
//! into retransmission — the journal admits each frame exactly once, in
//! order, no matter how many times the connection dies.  On reconnect the
//! client's resume hello carries the cursor it last saw acked; the replica
//! cross-checks the cursor's *chained fingerprint* against what its journal
//! folds to at that frame count, so a client resuming against the wrong
//! journal (or a corrupted one) is refused with a typed error instead of
//! silently forking the stream.
//!
//! [`Backoff`] is the client's reconnect pacing: seeded, jittered,
//! exponential, bounded — the same seed always yields the same retry
//! schedule (chaos tests replay it), and exhaustion is a typed
//! [`RetriesExhausted`], never a hang.

use crate::journal::{Journal, JournalError, Recovered};
use crate::wire::{ResumeCursor, WireFrame};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Server side: journal-backed acceptance
// ---------------------------------------------------------------------------

/// What [`SessionRx::admit`] decided about one incoming `EVENTS` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Fresh and now durable: deliver the events and ack this cursor.
    Accept(ResumeCursor),
    /// Already durable (a window replay): drop it, re-ack this cursor.
    Duplicate(ResumeCursor),
    /// Sequence gap — frames before this one never arrived.  Drop it and
    /// ack this (unchanged) cursor; the client rewinds its window here.
    Gap(ResumeCursor),
}

impl Admit {
    /// The cursor to put in the ack frame, whatever was decided.
    pub fn cursor(&self) -> ResumeCursor {
        match self {
            Admit::Accept(c) | Admit::Duplicate(c) | Admit::Gap(c) => *c,
        }
    }
}

/// Resumption failures, distinct from journal I/O failures because they mean
/// the *protocol* state disagrees, not that the disk failed.
#[derive(Debug)]
pub enum SessionError {
    /// The client's resume cursor does not match the journal: either it
    /// claims more durable frames than the journal holds, or the chained
    /// fingerprint at the claimed frame count disagrees — a forked or
    /// corrupted stream, refused before any event is ingested.
    CursorMismatch {
        /// What the client claimed.
        claimed: ResumeCursor,
        /// What the journal actually folds to at that position (frames
        /// capped to the journal's own count).
        durable: ResumeCursor,
    },
    /// The hello named a different client than the journal records.
    ClientMismatch {
        /// Client id in the hello.
        hello: u32,
        /// Client id in the journal header.
        journal: u32,
    },
    /// The underlying journal failed.
    Journal(JournalError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::CursorMismatch { claimed, durable } => write!(
                f,
                "resume cursor mismatch: client claims {} frames (chain {:#018x}), \
                 journal has {} frames (chain {:#018x})",
                claimed.frames, claimed.chain, durable.frames, durable.chain
            ),
            SessionError::ClientMismatch { hello, journal } => write!(
                f,
                "resume hello names client {hello} but the journal belongs to {journal}"
            ),
            SessionError::Journal(e) => write!(f, "session journal: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<JournalError> for SessionError {
    fn from(e: JournalError) -> Self {
        SessionError::Journal(e)
    }
}

/// The replica side of one session: the journal plus the chain value after
/// every accepted frame (what makes resume cursors checkable at *any*
/// position, not just the tip).
pub struct SessionRx {
    journal: Journal,
    /// `chains[i]` = chained fingerprint after `i + 1` accepted frames.
    chains: Vec<u64>,
    /// `events_at[i]` = cumulative events after `i + 1` accepted frames.
    events_at: Vec<u64>,
}

impl SessionRx {
    /// Opens a fresh session: a new journal at `path`.
    pub fn create(path: &Path, client: u32, session: u64) -> Result<SessionRx, SessionError> {
        let journal = Journal::create(path, client, session)?;
        Ok(SessionRx {
            journal,
            chains: Vec::new(),
            events_at: Vec::new(),
        })
    }

    /// Reopens a session from its journal on disk — the supervisor's startup
    /// path, before any client has claimed anything.  Returns the session
    /// plus the recovered journal contents (the frames a rebuilt monitor is
    /// fed).
    pub fn reopen(path: &Path) -> Result<(SessionRx, Recovered), SessionError> {
        let (journal, recovered) = Journal::recover(path)?;
        // Rebuild the per-frame chain from the recovered payloads.
        let mut chains = Vec::with_capacity(recovered.frames.len());
        let mut events_at = Vec::with_capacity(recovered.frames.len());
        let mut chain = journal.client() as u64;
        let mut events = 0u64;
        let mut interner = Vec::new();
        for payload in &recovered.frames {
            // Recovery already validated these; decode cannot fail here.
            let frame = crate::wire::decode_frame_with(payload, &mut interner)
                .expect("recovered frame re-decodes");
            let WireFrame::Events {
                events: batch,
                fingerprint,
                ..
            } = frame
            else {
                unreachable!("journal only records events frames");
            };
            chain = crate::wire::chain_fingerprint(chain, fingerprint);
            events += batch.len() as u64;
            chains.push(chain);
            events_at.push(events);
        }
        Ok((
            SessionRx {
                journal,
                chains,
                events_at,
            },
            recovered,
        ))
    }

    /// Resumes a session from its journal, cross-checking the client's
    /// claimed cursor (from its resume hello) against what is durable.
    pub fn resume(
        path: &Path,
        hello_client: u32,
        claimed: Option<ResumeCursor>,
    ) -> Result<(SessionRx, Recovered), SessionError> {
        let (rx, recovered) = SessionRx::reopen(path)?;
        rx.check_resume(hello_client, claimed)?;
        Ok((rx, recovered))
    }

    /// Validates a resume hello against this (already open) session.
    ///
    /// The claim is valid iff `claimed.frames ≤ durable.frames` (acks may
    /// have been lost, so the client may lag, never lead) **and** the
    /// journal's chain and event total at `claimed.frames` equal the
    /// claim's — the two sides accepted the same frame prefix.
    pub fn check_resume(
        &self,
        hello_client: u32,
        claimed: Option<ResumeCursor>,
    ) -> Result<(), SessionError> {
        if self.journal.client() != hello_client {
            return Err(SessionError::ClientMismatch {
                hello: hello_client,
                journal: self.journal.client(),
            });
        }
        let Some(claimed) = claimed else {
            return Ok(());
        };
        let durable = self.journal.cursor();
        let chain_at = |frames: u64| -> u64 {
            if frames == 0 {
                self.journal.client() as u64
            } else {
                self.chains[(frames - 1) as usize]
            }
        };
        let events_at = |frames: u64| -> u64 {
            if frames == 0 {
                0
            } else {
                self.events_at[(frames - 1) as usize]
            }
        };
        let ok = claimed.frames <= durable.frames
            && claimed.chain == chain_at(claimed.frames)
            && claimed.events == events_at(claimed.frames);
        if !ok {
            let at = claimed.frames.min(durable.frames);
            return Err(SessionError::CursorMismatch {
                claimed,
                durable: ResumeCursor {
                    frames: durable.frames,
                    events: events_at(at),
                    chain: chain_at(at),
                },
            });
        }
        Ok(())
    }

    /// Admits one decoded `EVENTS` frame (`bytes` is its full wire
    /// encoding).  Only [`Admit::Accept`] journals and implies delivery;
    /// every outcome carries the cursor to ack.
    pub fn admit(
        &mut self,
        bytes: &[u8],
        frame_seq: u64,
        events: u64,
        batch_fingerprint: u64,
    ) -> Result<Admit, SessionError> {
        let cursor = self.journal.cursor();
        if frame_seq < cursor.frames {
            return Ok(Admit::Duplicate(cursor));
        }
        if frame_seq > cursor.frames {
            return Ok(Admit::Gap(cursor));
        }
        let cursor = self
            .journal
            .append_events(bytes, events, batch_fingerprint)?;
        self.chains.push(cursor.chain);
        self.events_at.push(cursor.events);
        Ok(Admit::Accept(cursor))
    }

    /// Records the client's shutdown totals.
    pub fn record_shutdown(&mut self, events: u64, chain: u64) -> Result<(), SessionError> {
        self.journal.append_shutdown(events, chain)?;
        Ok(())
    }

    /// The durable cursor (everything at or below it is fsynced).
    pub fn cursor(&self) -> ResumeCursor {
        self.journal.cursor()
    }

    /// The underlying journal (for audits).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Mutable journal access — the supervisor uses this to snapshot the
    /// frames for restart replay ([`Journal::read_back`]) while holding the
    /// session's slot lock.
    pub fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }
}

// ---------------------------------------------------------------------------
// Client side: the unacked window
// ---------------------------------------------------------------------------

/// The client side of one session: the encoded `EVENTS` frames sent but not
/// yet covered by a durability ack, retained for replay.
///
/// The window is also what makes [`WireFrame::Overloaded`] free to honor: a
/// shed frame was never acked, so it is still in the window, and the next
/// replay retransmits it — rejection and loss are the same recovery path.
pub struct SessionTx {
    session: u64,
    /// `(frame_seq, full wire encoding)`, oldest first, seqs dense.
    window: VecDeque<(u64, Vec<u8>)>,
    /// The highest cursor the replica has acked.
    acked: ResumeCursor,
    /// Next fresh `frame_seq` to assign.
    next_seq: u64,
}

impl SessionTx {
    /// A fresh session window.  `client` seeds the ack cursor's chain, so a
    /// zero-frame ack cross-checks too.
    pub fn new(client: u32, session: u64) -> SessionTx {
        SessionTx {
            session,
            window: VecDeque::new(),
            acked: ResumeCursor {
                frames: 0,
                events: 0,
                chain: client as u64,
            },
            next_seq: 0,
        }
    }

    /// The session id carried in hellos.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The cursor to put in a resume hello: the last acked position.
    pub fn resume_cursor(&self) -> ResumeCursor {
        self.acked
    }

    /// The `frame_seq` the next staged frame will get (encode it into the
    /// frame before calling [`SessionTx::stage`]).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Assigns the next `frame_seq` and retains `bytes` (the frame's full
    /// wire encoding) in the window.  Call before sending.
    pub fn stage(&mut self, bytes: Vec<u8>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back((seq, bytes));
        seq
    }

    /// Applies a durability ack: prunes the window through `cursor.frames`.
    /// Returns how many frames were pruned.  An ack below a previous ack is
    /// stale (reordered verdict plane) and ignored.
    pub fn on_ack(&mut self, cursor: ResumeCursor) -> usize {
        if cursor.frames < self.acked.frames {
            return 0;
        }
        self.acked = cursor;
        let before = self.window.len();
        while let Some((seq, _)) = self.window.front() {
            if *seq < cursor.frames {
                self.window.pop_front();
            } else {
                break;
            }
        }
        before - self.window.len()
    }

    /// The unacked frames, oldest first — what a reconnect replays after
    /// its resume hello.  Duplicates are harmless (the replica re-acks
    /// them), so replaying conservatively is always sound.
    pub fn unacked(&self) -> impl Iterator<Item = &[u8]> {
        self.window.iter().map(|(_, bytes)| bytes.as_slice())
    }

    /// Frames currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

// ---------------------------------------------------------------------------
// Reconnect backoff
// ---------------------------------------------------------------------------

/// Typed terminal error of a bounded reconnect loop: every retry was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetriesExhausted {
    /// How many connection attempts were made before giving up.
    pub attempts: u32,
}

impl fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reconnect retries exhausted after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for RetriesExhausted {}

/// Seeded, jittered, exponential reconnect backoff.
///
/// Attempt *k* (0-based) sleeps `base · 2ᵏ` scaled by a jitter factor drawn
/// uniformly from `[½, 1½)`, capped at `cap` — the classic
/// thundering-herd-free schedule, but *deterministic*: the jitter comes
/// from a seeded xorshift, so the same seed replays the same schedule
/// (which is what lets the chaos differential pin timings).  After
/// `max_attempts` draws, every further draw is [`RetriesExhausted`].
#[derive(Debug, Clone)]
pub struct Backoff {
    state: u64,
    base: Duration,
    cap: Duration,
    max_attempts: u32,
    attempt: u32,
}

impl Backoff {
    /// A schedule of `max_attempts` delays starting at `base`, capped at
    /// `cap`, jittered by `seed`.
    pub fn new(seed: u64, base: Duration, cap: Duration, max_attempts: u32) -> Backoff {
        // Scramble the seed (splitmix64 finalizer) before seeding xorshift:
        // a bare `seed | 1` would collapse adjacent even/odd seeds into the
        // same schedule.  xorshift needs a nonzero state, hence the `| 1`.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Backoff {
            state: z | 1,
            base,
            cap,
            max_attempts,
            attempt: 0,
        }
    }

    /// A reasonable default for tests and demos: 8 attempts from 10ms up,
    /// capped at 1s.
    pub fn standard(seed: u64) -> Backoff {
        Backoff::new(seed, Duration::from_millis(10), Duration::from_secs(1), 8)
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Draws the next delay, or reports exhaustion carrying the attempt
    /// count.
    pub fn next_delay(&mut self) -> Result<Duration, RetriesExhausted> {
        if self.attempt >= self.max_attempts {
            return Err(RetriesExhausted {
                attempts: self.attempt,
            });
        }
        let exp = self.attempt.min(32);
        self.attempt += 1;
        let nominal = self
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.cap);
        // Jitter factor in [1/2, 3/2): nominal/2 + nominal·r where r ∈ [0,1).
        let r = (self.next_rand() >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = nominal.mul_f64(0.5 + r);
        Ok(jittered.min(self.cap))
    }

    /// Resets the schedule after a successful connection (state advances,
    /// so the next outage draws fresh jitter deterministically).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, event_batch_fingerprint};
    use evlin_history::{Event, ObjectId, ProcessId};
    use evlin_spec::FetchIncrement;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evlin-session-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn events_frame(client: u32, frame_seq: u64, n: usize) -> (Vec<u8>, u64, u64) {
        let events: Vec<(u64, Event)> = (0..n as u64)
            .map(|i| {
                (
                    frame_seq * 100 + i,
                    Event::invoke(ProcessId(0), ObjectId(0), FetchIncrement::fetch_inc()),
                )
            })
            .collect();
        let fingerprint = event_batch_fingerprint(client, &events);
        let frame = WireFrame::Events {
            client,
            frame_seq,
            events,
            fingerprint,
        };
        (encode_frame(&frame), n as u64, fingerprint)
    }

    #[test]
    fn admit_accepts_in_order_dedups_replays_and_rejects_gaps() {
        let path = temp_path("admit.evjl");
        let _ = std::fs::remove_file(&path);
        let mut rx = SessionRx::create(&path, 4, 1).unwrap();
        let (p0, n0, f0) = events_frame(4, 0, 2);
        let (p1, n1, f1) = events_frame(4, 1, 3);
        let (p3, n3, f3) = events_frame(4, 3, 1);

        let a0 = rx.admit(&p0, 0, n0, f0).unwrap();
        assert!(matches!(a0, Admit::Accept(c) if c.frames == 1 && c.events == 2));
        // Replay of frame 0: duplicate, cursor unchanged.
        let a0b = rx.admit(&p0, 0, n0, f0).unwrap();
        assert!(matches!(a0b, Admit::Duplicate(c) if c.frames == 1));
        // Frame 3 before frames 1–2: a gap; cursor says where to rewind.
        let a3 = rx.admit(&p3, 3, n3, f3).unwrap();
        assert!(matches!(a3, Admit::Gap(c) if c.frames == 1));
        // In-order frame 1 is accepted and the chain advances.
        let a1 = rx.admit(&p1, 1, n1, f1).unwrap();
        let Admit::Accept(c1) = a1 else { panic!() };
        assert_eq!(c1.frames, 2);
        assert_eq!(c1.events, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_cross_checks_the_claimed_cursor() {
        let path = temp_path("resume.evjl");
        let _ = std::fs::remove_file(&path);
        let mut rx = SessionRx::create(&path, 2, 5).unwrap();
        let (p0, n0, f0) = events_frame(2, 0, 2);
        let (p1, n1, f1) = events_frame(2, 1, 2);
        let c0 = rx.admit(&p0, 0, n0, f0).unwrap().cursor();
        let c1 = rx.admit(&p1, 1, n1, f1).unwrap().cursor();
        drop(rx);

        // Claiming the tip, an earlier ack, or nothing at all: all valid.
        for claim in [Some(c1), Some(c0), None] {
            let (rx, recovered) = SessionRx::resume(&path, 2, claim).unwrap();
            assert_eq!(rx.cursor(), c1);
            assert_eq!(recovered.frames.len(), 2);
        }
        // Claiming more frames than durable: refused.
        let ahead = ResumeCursor {
            frames: 3,
            events: 99,
            chain: 0,
        };
        assert!(matches!(
            SessionRx::resume(&path, 2, Some(ahead)),
            Err(SessionError::CursorMismatch { .. })
        ));
        // Claiming the right count with the wrong chain: refused.
        let forged = ResumeCursor {
            chain: c1.chain ^ 1,
            ..c1
        };
        assert!(matches!(
            SessionRx::resume(&path, 2, Some(forged)),
            Err(SessionError::CursorMismatch { .. })
        ));
        // A different client id: refused.
        assert!(matches!(
            SessionRx::resume(&path, 9, Some(c1)),
            Err(SessionError::ClientMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn window_prunes_on_ack_and_replays_the_rest() {
        let mut tx = SessionTx::new(7, 1);
        let frames: Vec<Vec<u8>> = (0..4u64).map(|seq| events_frame(7, seq, 1).0).collect();
        for bytes in &frames {
            tx.stage(bytes.clone());
        }
        assert_eq!(tx.window_len(), 4);
        // Ack through frame 1 (two frames durable).
        let pruned = tx.on_ack(ResumeCursor {
            frames: 2,
            events: 2,
            chain: 0xBEEF,
        });
        assert_eq!(pruned, 2);
        let replay: Vec<&[u8]> = tx.unacked().collect();
        assert_eq!(replay, vec![frames[2].as_slice(), frames[3].as_slice()]);
        // A stale (lower) ack is ignored.
        assert_eq!(
            tx.on_ack(ResumeCursor {
                frames: 1,
                events: 1,
                chain: 0
            }),
            0
        );
        assert_eq!(tx.window_len(), 2);
        assert_eq!(tx.resume_cursor().frames, 2);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_exhausts_typed() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(seed, Duration::from_millis(10), Duration::from_secs(1), 6);
            std::iter::from_fn(|| b.next_delay().ok()).collect()
        };
        // Same seed ⇒ identical schedule; different seed ⇒ (almost surely)
        // different jitter.
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
        // Jitter bounds: attempt k nominal is base·2^k (capped); the draw
        // lies in [nominal/2, min(cap, nominal·3/2)].
        let delays = schedule(42);
        assert_eq!(delays.len(), 6);
        for (k, d) in delays.iter().enumerate() {
            let nominal = Duration::from_millis(10 * (1 << k)).min(Duration::from_secs(1));
            assert!(*d >= nominal.mul_f64(0.5), "attempt {k}: {d:?}");
            assert!(*d <= Duration::from_secs(1), "attempt {k}: {d:?}");
            assert!(*d <= nominal.mul_f64(1.5), "attempt {k}: {d:?}");
        }
        // Exhaustion is typed and carries the attempt count.
        let mut b = Backoff::new(7, Duration::from_millis(1), Duration::from_millis(8), 3);
        for _ in 0..3 {
            b.next_delay().unwrap();
        }
        assert_eq!(b.next_delay(), Err(RetriesExhausted { attempts: 3 }));
        assert_eq!(b.attempts(), 3);
        // Reset re-arms the budget.
        b.reset();
        assert!(b.next_delay().is_ok());
    }
}
