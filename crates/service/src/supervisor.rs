//! Crash-recoverable monitoring service: session resumption, journaled
//! replica replay, heartbeats and backoff.
//!
//! [`crate::replica::MonitorService`] assumes every connection lives for the
//! whole run and every replica thread survives it.  This module drops both
//! assumptions:
//!
//! * **Sessions, not connections.**  A client names a session in its hello
//!   and the replica journals every accepted `EVENTS` frame (fsync before
//!   ack) under [`crate::session::SessionRx`].  A dropped connection loses
//!   nothing: the client reconnects with its resume cursor, replays its
//!   unacked window, and the replica dedups by frame sequence while
//!   cross-checking the chained stream fingerprint.
//! * **Replica restarts.**  A supervisor watchdog detects dead shard
//!   threads (and [`RecoverableService::kill_and_restart`] simulates the
//!   crash deliberately): the dying pool's verdict broadcasts are
//!   suppressed, every journal is replayed through a *fresh* staged
//!   pipeline, and because the k-way merge re-sorts by global sequence, the
//!   rebuilt monitor state is bit-identical to what an uninterrupted run
//!   would hold — audited by re-folding each journal's chained fingerprint
//!   during replay.
//! * **Heartbeats and backoff.**  Both ends run read deadlines: a silent
//!   peer costs a bounded timeout, never a parked thread.  The client
//!   reconnects under a seeded, jittered exponential [`Backoff`]; exhaustion
//!   is a typed [`RetriesExhausted`], never a hang.
//! * **Graceful degradation.**  Per-connection ingest is bounded: a handler
//!   probes its rings with a non-blocking flush and sheds load with a typed
//!   `OVERLOADED` rejection (carrying `retry_after_ms`) instead of buffering
//!   without bound — a shed frame was never acked, so the client's window
//!   replays it.  Mid-run verdict rounds are shed on saturated links as
//!   before; finals stay reliable via reserved seats.
//!
//! # Liveness
//!
//! The merge advances past a slot's ring only once that slot has produced
//! (or the ring closed), so mid-run checking proceeds at the pace of the
//! slowest *configured* slot — the same contract as the plain service, now
//! including slots whose client is between connections.  Everything the
//! handler does under a slot lock is non-blocking by construction
//! (`push_buffered` + `try_flush`), so a stalled merge can delay verdicts
//! but can never deadlock ingestion, restarts or shutdown.

use crate::journal::{journal_file_name, JournalError, Recovered};
use crate::replica::{
    run_check, run_merge_ingest, CheckOut, Fanout, IngestOut, ServiceConfig, ShardReport,
};
use crate::session::{Admit, Backoff, RetriesExhausted, SessionError, SessionRx, SessionTx};
use crate::transport::{tcp_connect, tcp_pair, ChaosPlan, FrameRx, FrameTx, TcpRx, TcpTx};
use crate::wire::{
    chain_fingerprint, decode_frame, decode_frame_with, encode_frame, event_batch_fingerprint,
    ResumeCursor, VerdictSummary, WireError, WireFrame, VERSION,
};
use evlin_checker::monitor::{recompose_verdicts, stages, MonitorVerdict, ShardRouter};
use evlin_history::{Event, ObjectId, ObjectUniverse, ProcessId};
use evlin_runtime::channel::sharded::{self, FrameSender};
use evlin_runtime::{channel, EventSink, RecorderShard};
use evlin_spec::{Invocation, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning knobs for a crash-recoverable service run.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// The underlying pool configuration (shards, monitor, ring sizes).
    /// `fault` and `conn_frames` are duplex-transport knobs and are ignored
    /// here — the recoverable service is TCP-only.
    pub service: ServiceConfig,
    /// Where session journals live.  Created if absent; scanned on
    /// [`RecoverableService::bind`], which is the process-crash recovery
    /// path: every journal found is replayed before new traffic is taken.
    pub journal_dir: PathBuf,
    /// Producer slots (= the maximum client id + 1).  Fixed up front because
    /// the sequence-ordered merge cannot grow its producer set mid-run.
    pub slots: usize,
    /// Read deadline on every server-side receive.  A connection silent for
    /// this long is closed (the *session* survives); it also bounds how long
    /// shutdown can wait on a handler.
    pub heartbeat: Duration,
    /// `retry_after_ms` carried by `OVERLOADED` rejections.
    pub retry_after_ms: u32,
    /// Events a slot may hold in not-yet-shipped ring buffers before its
    /// handler sheds incoming frames.  Bounds per-connection memory: ingest
    /// can never grow past `overload_backlog` + one frame per slot.
    pub overload_backlog: usize,
}

impl RecoveryConfig {
    /// A config with sane defaults for everything but the journal directory
    /// and slot count.
    pub fn new(journal_dir: PathBuf, slots: usize) -> RecoveryConfig {
        RecoveryConfig {
            service: ServiceConfig::default(),
            journal_dir,
            slots,
            heartbeat: Duration::from_secs(1),
            retry_after_ms: 5,
            overload_backlog: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-session statistics and the final report
// ---------------------------------------------------------------------------

/// Counters for one slot's session, accumulated across every connection
/// that served it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Connections that reached the hello exchange for this slot.
    pub connections: u64,
    /// Hellos that resumed durable history (claimed frames > 0).
    pub resumes: u64,
    /// Hellos refused: cursor mismatch, client mismatch, or a session id
    /// disagreeing with the slot's open journal.
    pub resume_rejections: u64,
    /// Frames accepted (journaled, fsynced, delivered, acked).
    pub accepted_frames: u64,
    /// Events inside accepted frames.
    pub accepted_events: u64,
    /// Window replays of already-durable frames (dropped, re-acked).
    pub duplicate_frames: u64,
    /// Frames ahead of the durable cursor (dropped, cursor re-acked so the
    /// client rewinds).
    pub gap_frames: u64,
    /// Frames shed with a typed `OVERLOADED` rejection.
    pub overloaded_rejections: u64,
    /// Frames the codec (or the transport mid-frame) rejected.
    pub corrupt_frames: u64,
    /// Structurally valid frames that were illegal here.
    pub protocol_errors: u64,
    /// Connections closed by the server-side read deadline.
    pub idle_timeouts: u64,
    /// Shutdown frames whose totals matched the durable cursor.
    pub shutdowns: u64,
    /// Shutdown frames whose totals disagreed with the durable cursor.
    pub shutdown_mismatches: u64,
    /// Journal I/O failures (the connection is dropped; the session and its
    /// durable prefix survive).
    pub journal_failures: u64,
}

/// What one recoverable service run produced.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The recomposed verdict over all shards of the *final* pool.
    pub verdict: MonitorVerdict,
    /// Per-shard reports from the final pool (earlier pools died with their
    /// crashes; their journals were replayed into this one).
    pub shards: Vec<ShardReport>,
    /// Per-slot session counters.
    pub sessions: Vec<SessionStats>,
    /// Pool restarts performed (watchdog-triggered plus explicit
    /// [`RecoverableService::kill_and_restart`] calls).
    pub restarts: u64,
    /// Sessions reopened from on-disk journals at bind time.
    pub recovered_at_startup: usize,
    /// Journal frames replayed through fresh pools (bind-time recovery and
    /// restarts; superseded replays count too).
    pub replayed_frames: u64,
    /// Events inside those frames.
    pub replayed_events: u64,
    /// Replays whose re-folded chained fingerprint disagreed with the
    /// session's durable cursor — 0 means every rebuild was bit-faithful.
    pub replay_chain_mismatches: u64,
    /// Mid-run verdict rounds dropped on saturated client links.
    pub verdicts_dropped: u64,
    /// Connections dropped before a valid hello (bad version, zero session,
    /// out-of-range client, codec garbage).
    pub orphan_connections: u64,
    /// Each shard's accepted event stream, when
    /// [`ServiceConfig::capture_streams`] was set — what the chaos
    /// differential pins against the offline kernel.
    pub accepted_streams: Option<Vec<Vec<Event>>>,
}

impl RecoveryReport {
    /// Total events checked across all shards of the final pool.
    pub fn events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.report.stats.events as u64)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Shared service state
// ---------------------------------------------------------------------------

struct SlotState {
    /// The slot's session, once a client created (or bind recovered) it.
    session: Option<SessionRx>,
    /// The slot's per-shard senders into the *current* pool.  `None` while a
    /// restart replay owns them — handlers shed with `OVERLOADED` meanwhile.
    senders: Option<Vec<FrameSender<Event>>>,
    /// Bumped by every restart; a finishing replay installs its senders only
    /// if its epoch still matches.
    epoch: u64,
    stats: SessionStats,
}

struct Pool {
    /// Cleared when the pool is declared dead: [`run_check`] suppresses
    /// every broadcast, so a crashed epoch cannot leak verdicts while its
    /// successor is rebuilt.
    alive: Arc<AtomicBool>,
    ingest_joins: Vec<JoinHandle<IngestOut>>,
    check_joins: Vec<JoinHandle<CheckOut>>,
}

struct ReplayOut {
    frames: u64,
    events: u64,
    chain_ok: bool,
}

struct Ctl {
    pool: Option<Pool>,
    replays: Vec<JoinHandle<ReplayOut>>,
    restarts: u64,
    recovered_at_startup: usize,
    replayed_frames: u64,
    replayed_events: u64,
    chain_mismatches: u64,
}

struct Shared {
    config: RecoveryConfig,
    universe: ObjectUniverse,
    router: ShardRouter,
    fanout: Arc<Fanout>,
    slots: Vec<Mutex<SlotState>>,
    shutting_down: AtomicBool,
    ctl: Mutex<Ctl>,
    orphan_errors: AtomicU64,
}

fn absorb_replay(ctl: &mut Ctl, out: ReplayOut) {
    ctl.replayed_frames += out.frames;
    ctl.replayed_events += out.events;
    if !out.chain_ok {
        ctl.chain_mismatches += 1;
    }
}

/// Builds a fresh replica pool (per-shard rings + staged pipeline threads)
/// and returns each slot's sender set.
fn build_pool(shared: &Arc<Shared>) -> (Vec<Vec<FrameSender<Event>>>, Pool) {
    let service = &shared.config.service;
    let shards = shared.router.effective_shards();
    let slots = shared.slots.len();
    let alive = Arc::new(AtomicBool::new(true));
    let mut per_slot: Vec<Vec<FrameSender<Event>>> =
        (0..slots).map(|_| Vec::with_capacity(shards)).collect();
    let mut ingest_joins = Vec::with_capacity(shards);
    let mut check_joins = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (senders, merge) = sharded::sharded::<Event>(
            slots.max(1),
            service.ring_frames,
            service.frame_capacity,
            None,
        );
        for (slot, sender) in senders.into_iter().enumerate().take(slots) {
            per_slot[slot].push(sender);
        }
        let (ingest, check) = stages(shared.universe.clone(), service.monitor);
        let (stage_tx, stage_rx) = channel::bounded(service.stage_queue.max(1));
        let capture = service.capture_streams;
        ingest_joins.push(
            std::thread::Builder::new()
                .name(format!("evlin-rsvc-ingest-{shard}"))
                .spawn(move || run_merge_ingest(merge, ingest, stage_tx, capture))
                .expect("spawn ingest thread"),
        );
        let fanout = Arc::clone(&shared.fanout);
        let alive = Arc::clone(&alive);
        check_joins.push(
            std::thread::Builder::new()
                .name(format!("evlin-rsvc-check-{shard}"))
                .spawn(move || run_check(shard as u32, check, stage_rx, fanout, Some(alive)))
                .expect("spawn check thread"),
        );
    }
    (
        per_slot,
        Pool {
            alive,
            ingest_joins,
            check_joins,
        },
    )
}

/// Feeds one journal's frames through a fresh pool, re-folding the chained
/// fingerprint as the bit-identity audit, then hands the senders to the slot
/// — unless another restart (or shutdown) got there first.
fn spawn_replay(
    shared: Arc<Shared>,
    index: usize,
    epoch: u64,
    client: u32,
    expected_chain: u64,
    frames: Vec<Vec<u8>>,
    mut senders: Vec<FrameSender<Event>>,
) -> JoinHandle<ReplayOut> {
    std::thread::Builder::new()
        .name(format!("evlin-rsvc-replay-{index}"))
        .spawn(move || {
            let mut interner: Vec<Invocation> = Vec::new();
            let mut chain = client as u64;
            let mut out = ReplayOut {
                frames: 0,
                events: 0,
                chain_ok: true,
            };
            for payload in &frames {
                let Ok(WireFrame::Events {
                    events,
                    fingerprint,
                    ..
                }) = decode_frame_with(payload, &mut interner)
                else {
                    // A journaled frame always re-decodes; anything else is
                    // an audit failure, not a crash.
                    out.chain_ok = false;
                    continue;
                };
                chain = chain_fingerprint(chain, fingerprint);
                out.frames += 1;
                out.events += events.len() as u64;
                for (seq, event) in events {
                    let shard = shared.router.route(event.object);
                    senders[shard].push(seq, event);
                }
                for sender in senders.iter_mut() {
                    sender.flush();
                }
            }
            out.chain_ok &= chain == expected_chain;
            let mut slot = shared.slots[index].lock().expect("slot lock");
            if !shared.shutting_down.load(Ordering::SeqCst) && slot.epoch == epoch {
                slot.senders = Some(senders);
            }
            out
        })
        .expect("spawn replay thread")
}

/// Tears the current pool down as if it crashed and rebuilds it from the
/// journals.  Caller holds the `ctl` lock, which serializes restarts against
/// each other and against shutdown.
/// Per-slot restart snapshot: `(epoch, client, expected chain, journaled
/// frames)` — everything a replay needs to rebuild the slot's monitor state.
type ReplaySnapshot = (u64, u32, u64, Vec<Vec<u8>>);

fn restart_pool(shared: &Arc<Shared>, ctl: &mut Ctl) -> Result<(), SessionError> {
    // 1. The dying pool must not leak verdicts from partial state.
    if let Some(pool) = &ctl.pool {
        pool.alive.store(false, Ordering::SeqCst);
    }
    // 2. Invalidate every slot: bump the epoch, discard buffered (journaled,
    //    so safe) items and drop the senders — which closes the dying pool's
    //    rings without ever touching a possibly-stalled ring — and snapshot
    //    the journal for replay.
    let mut snapshots: Vec<Option<ReplaySnapshot>> = Vec::with_capacity(shared.slots.len());
    for slot in &shared.slots {
        let mut slot = slot.lock().expect("slot lock");
        slot.epoch += 1;
        if let Some(mut senders) = slot.senders.take() {
            for sender in senders.iter_mut() {
                sender.discard_buffered();
            }
        }
        let epoch = slot.epoch;
        snapshots.push(match &mut slot.session {
            Some(session) => {
                let frames = session.journal_mut().read_back()?;
                Some((
                    epoch,
                    session.journal().client(),
                    session.cursor().chain,
                    frames,
                ))
            }
            None => None,
        });
    }
    // 3. Outstanding replays of the previous epoch drain (the old pool still
    //    consumes their rings; every other ring is now closed), see their
    //    epoch mismatch, and drop their senders.
    for join in std::mem::take(&mut ctl.replays) {
        if let Ok(out) = join.join() {
            absorb_replay(ctl, out);
        }
    }
    // 4. Every ring of the old pool is closed: it drains to end-of-stream
    //    and its threads return (broadcasts suppressed).  Its outputs die
    //    here — that is the crash being simulated.
    if let Some(pool) = ctl.pool.take() {
        for join in pool.ingest_joins {
            let _ = join.join();
        }
        for join in pool.check_joins {
            let _ = join.join();
        }
    }
    // 5. Fresh pool; journaled slots get their senders back only after
    //    their replay has rebuilt the monitor state.
    let (per_slot, pool) = build_pool(shared);
    ctl.pool = Some(pool);
    for (index, (senders, snapshot)) in per_slot.into_iter().zip(snapshots).enumerate() {
        match snapshot {
            Some((epoch, client, expected_chain, frames)) if !frames.is_empty() => {
                ctl.replays.push(spawn_replay(
                    Arc::clone(shared),
                    index,
                    epoch,
                    client,
                    expected_chain,
                    frames,
                    senders,
                ));
            }
            _ => {
                let mut slot = shared.slots[index].lock().expect("slot lock");
                slot.senders = Some(senders);
            }
        }
    }
    ctl.restarts += 1;
    Ok(())
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

enum AdmitOutcome {
    Ack(ResumeCursor),
    Shed,
    Fatal,
}

fn run_session_handler(shared: Arc<Shared>, mut rx: TcpRx, tx: TcpTx) {
    let heartbeat = shared.config.heartbeat;
    let mut interner: Vec<Invocation> = Vec::new();
    // First frame must be a version-2 hello naming a valid slot and a
    // nonzero session; anything else orphans the connection.
    let orphan = || {
        shared.orphan_errors.fetch_add(1, Ordering::Relaxed);
    };
    let Ok(Some(bytes)) = rx.recv_timeout(heartbeat) else {
        orphan();
        return;
    };
    let Ok(WireFrame::Hello {
        client,
        version,
        session,
        resume,
    }) = decode_frame_with(&bytes, &mut interner)
    else {
        orphan();
        return;
    };
    if version != VERSION || session == 0 || client as usize >= shared.slots.len() {
        orphan();
        return;
    }
    let index = client as usize;
    // Attach to (or create) the slot's session and validate the resume
    // claim against the journal.
    let attach = {
        let mut guard = shared.slots[index].lock().expect("slot lock");
        let slot = &mut *guard;
        slot.stats.connections += 1;
        if let Some(state) = &slot.session {
            if state.journal().session() != session {
                slot.stats.protocol_errors += 1;
                None
            } else if state.check_resume(client, resume).is_err() {
                slot.stats.resume_rejections += 1;
                None
            } else {
                if resume.is_some_and(|c| c.frames > 0) {
                    slot.stats.resumes += 1;
                }
                Some(state.cursor())
            }
        } else {
            let path = shared
                .config
                .journal_dir
                .join(journal_file_name(client, session));
            match SessionRx::create(&path, client, session) {
                Ok(state) => match state.check_resume(client, resume) {
                    Ok(()) => {
                        let cursor = state.cursor();
                        slot.session = Some(state);
                        Some(cursor)
                    }
                    Err(_) => {
                        // The claim names durable history this replica does
                        // not hold; refuse, and leave no empty journal
                        // behind to poison the next attempt.
                        slot.stats.resume_rejections += 1;
                        drop(state);
                        let _ = std::fs::remove_file(&path);
                        None
                    }
                },
                Err(_) => {
                    slot.stats.journal_failures += 1;
                    None
                }
            }
        }
    };
    let Some(cursor) = attach else {
        return; // tx drops; the client sees end-of-stream and backs off
    };
    // From here the connection is the slot's verdict link; the ack tells the
    // client where durable history ends (its window replay starts there).
    shared.fanout.register(index, Box::new(tx));
    shared.fanout.unicast(
        index,
        encode_frame(&WireFrame::Ack {
            client,
            session,
            cursor,
        }),
    );
    loop {
        let bytes = match rx.recv_timeout(heartbeat) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => return, // clean end-of-stream
            Err(WireError::PeerTimeout) => {
                // Silent peer: close the connection, keep the session.
                let mut slot = shared.slots[index].lock().expect("slot lock");
                slot.stats.idle_timeouts += 1;
                return;
            }
            Err(_) => {
                let mut slot = shared.slots[index].lock().expect("slot lock");
                slot.stats.corrupt_frames += 1;
                return;
            }
        };
        let frame = match decode_frame_with(&bytes, &mut interner) {
            Ok(frame) => frame,
            Err(_) => {
                let mut slot = shared.slots[index].lock().expect("slot lock");
                slot.stats.corrupt_frames += 1;
                continue;
            }
        };
        match frame {
            WireFrame::Events {
                client: c,
                frame_seq,
                events,
                fingerprint,
            } => {
                if c != client {
                    let mut slot = shared.slots[index].lock().expect("slot lock");
                    slot.stats.protocol_errors += 1;
                    continue;
                }
                let n = events.len() as u64;
                // Journal append and ring hand-off are atomic under the slot
                // lock (a restart snapshot can never see one without the
                // other) and non-blocking by construction: overload is
                // probed with try_flush *before* admitting, and a fresh
                // frame adds at most one batch to the probed backlog.
                let outcome = {
                    let mut guard = shared.slots[index].lock().expect("slot lock");
                    let slot = &mut *guard;
                    match (&mut slot.session, &mut slot.senders) {
                        (Some(state), Some(senders)) => {
                            let fresh = frame_seq == state.cursor().frames;
                            let shed = fresh && {
                                for sender in senders.iter_mut() {
                                    sender.try_flush();
                                }
                                let backlog: usize = senders.iter().map(|s| s.buffered_len()).sum();
                                backlog > shared.config.overload_backlog
                            };
                            if shed {
                                slot.stats.overloaded_rejections += 1;
                                AdmitOutcome::Shed
                            } else {
                                match state.admit(&bytes, frame_seq, n, fingerprint) {
                                    Ok(Admit::Accept(cursor)) => {
                                        for (seq, event) in events {
                                            let shard = shared.router.route(event.object);
                                            senders[shard].push_buffered(seq, event);
                                        }
                                        for sender in senders.iter_mut() {
                                            sender.try_flush();
                                        }
                                        slot.stats.accepted_frames += 1;
                                        slot.stats.accepted_events += n;
                                        AdmitOutcome::Ack(cursor)
                                    }
                                    Ok(Admit::Duplicate(cursor)) => {
                                        slot.stats.duplicate_frames += 1;
                                        AdmitOutcome::Ack(cursor)
                                    }
                                    Ok(Admit::Gap(cursor)) => {
                                        slot.stats.gap_frames += 1;
                                        AdmitOutcome::Ack(cursor)
                                    }
                                    Err(_) => {
                                        slot.stats.journal_failures += 1;
                                        AdmitOutcome::Fatal
                                    }
                                }
                            }
                        }
                        // Restart replay owns the senders: shed, the
                        // window will retransmit after retry_after.
                        _ => {
                            slot.stats.overloaded_rejections += 1;
                            AdmitOutcome::Shed
                        }
                    }
                };
                match outcome {
                    AdmitOutcome::Ack(cursor) => shared.fanout.unicast(
                        index,
                        encode_frame(&WireFrame::Ack {
                            client,
                            session,
                            cursor,
                        }),
                    ),
                    AdmitOutcome::Shed => shared.fanout.unicast(
                        index,
                        encode_frame(&WireFrame::Overloaded {
                            client,
                            retry_after_ms: shared.config.retry_after_ms,
                        }),
                    ),
                    AdmitOutcome::Fatal => return,
                }
            }
            WireFrame::Shutdown {
                events_sent,
                stream_fingerprint,
                ..
            } => {
                let mut guard = shared.slots[index].lock().expect("slot lock");
                let slot = &mut *guard;
                if let Some(state) = &mut slot.session {
                    let cursor = state.cursor();
                    if cursor.events == events_sent && cursor.chain == stream_fingerprint {
                        slot.stats.shutdowns += 1;
                        if state
                            .record_shutdown(events_sent, stream_fingerprint)
                            .is_err()
                        {
                            slot.stats.journal_failures += 1;
                        }
                    } else {
                        slot.stats.shutdown_mismatches += 1;
                    }
                }
            }
            WireFrame::Ping { token } => {
                shared
                    .fanout
                    .unicast(index, encode_frame(&WireFrame::Pong { token }));
            }
            WireFrame::Pong { .. } => {}
            WireFrame::Hello { .. }
            | WireFrame::Verdict(_)
            | WireFrame::Ack { .. }
            | WireFrame::Overloaded { .. } => {
                let mut slot = shared.slots[index].lock().expect("slot lock");
                slot.stats.protocol_errors += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The recoverable service
// ---------------------------------------------------------------------------

/// A crash-recoverable monitoring service on a loopback TCP endpoint.
///
/// Built with [`RecoverableService::bind`], which also *recovers*: any
/// session journals already in [`RecoveryConfig::journal_dir`] are reopened
/// and replayed through the fresh pool before new traffic lands — the
/// process-crash path.  While running, a watchdog restarts the pool if a
/// shard thread dies; [`RecoverableService::kill_and_restart`] forces the
/// same path deliberately (the chaos tests' crash lever).  Call
/// [`RecoverableService::finish`] after every client finished.
pub struct RecoverableService {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<Vec<JoinHandle<()>>>,
    watchdog: JoinHandle<()>,
}

impl RecoverableService {
    /// Binds an ephemeral loopback endpoint, recovers every journal found
    /// in the configured directory, and starts accepting connections.
    pub fn bind(
        universe: &ObjectUniverse,
        config: RecoveryConfig,
    ) -> Result<(SocketAddr, RecoverableService), SessionError> {
        std::fs::create_dir_all(&config.journal_dir).map_err(JournalError::Io)?;
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(JournalError::Io)?;
        let addr = listener.local_addr().map_err(JournalError::Io)?;
        let router = ShardRouter::new(config.service.monitor.condition, config.service.shards);
        let shards = router.effective_shards();
        let slots = config.slots.max(1);
        // Scan the journal directory: every intact journal becomes a live
        // session whose frames feed the initial pool.
        let mut recovered: Vec<Option<(SessionRx, Recovered)>> = (0..slots).map(|_| None).collect();
        let mut recovered_count = 0usize;
        for entry in std::fs::read_dir(&config.journal_dir).map_err(JournalError::Io)? {
            let path = entry.map_err(JournalError::Io)?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("evjl") {
                continue;
            }
            let (state, contents) = SessionRx::reopen(&path)?;
            let index = contents.client as usize;
            if index >= slots || recovered[index].is_some() {
                return Err(SessionError::Journal(JournalError::BadHeader(format!(
                    "journal {} names client {} (have {} slots, duplicate or out of range)",
                    path.display(),
                    contents.client,
                    slots
                ))));
            }
            recovered_count += 1;
            recovered[index] = Some((state, contents));
        }
        let shared = Arc::new(Shared {
            universe: universe.clone(),
            router,
            fanout: Arc::new(Fanout::new(slots, shards)),
            slots: (0..slots)
                .map(|_| {
                    Mutex::new(SlotState {
                        session: None,
                        senders: None,
                        epoch: 0,
                        stats: SessionStats::default(),
                    })
                })
                .collect(),
            shutting_down: AtomicBool::new(false),
            ctl: Mutex::new(Ctl {
                pool: None,
                replays: Vec::new(),
                restarts: 0,
                recovered_at_startup: recovered_count,
                replayed_frames: 0,
                replayed_events: 0,
                chain_mismatches: 0,
            }),
            orphan_errors: AtomicU64::new(0),
            config,
        });
        // Initial pool + startup replay of recovered journals.
        {
            let mut ctl = shared.ctl.lock().expect("ctl lock");
            let (per_slot, pool) = build_pool(&shared);
            ctl.pool = Some(pool);
            for (index, (senders, entry)) in per_slot.into_iter().zip(recovered).enumerate() {
                match entry {
                    Some((state, contents)) if !contents.frames.is_empty() => {
                        let client = state.journal().client();
                        let expected_chain = state.cursor().chain;
                        shared.slots[index].lock().expect("slot lock").session = Some(state);
                        ctl.replays.push(spawn_replay(
                            Arc::clone(&shared),
                            index,
                            0,
                            client,
                            expected_chain,
                            contents.frames,
                            senders,
                        ));
                    }
                    entry => {
                        let mut slot = shared.slots[index].lock().expect("slot lock");
                        slot.session = entry.map(|(state, _)| state);
                        slot.senders = Some(senders);
                    }
                }
            }
        }
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("evlin-rsvc-accept".into())
            .spawn(move || {
                let mut joins = Vec::new();
                loop {
                    let Ok((stream, _)) = listener.accept() else {
                        break;
                    };
                    if acceptor_shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = stream.set_nodelay(true);
                    let Ok((tx, rx)) = tcp_pair(stream) else {
                        continue;
                    };
                    let shared = Arc::clone(&acceptor_shared);
                    joins.push(
                        std::thread::Builder::new()
                            .name("evlin-rsvc-conn".into())
                            .spawn(move || run_session_handler(shared, rx, tx))
                            .expect("spawn handler thread"),
                    );
                }
                joins
            })
            .expect("spawn acceptor thread");
        // Watchdog: a pool thread finishing while the service is live means
        // a crashed shard — restart from the journals.
        let watchdog_shared = Arc::clone(&shared);
        let watchdog = std::thread::Builder::new()
            .name("evlin-rsvc-watchdog".into())
            .spawn(move || {
                let tick = watchdog_shared
                    .config
                    .heartbeat
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(2));
                while !watchdog_shared.shutting_down.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    if watchdog_shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut ctl) = watchdog_shared.ctl.try_lock() else {
                        continue; // a restart is already in progress
                    };
                    let crashed = ctl.pool.as_ref().is_some_and(|pool| {
                        pool.ingest_joins.iter().any(|j| j.is_finished())
                            || pool.check_joins.iter().any(|j| j.is_finished())
                    });
                    if crashed {
                        let _ = restart_pool(&watchdog_shared, &mut ctl);
                    }
                }
            })
            .expect("spawn watchdog thread");
        Ok((
            addr,
            RecoverableService {
                shared,
                addr,
                acceptor,
                watchdog,
            },
        ))
    }

    /// The endpoint clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Kills the replica pool as if it crashed — its in-flight state is
    /// discarded and its verdict broadcasts suppressed — then rebuilds it by
    /// replaying every session journal through a fresh staged pipeline.
    /// Returns once the new pool is up (replays complete in the background;
    /// handlers shed with `OVERLOADED` until their slot's replay installs
    /// the new senders).
    pub fn kill_and_restart(&self) -> Result<(), SessionError> {
        let mut ctl = self.shared.ctl.lock().expect("ctl lock");
        restart_pool(&self.shared, &mut ctl)
    }

    /// Pool restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.shared.ctl.lock().expect("ctl lock").restarts
    }

    /// Winds the service down and reports.  Call after every client
    /// finished: handlers are joined (bounded by the heartbeat deadline),
    /// buffered tails are flushed, outstanding replays complete, the final
    /// pool drains and broadcasts its reliable finals, and the verdict plane
    /// closes.
    pub fn finish(self) -> RecoveryReport {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept`.
        let _ = TcpStream::connect(self.addr);
        for join in self.acceptor.join().expect("acceptor thread") {
            let _ = join.join();
        }
        let _ = self.watchdog.join();
        let mut ctl = self.shared.ctl.lock().expect("ctl lock");
        // Drain the slots' buffered tails without ever blocking on a
        // stalled ring: flush what fits, drop each sender the moment it
        // empties (closing its ring lets the merge advance past it), retry
        // the rest.  Terminates because every open ring either has data or
        // belongs to a sender in this loop.
        let mut pending: Vec<FrameSender<Event>> = Vec::new();
        for slot in &self.shared.slots {
            if let Some(senders) = slot.lock().expect("slot lock").senders.take() {
                pending.extend(senders);
            }
        }
        loop {
            pending.retain_mut(|sender| {
                sender.try_flush();
                sender.buffered_len() > 0
            });
            if pending.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        // Outstanding replays feed live rings; they finish, see the
        // shutdown flag, and drop their senders.
        for join in std::mem::take(&mut ctl.replays) {
            if let Ok(out) = join.join() {
                absorb_replay(&mut ctl, out);
            }
        }
        // The final pool drains to end-of-stream; `alive` stayed set, so
        // the per-shard finals broadcast reliably before the plane closes.
        let pool = ctl.pool.take().expect("pool present at shutdown");
        let ingests: Vec<IngestOut> = pool
            .ingest_joins
            .into_iter()
            .map(|j| j.join().expect("ingest thread"))
            .collect();
        let checks: Vec<CheckOut> = pool
            .check_joins
            .into_iter()
            .map(|j| j.join().expect("check thread"))
            .collect();
        self.shared.fanout.close_all();
        let accepted_streams = ingests.iter().all(|i| i.accepted.is_some()).then(|| {
            ingests
                .iter()
                .map(|i| i.accepted.clone().unwrap())
                .collect()
        });
        let shards: Vec<ShardReport> = ingests
            .into_iter()
            .zip(checks)
            .map(|(ingest, check)| ShardReport {
                report: check.report,
                merge: ingest.merge,
                rejected_events: ingest.rejected,
                rounds: check.rounds,
                summary: check.summary,
            })
            .collect();
        RecoveryReport {
            verdict: recompose_verdicts(shards.iter().map(|s| s.report.verdict.clone())),
            shards,
            sessions: self
                .shared
                .slots
                .iter()
                .map(|slot| slot.lock().expect("slot lock").stats)
                .collect(),
            restarts: ctl.restarts,
            recovered_at_startup: ctl.recovered_at_startup,
            replayed_frames: ctl.replayed_frames,
            replayed_events: ctl.replayed_events,
            replay_chain_mismatches: ctl.chain_mismatches,
            verdicts_dropped: self.shared.fanout.dropped_so_far(),
            orphan_connections: self.shared.orphan_errors.load(Ordering::Relaxed),
            accepted_streams,
        }
    }
}

// ---------------------------------------------------------------------------
// The recoverable client
// ---------------------------------------------------------------------------

/// Deterministic connection chaos for [`RecoverableClient`]: every
/// connection attempt gets its own seed-derived [`ChaosPlan`], so a chaos
/// schedule of partial writes and mid-frame kills replays exactly from the
/// top-level seed.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectChaos {
    /// Top-level seed; attempt *i* derives its plan from `seed` and *i*.
    pub seed: u64,
    /// Per-mille probability that a send is split into two writes.
    pub split_per_mille: u16,
    /// Minimum frames a connection survives before its kill fires.
    pub kill_after_min: u64,
    /// Width of the kill window: the kill lands uniformly in
    /// `[kill_after_min, kill_after_min + kill_after_span)`.
    pub kill_after_span: u64,
}

impl ReconnectChaos {
    /// The plan armed on connection attempt `attempt`.
    pub fn plan_for(&self, attempt: u64) -> ChaosPlan {
        let mut x = (self.seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let span = self.kill_after_span.max(1);
        ChaosPlan::new(x)
            .split_writes(self.split_per_mille)
            .kill_at(self.kill_after_min + (x >> 7) % span)
    }
}

/// Client-side knobs for session recovery.
#[derive(Debug, Clone)]
pub struct ClientRecoveryConfig {
    /// Events per wire frame.
    pub frame_capacity: usize,
    /// Reconnect pacing; exhaustion turns the client terminally dead with a
    /// typed [`RetriesExhausted`].  The budget re-arms on every ack, so only
    /// *consecutive* fruitless attempts count.
    pub backoff: Backoff,
    /// How long to wait on the ack plane before probing liveness with a
    /// ping (and, on continued silence, reconnecting).
    pub ack_timeout: Duration,
    /// Unacked frames the window may hold before the client blocks on (and
    /// if necessary forces) ack progress.
    pub window_limit: usize,
    /// Deterministic connection-level fault injection, if any.
    pub chaos: Option<ReconnectChaos>,
}

impl ClientRecoveryConfig {
    /// Defaults sized for tests and demos.
    pub fn standard(seed: u64) -> ClientRecoveryConfig {
        ClientRecoveryConfig {
            frame_capacity: 64,
            backoff: Backoff::standard(seed),
            ack_timeout: Duration::from_millis(200),
            window_limit: 32,
            chaos: None,
        }
    }
}

/// Wire counters for one recoverable client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverableClientStats {
    /// Event frames staged into the session window.
    pub frames: u64,
    /// Events inside those frames.
    pub events: u64,
    /// Events dropped by the well-formedness filter before the wire.
    pub dropped_malformed: u64,
    /// Durability acks received.
    pub acks: u64,
    /// Successful reconnects after the first connection.
    pub reconnects: u64,
    /// Typed `OVERLOADED` rejections honored (window rewound, retried).
    pub overloads: u64,
    /// Frames sent again on a later connection (window replays).
    pub retransmitted_frames: u64,
    /// Sends the transport refused (each costs the connection).
    pub send_failures: u64,
    /// Events recorded after the client turned terminally dead (dropped;
    /// [`RecoverableClient::finish`] surfaces the death as an error).
    pub dropped_after_death: u64,
    /// Frames on the ack/verdict plane that were not decodable or legal.
    pub protocol_errors: u64,
}

/// The [`EventSink`] behind a [`RecoverableClient`]: batches events into
/// `EVENTS` frames, stages them in the session window, and pumps the
/// connection — reconnecting, replaying and honoring rejections as needed.
struct SessionSink {
    addr: SocketAddr,
    client: u32,
    capacity: usize,
    ack_timeout: Duration,
    window_limit: usize,
    chaos: Option<ReconnectChaos>,
    backoff: Backoff,
    window: SessionTx,
    conn: Option<(TcpTx, TcpRx)>,
    connected_once: bool,
    attempts_total: u64,
    /// Frames below this seq were handed to the *current* connection.
    sent_up_to: u64,
    /// High-water mark of frames ever handed to any connection — what
    /// distinguishes a retransmission from a first send.
    high_water: u64,
    /// Consecutive ack waits without window progress; a few in a row force
    /// a reconnect (the universal recovery: the resume replay resends
    /// whatever the server is missing).
    stalls: u32,
    buf: Vec<(u64, Event)>,
    chain: u64,
    events_total: u64,
    summaries: Vec<VerdictSummary>,
    stats: RecoverableClientStats,
    dead: Option<RetriesExhausted>,
    ping_token: u64,
}

impl SessionSink {
    fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Connects (with backoff) until a hello goes out, or the retry budget
    /// dies.  The hello always carries the resume cursor: against a fresh
    /// session it claims zero frames, which trivially validates.
    fn ensure_connected(&mut self) -> bool {
        while self.conn.is_none() {
            if self.dead.is_some() {
                return false;
            }
            let attempt = self.attempts_total;
            self.attempts_total += 1;
            if let Ok((mut tx, rx)) = tcp_connect(self.addr) {
                if let Some(chaos) = &self.chaos {
                    tx.set_chaos(chaos.plan_for(attempt));
                }
                let hello = WireFrame::Hello {
                    client: self.client,
                    version: VERSION,
                    session: self.window.session(),
                    resume: Some(self.window.resume_cursor()),
                };
                if tx.send(encode_frame(&hello)).is_ok() {
                    if self.connected_once {
                        self.stats.reconnects += 1;
                    }
                    self.connected_once = true;
                    // Replay starts at the last acked frame.
                    self.sent_up_to = self.window.resume_cursor().frames;
                    self.stalls = 0;
                    self.conn = Some((tx, rx));
                    return true;
                }
            }
            match self.backoff.next_delay() {
                Ok(delay) => std::thread::sleep(delay),
                Err(e) => {
                    self.dead = Some(e);
                    return false;
                }
            }
        }
        true
    }

    /// Sends every window frame at or above `sent_up_to`.  Returns `false`
    /// (after disconnecting) if the connection died mid-send.
    fn send_unsent(&mut self) -> bool {
        let mut ok = true;
        {
            let Some((tx, _)) = &mut self.conn else {
                return false;
            };
            let base = self.window.resume_cursor().frames;
            for (i, bytes) in self.window.unacked().enumerate() {
                let seq = base + i as u64;
                if seq < self.sent_up_to {
                    continue;
                }
                if tx.send(bytes.to_vec()).is_err() {
                    self.stats.send_failures += 1;
                    ok = false;
                    break;
                }
                if seq < self.high_water {
                    self.stats.retransmitted_frames += 1;
                } else {
                    self.high_water = seq + 1;
                }
                self.sent_up_to = seq + 1;
            }
        }
        if !ok {
            self.disconnect();
        }
        ok
    }

    fn handle_frame(&mut self, bytes: &[u8]) {
        match decode_frame(bytes) {
            Ok(WireFrame::Ack { cursor, .. }) => {
                self.stats.acks += 1;
                // An ack proves a live, cooperating replica: re-arm the
                // retry budget.
                self.backoff.reset();
                self.window.on_ack(cursor);
            }
            Ok(WireFrame::Overloaded { retry_after_ms, .. }) => {
                self.stats.overloads += 1;
                // The shed frame (and everything after it) must go again;
                // rewinding to the acked cursor re-sends a superset, and
                // duplicates are dedup'd server-side.
                self.sent_up_to = self.window.resume_cursor().frames;
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.min(1000))));
            }
            Ok(WireFrame::Verdict(summary)) => self.summaries.push(summary),
            Ok(WireFrame::Pong { .. }) => {}
            Ok(_) | Err(_) => self.stats.protocol_errors += 1,
        }
    }

    /// Drains whatever the replica already sent, without meaningful blocking.
    fn drain_incoming(&mut self) {
        loop {
            let result = {
                let Some((_, rx)) = &mut self.conn else {
                    return;
                };
                rx.recv_timeout(Duration::from_millis(1))
            };
            match result {
                Ok(Some(bytes)) => self.handle_frame(&bytes),
                Err(WireError::PeerTimeout) => return,
                Ok(None) | Err(_) => {
                    self.disconnect();
                    return;
                }
            }
        }
    }

    /// One bounded wait for ack progress; silence is answered with a ping,
    /// continued silence (or repeated progress-free waits) with a reconnect.
    fn await_progress(&mut self) {
        let before = self.window.window_len();
        let result = {
            let Some((_, rx)) = &mut self.conn else {
                return;
            };
            rx.recv_timeout(self.ack_timeout)
        };
        match result {
            Ok(Some(bytes)) => self.handle_frame(&bytes),
            Err(WireError::PeerTimeout) => {
                self.ping_token += 1;
                let ping = encode_frame(&WireFrame::Ping {
                    token: self.ping_token,
                });
                let pong = {
                    let Some((tx, rx)) = &mut self.conn else {
                        return;
                    };
                    tx.send(ping).is_ok() && rx.recv_timeout(self.ack_timeout).is_ok()
                };
                if !pong {
                    // Dead or wedged peer: reconnect and replay.
                    self.disconnect();
                    return;
                }
            }
            Ok(None) | Err(_) => {
                self.disconnect();
                return;
            }
        }
        if self.window.window_len() < before {
            self.stalls = 0;
        } else {
            self.stalls += 1;
            if self.stalls >= 4 {
                // Alive but not acking (e.g. a lost OVERLOADED): force the
                // resume path, which retransmits from the acked cursor.
                self.stalls = 0;
                self.disconnect();
            }
        }
    }

    /// Drives the connection until the window holds at most `target`
    /// frames, or the client dies.
    fn pump(&mut self, target: usize) {
        loop {
            if self.dead.is_some() {
                return;
            }
            if !self.ensure_connected() {
                return;
            }
            if !self.send_unsent() {
                continue;
            }
            self.drain_incoming();
            if self.conn.is_none() {
                continue;
            }
            if self.window.window_len() <= target {
                return;
            }
            self.await_progress();
        }
    }

    /// Seals the current batch into a frame, stages it in the window, and
    /// pumps until the window is back under its limit.
    fn ship(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.dead.is_some() {
            self.stats.dropped_after_death += self.buf.len() as u64;
            self.buf.clear();
            return;
        }
        let events = std::mem::take(&mut self.buf);
        let fingerprint = event_batch_fingerprint(self.client, &events);
        self.chain = chain_fingerprint(self.chain, fingerprint);
        self.events_total += events.len() as u64;
        self.stats.frames += 1;
        self.stats.events += events.len() as u64;
        let frame = WireFrame::Events {
            client: self.client,
            frame_seq: self.window.next_seq(),
            events,
            fingerprint,
        };
        self.window.stage(encode_frame(&frame));
        let target = self.window_limit;
        self.pump(target);
    }
}

impl EventSink for SessionSink {
    fn accept(&mut self, seq: u64, event: Event) {
        self.buf.push((seq, event));
        if self.buf.len() >= self.capacity {
            self.ship();
        }
    }

    fn flush(&mut self) {
        self.ship();
    }
}

/// A producer client that survives connection loss and replica restarts.
///
/// The recoverable twin of [`crate::ServiceClient`]: the same
/// [`RecorderShard`] recording core, but over a session-windowed sink that
/// journals durability with the replica.  Every recorded event is delivered
/// to the monitor **exactly once** as long as the retry budget holds;
/// if it dies, [`RecoverableClient::finish`] returns the typed
/// [`RetriesExhausted`] instead of a report.
pub struct RecoverableClient {
    shard: RecorderShard<SessionSink>,
}

impl RecoverableClient {
    /// Connects to a [`RecoverableService`] endpoint under `session` (must
    /// be nonzero and never reused for a different stream).
    ///
    /// `seq` is the shared global sequence source; every client of one run
    /// must clone the same counter (see [`crate::ServiceClient::connect`]).
    pub fn connect_tcp(
        addr: SocketAddr,
        client: u32,
        session: u64,
        seq: Arc<AtomicU64>,
        config: ClientRecoveryConfig,
    ) -> Result<RecoverableClient, RetriesExhausted> {
        let mut sink = SessionSink {
            addr,
            client,
            capacity: config.frame_capacity.max(1),
            ack_timeout: config.ack_timeout,
            window_limit: config.window_limit.max(1),
            chaos: config.chaos,
            backoff: config.backoff,
            window: SessionTx::new(client, session.max(1)),
            conn: None,
            connected_once: false,
            attempts_total: 0,
            sent_up_to: 0,
            high_water: 0,
            stalls: 0,
            buf: Vec::new(),
            chain: client as u64,
            events_total: 0,
            summaries: Vec::new(),
            stats: RecoverableClientStats::default(),
            dead: None,
            ping_token: 0,
        };
        if !sink.ensure_connected() {
            return Err(sink.dead.expect("death reason recorded"));
        }
        Ok(RecoverableClient {
            shard: RecorderShard::over(seq, sink),
        })
    }

    /// Records an invocation event by `process` on `object`.
    pub fn invoke(&mut self, process: ProcessId, object: ObjectId, invocation: Invocation) {
        self.shard.invoke(process, object, invocation);
    }

    /// Records a response event by `process` on `object`.
    pub fn respond(&mut self, process: ProcessId, object: ObjectId, value: Value) {
        self.shard.respond(process, object, value);
    }

    /// Ships the current partial frame now.
    pub fn flush(&mut self) {
        self.shard.flush();
    }

    /// Ends the stream: flushes the tail, pumps until *every* frame is
    /// acked durable, sends the shutdown audit (totals + chained
    /// fingerprint) and half-closes.  [`Err`] is the typed terminal state —
    /// the retry budget died with frames still unacked.
    pub fn finish(self) -> Result<ClosedRecoverableClient, RetriesExhausted> {
        let (mut sink, dropped_malformed) = self.shard.into_sink();
        sink.stats.dropped_malformed = dropped_malformed as u64;
        // Close over a clean connection: a chaos-armed link could die
        // *after* the shutdown handshake, severing the verdict plane the
        // finals arrive on.  Connection chaos stresses the streaming path
        // (journals, resume, dedup); the closing connection is the
        // measurement channel and reconnects un-armed.
        if sink.chaos.take().is_some() {
            sink.disconnect();
        }
        sink.pump(0);
        if let Some(e) = sink.dead {
            return Err(e);
        }
        let shutdown = encode_frame(&WireFrame::Shutdown {
            client: sink.client,
            events_sent: sink.events_total,
            stream_fingerprint: sink.chain,
        });
        loop {
            if !sink.ensure_connected() {
                return Err(sink.dead.expect("death reason recorded"));
            }
            let sent = {
                let Some((tx, _)) = &mut sink.conn else {
                    continue;
                };
                tx.send(shutdown.clone()).is_ok()
            };
            if sent {
                break;
            }
            sink.stats.send_failures += 1;
            sink.disconnect();
        }
        let (mut tx, rx) = sink.conn.take().expect("connected above");
        tx.close();
        drop(tx);
        Ok(ClosedRecoverableClient {
            rx,
            stats: sink.stats,
            summaries: sink.summaries,
        })
    }
}

/// A finished recoverable client still listening on the verdict plane.
pub struct ClosedRecoverableClient {
    rx: TcpRx,
    stats: RecoverableClientStats,
    summaries: Vec<VerdictSummary>,
}

impl ClosedRecoverableClient {
    /// Drains verdict frames until the service hangs up.  Verdicts received
    /// mid-run (interleaved with acks) are included.
    pub fn collect_verdicts(mut self) -> RecoverableClientReport {
        let mut summaries = self.summaries;
        let mut stats = self.stats;
        while let Ok(Some(bytes)) = self.rx.recv() {
            match decode_frame(&bytes) {
                Ok(WireFrame::Verdict(summary)) => summaries.push(summary),
                Ok(WireFrame::Ack { .. }) | Ok(WireFrame::Pong { .. }) => {}
                Ok(_) | Err(_) => stats.protocol_errors += 1,
            }
        }
        RecoverableClientReport { summaries, stats }
    }
}

/// What a recoverable client saw over one run.
#[derive(Debug, Clone)]
pub struct RecoverableClientReport {
    /// Verdict rounds received, in arrival order.
    pub summaries: Vec<VerdictSummary>,
    /// The client's wire counters.
    pub stats: RecoverableClientStats,
}

impl RecoverableClientReport {
    /// The final summaries (one per shard that reported), in shard order.
    pub fn final_summaries(&self) -> Vec<&VerdictSummary> {
        let mut finals: Vec<&VerdictSummary> = self.summaries.iter().filter(|s| s.last).collect();
        finals.sort_by_key(|s| s.shard);
        finals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconnect_chaos_plans_are_deterministic_per_attempt() {
        let chaos = ReconnectChaos {
            seed: 99,
            split_per_mille: 250,
            kill_after_min: 3,
            kill_after_span: 5,
        };
        // Same seed and attempt: identical plans (compare via Debug — the
        // plan's state is its identity).
        assert_eq!(
            format!("{:?}", chaos.plan_for(0)),
            format!("{:?}", chaos.plan_for(0))
        );
        // Different attempts draw different plans.
        assert_ne!(
            format!("{:?}", chaos.plan_for(0)),
            format!("{:?}", chaos.plan_for(1))
        );
    }
}
