//! The producer side: recording clients that stream events over the wire.
//!
//! A [`ServiceClient`] is the service-facing twin of the in-process
//! [`evlin_runtime::RecorderShard`] — in fact it *is* a `RecorderShard`,
//! instantiated over a [`WireSink`] that encodes frame batches with the
//! [`crate::wire`] codec instead of pushing into an in-process ring.  The
//! shared well-formedness filter and the shared global sequence counter are
//! therefore byte-identical to the pipeline's, which is what lets the
//! differential tests compare service verdicts against the offline kernel
//! without normalizing anything.
//!
//! Lifecycle: [`ServiceClient`] sends a hello on construction, event frames
//! while recording, and on [`ServiceClient::finish`] a final flush plus a
//! shutdown frame carrying its event total and chained stream fingerprint.
//! The returned [`ClosedClient`] then drains the replica's verdict plane
//! ([`ClosedClient::collect_verdicts`]) until the service hangs up.

use crate::transport::{FrameRx, FrameTx};
use crate::wire::{
    chain_fingerprint, decode_frame, encode_frame, event_batch_fingerprint, VerdictSummary,
    WireError, WireFrame, VERSION,
};
use evlin_history::{Event, ObjectId, ProcessId};
use evlin_runtime::{EventSink, RecorderShard};
use evlin_spec::{Invocation, Value};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Client-side wire counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Event frames shipped.
    pub frames: u64,
    /// Events shipped inside those frames.
    pub events: u64,
    /// Frames shipped below capacity (explicit flushes and the stream tail).
    pub partial_frames: u64,
    /// Events recorded but dropped by the well-formedness filter before
    /// they reached the wire.
    pub dropped_malformed: u64,
    /// Frames the transport refused because the replica side hung up.
    pub send_failures: u64,
}

/// An [`EventSink`] that batches events into wire frames — the adapter that
/// plugs the runtime recorder into a transport.
pub struct WireSink {
    tx: Box<dyn FrameTx>,
    client: u32,
    capacity: usize,
    buf: Vec<(u64, Event)>,
    frame_seq: u64,
    stream_fingerprint: u64,
    stats: ClientStats,
}

impl WireSink {
    /// Wraps `tx`, batching up to `frame_capacity` events per frame.
    pub fn new(tx: Box<dyn FrameTx>, client: u32, frame_capacity: usize) -> Self {
        WireSink {
            tx,
            client,
            capacity: frame_capacity.max(1),
            buf: Vec::with_capacity(frame_capacity.max(1)),
            frame_seq: 0,
            stream_fingerprint: client as u64,
            stats: ClientStats::default(),
        }
    }

    fn ship(&mut self, partial: bool) {
        if self.buf.is_empty() {
            return;
        }
        let events = std::mem::replace(&mut self.buf, Vec::with_capacity(self.capacity));
        let fingerprint = event_batch_fingerprint(self.client, &events);
        self.stats.frames += 1;
        self.stats.events += events.len() as u64;
        if partial {
            self.stats.partial_frames += 1;
        }
        self.stream_fingerprint = chain_fingerprint(self.stream_fingerprint, fingerprint);
        let frame = WireFrame::Events {
            client: self.client,
            frame_seq: self.frame_seq,
            events,
            fingerprint,
        };
        self.frame_seq += 1;
        if self.tx.send(encode_frame(&frame)).is_err() {
            self.stats.send_failures += 1;
        }
    }
}

impl EventSink for WireSink {
    fn accept(&mut self, seq: u64, event: Event) {
        self.buf.push((seq, event));
        if self.buf.len() >= self.capacity {
            self.ship(false);
        }
    }

    fn flush(&mut self) {
        self.ship(true);
    }
}

/// A producer client of the monitoring service.
///
/// Obtained from [`crate::replica::MonitorService::in_process`] or via
/// [`ServiceClient::connect`] over any transport (TCP included).  One client
/// serves one or more recording *processes*, but — like a recorder shard —
/// all events of a given process must go through the same client.
pub struct ServiceClient {
    shard: RecorderShard<WireSink>,
    rx: Box<dyn FrameRx>,
}

impl ServiceClient {
    /// Builds a client over an already-connected transport, sending the
    /// protocol hello immediately.
    ///
    /// `seq` is the shared global sequence source; every client of one
    /// service run must hold a clone of the same counter so that the
    /// replicas can merge streams back into the recorded real-time order.
    pub fn connect(
        mut tx: Box<dyn FrameTx>,
        rx: Box<dyn FrameRx>,
        client: u32,
        seq: Arc<AtomicU64>,
        frame_capacity: usize,
    ) -> Result<Self, WireError> {
        tx.send(encode_frame(&WireFrame::Hello {
            client,
            version: VERSION,
            session: 0,
            resume: None,
        }))?;
        let sink = WireSink::new(tx, client, frame_capacity);
        Ok(ServiceClient {
            shard: RecorderShard::over(seq, sink),
            rx,
        })
    }

    /// Connects to a service endpoint over loopback (or any reachable) TCP
    /// and performs the hello handshake.
    ///
    /// The counterpart of [`crate::replica::MonitorService::loopback_tcp`];
    /// the rules of [`ServiceClient::connect`] about the shared `seq`
    /// counter apply unchanged.
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        client: u32,
        seq: Arc<AtomicU64>,
        frame_capacity: usize,
    ) -> Result<Self, WireError> {
        let (tx, rx) = crate::transport::tcp_connect(addr)?;
        ServiceClient::connect(Box::new(tx), Box::new(rx), client, seq, frame_capacity)
    }

    /// Records an invocation event by `process` on `object`.
    pub fn invoke(&mut self, process: ProcessId, object: ObjectId, invocation: Invocation) {
        self.shard.invoke(process, object, invocation);
    }

    /// Records a response event by `process` on `object`.
    pub fn respond(&mut self, process: ProcessId, object: ObjectId, value: Value) {
        self.shard.respond(process, object, value);
    }

    /// Ships the current partial frame now.
    pub fn flush(&mut self) {
        self.shard.flush();
    }

    /// Ends the client's stream: flushes the tail frame, sends the shutdown
    /// frame (event total plus chained stream fingerprint) and half-closes
    /// the sending direction.  The verdict plane stays open on the returned
    /// [`ClosedClient`].
    pub fn finish(self) -> ClosedClient {
        let (mut sink, dropped_malformed) = self.shard.into_sink();
        sink.stats.dropped_malformed = dropped_malformed as u64;
        let shutdown = WireFrame::Shutdown {
            client: sink.client,
            events_sent: sink.stats.events,
            stream_fingerprint: sink.stream_fingerprint,
        };
        if sink.tx.send(encode_frame(&shutdown)).is_err() {
            sink.stats.send_failures += 1;
        }
        // End the sending direction: `close` half-closes a TCP socket, and
        // dropping the tx hangs up a duplex channel.
        let WireSink { mut tx, stats, .. } = sink;
        tx.close();
        drop(tx);
        ClosedClient { rx: self.rx, stats }
    }
}

/// A finished client still listening on the verdict plane.
pub struct ClosedClient {
    rx: Box<dyn FrameRx>,
    stats: ClientStats,
}

impl ClosedClient {
    /// Drains verdict frames until the service hangs up, returning every
    /// round received together with the client's wire counters.
    ///
    /// Mid-run rounds ride a best-effort path and may be missing (their
    /// round numbers expose the gaps); each shard's final summary is
    /// delivered reliably, after every client's stream has ended.
    pub fn collect_verdicts(mut self) -> ClientReport {
        let mut summaries = Vec::new();
        let mut protocol_errors = 0u64;
        while let Ok(Some(bytes)) = self.rx.recv() {
            match decode_frame(&bytes) {
                Ok(WireFrame::Verdict(summary)) => summaries.push(summary),
                Ok(_) | Err(_) => protocol_errors += 1,
            }
        }
        ClientReport {
            summaries,
            stats: self.stats,
            protocol_errors,
        }
    }
}

/// What a client saw over one service run.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Verdict rounds received, in arrival order.
    pub summaries: Vec<VerdictSummary>,
    /// The client's wire counters.
    pub stats: ClientStats,
    /// Frames on the verdict plane that were not decodable verdicts.
    pub protocol_errors: u64,
}

impl ClientReport {
    /// The final summaries (one per shard that reported), in shard order.
    pub fn final_summaries(&self) -> Vec<&VerdictSummary> {
        let mut finals: Vec<&VerdictSummary> = self.summaries.iter().filter(|s| s.last).collect();
        finals.sort_by_key(|s| s.shard);
        finals
    }
}
