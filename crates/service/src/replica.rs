//! The replica side: connection handlers, the per-object shard router and
//! the pool of staged monitor replicas.
//!
//! ## Topology
//!
//! ```text
//!  conn 0 ──▶ handler 0 ─┐                 ┌─▶ merge+ingest 0 ──▶ check 0 ─┐
//!  conn 1 ──▶ handler 1 ─┼─ ShardRouter ──┤        …                …      ├─▶ verdicts
//!  conn … ──▶ handler … ─┘                 └─▶ merge+ingest M ──▶ check M ─┘
//! ```
//!
//! One **handler** thread per client connection decodes wire frames
//! (rejecting corruption at the codec layer), audits frame sequence numbers
//! and routes each event — by [`ShardRouter`], a pure function of the
//! [`evlin_history::ObjectId`] — into per-shard, per-producer frame rings.  Each **replica
//! shard** then runs the PR-7 staged pipeline as its inner loop: a k-way
//! merge restores global sequence order across clients, quiescent-cut
//! ingest runs on the merge thread, and kernel checking runs on its own
//! thread.  Per-object routing is sound exactly when the condition is
//! object-local ([`evlin_checker::monitor::MonitorCondition::is_object_local`]); the router
//! collapses to one shard otherwise, so a non-local condition can never be
//! silently mis-sharded.
//!
//! ## Verdict plane
//!
//! Every checked batch produces a [`VerdictSummary`] round, broadcast to
//! all connected clients *best-effort* (a saturated link drops the round —
//! round numbers expose the gap).  Each shard's final summary is delivered
//! *reliably*: mid-run sends leave `shards` slots of every bounded link
//! unused ([`crate::transport::FrameTx::has_room`]), so the final blocking
//! sends always find room and the wind-down cannot deadlock on a slow
//! client.  The same final summaries come back in the [`ServiceReport`].

use crate::client::ServiceClient;
use crate::transport::{duplex, tcp_pair, FrameRx, FrameTx};
use crate::wire::{
    chain_fingerprint, decode_frame_with, encode_frame, VerdictSummary, WireFrame, LEGACY_VERSION,
    VERSION,
};
use evlin_checker::monitor::{
    recompose_verdicts, stages, IngestSummary, MonitorCheck, MonitorConfig, MonitorIngest,
    MonitorReport, MonitorVerdict, SegmentBatch, ShardRouter,
};
use evlin_history::{Event, ObjectUniverse};
use evlin_runtime::channel::sharded::{self, FrameSender, MergeStats};
use evlin_runtime::channel::{self, Receiver, Sender};
use evlin_runtime::FaultPlan;
use evlin_sim::zobrist::fold_words;
use evlin_spec::Invocation;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for one service run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Requested monitor replica shards (collapsed to 1 for conditions that
    /// are not object-local).
    pub shards: usize,
    /// The monitor configuration every replica shard runs.
    pub monitor: MonitorConfig,
    /// Events per wire frame (clients) and per in-replica ring frame.
    pub frame_capacity: usize,
    /// In-flight frames per producer ring inside each replica shard.
    pub ring_frames: usize,
    /// Frames in flight per connection direction (duplex transport).
    pub conn_frames: usize,
    /// Segment batches in flight between a shard's ingest and check stages.
    pub stage_queue: usize,
    /// Frame-granularity fault plan injected under the client→replica
    /// direction of the in-process transport (per-connection seeds derived
    /// via [`FaultPlan::for_shard`]).  Ignored by the TCP transport.
    pub fault: Option<FaultPlan>,
    /// Retain each shard's post-filter accepted event stream in the report
    /// — the hook the differential tests pin the offline kernel against.
    pub capture_streams: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            monitor: MonitorConfig::default(),
            frame_capacity: 512,
            ring_frames: 8,
            conn_frames: 64,
            stage_queue: 8,
            fault: None,
            capture_streams: false,
        }
    }
}

/// Wire-level counters for one client connection, as seen by its handler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Event frames accepted (decoded and fingerprint-verified).
    pub frames: u64,
    /// Events delivered to the shard router.
    pub events: u64,
    /// Frames dropped whole: codec rejections, including event-batch
    /// fingerprint mismatches.
    pub corrupt_frames: u64,
    /// Forward jumps in the per-client frame sequence (lost frames).
    pub frame_gaps: u64,
    /// Frame-sequence regressions (duplicated or reordered frames).
    pub misordered_frames: u64,
    /// Hello frames seen.
    pub hellos: u64,
    /// Hello frames announcing an unsupported protocol version; the
    /// connection stops routing events after one.
    pub bad_hellos: u64,
    /// Shutdown frames seen.
    pub shutdowns: u64,
    /// Shutdown audits that failed: the client's announced event total or
    /// chained stream fingerprint disagreed with what this handler accepted
    /// (expected under a lossy transport — it is the loss *detector*).
    pub shutdown_mismatches: u64,
    /// Frames that were structurally valid but illegal in this direction or
    /// connection state.
    pub protocol_errors: u64,
}

/// One replica shard's contribution to the [`ServiceReport`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The staged monitor's report for this shard's substream.
    pub report: MonitorReport,
    /// k-way merge counters (frames, events, misordered frames…).
    pub merge: MergeStats,
    /// Events the monitor's well-formedness filter rejected (orphan
    /// responses and double invocations produced by transport faults).
    pub rejected_events: u64,
    /// Verdict rounds the shard emitted (including the final one).
    pub rounds: u64,
    /// The shard's final verdict summary, as sent on the wire.
    pub summary: VerdictSummary,
}

/// What one service run produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The recomposed verdict over all shards
    /// ([`recompose_verdicts`]).
    pub verdict: MonitorVerdict,
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Per-connection wire counters, indexed by connection order.
    pub connections: Vec<ConnStats>,
    /// Mid-run verdict rounds dropped on saturated client links.
    pub verdicts_dropped: u64,
    /// Each shard's accepted (post-filter) event stream, present when
    /// [`ServiceConfig::capture_streams`] was set.
    pub accepted_streams: Option<Vec<Vec<Event>>>,
}

impl ServiceReport {
    /// Total events checked across all shards.
    pub fn events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.report.stats.events as u64)
            .sum()
    }

    /// Total completed operations decided across all shards.
    pub fn checked_ops(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.report.stats.checked_ops as u64)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Verdict fanout
// ---------------------------------------------------------------------------

pub(crate) struct Fanout {
    writers: Mutex<Vec<Option<Box<dyn FrameTx>>>>,
    /// Slots every bounded link keeps free for final summaries.
    reserve: usize,
    dropped: AtomicU64,
}

impl Fanout {
    pub(crate) fn new(conns: usize, reserve: usize) -> Self {
        let mut writers = Vec::with_capacity(conns);
        writers.resize_with(conns, || None);
        Fanout {
            writers: Mutex::new(writers),
            reserve,
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn register(&self, conn: usize, tx: Box<dyn FrameTx>) {
        self.writers.lock().expect("fanout lock")[conn] = Some(tx);
    }

    pub(crate) fn broadcast(&self, summary: &VerdictSummary, reliable: bool) {
        let bytes = encode_frame(&WireFrame::Verdict(summary.clone()));
        let mut writers = self.writers.lock().expect("fanout lock");
        for writer in writers.iter_mut().flatten() {
            if reliable {
                // Non-blocking by construction: best-effort sends always
                // left `reserve` (= shards) slots free, and this lock is the
                // only producer of the link.
                let _ = writer.send(bytes.clone());
            } else if writer.has_room(self.reserve) {
                if !writer.try_send(bytes.clone()).unwrap_or(true) {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sends one frame to one connection's writer (pong replies).  Uses the
    /// reserve-aware best-effort path: a liveness reply must never block a
    /// verdict round, and a lost pong just looks like a slow peer.
    pub(crate) fn unicast(&self, conn: usize, bytes: Vec<u8>) {
        let mut writers = self.writers.lock().expect("fanout lock");
        if let Some(writer) = writers.get_mut(conn).and_then(|w| w.as_mut()) {
            if writer.has_room(self.reserve) {
                let _ = writer.try_send(bytes);
            }
        }
    }

    /// Verdict rounds dropped on saturated links so far.
    pub(crate) fn dropped_so_far(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn close_all(&self) {
        let mut writers = self.writers.lock().expect("fanout lock");
        for slot in writers.iter_mut() {
            if let Some(mut tx) = slot.take() {
                tx.close();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Slot claims: connection → per-shard senders
// ---------------------------------------------------------------------------

struct ClaimTable {
    slots: Mutex<Vec<Option<Vec<FrameSender<Event>>>>>,
}

impl ClaimTable {
    fn new(slots: Vec<Vec<FrameSender<Event>>>) -> Self {
        ClaimTable {
            slots: Mutex::new(slots.into_iter().map(Some).collect()),
        }
    }

    /// Claims the sender set for `client`, falling back to any free slot
    /// when the announced id is out of range or already taken (each slot
    /// feeds an equivalent ring set, so the fallback only affects
    /// attribution, never correctness).
    fn claim(&self, client: u32) -> Option<Vec<FrameSender<Event>>> {
        let mut slots = self.slots.lock().expect("claim lock");
        let preferred = client as usize;
        if let Some(set @ Some(_)) = slots.get_mut(preferred) {
            return set.take();
        }
        slots.iter_mut().find_map(|s| s.take())
    }

    /// Drops every unclaimed sender set so the merges see end-of-stream
    /// even for connections that never sent an identifiable frame.
    fn drain(&self) {
        self.slots.lock().expect("claim lock").clear();
    }
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

fn run_handler(
    conn: usize,
    mut rx: Box<dyn FrameRx>,
    writer: Box<dyn FrameTx>,
    claims: Arc<ClaimTable>,
    fanout: Arc<Fanout>,
    router: ShardRouter,
) -> ConnStats {
    fanout.register(conn, writer);
    let mut stats = ConnStats::default();
    let mut interner: Vec<Invocation> = Vec::new();
    let mut senders: Option<Vec<FrameSender<Event>>> = None;
    let mut next_frame_seq: u64 = 0;
    let mut chain: u64 = 0;
    let mut delivered: u64 = 0;
    let mut version_rejected = false;
    loop {
        let bytes = match rx.recv() {
            Ok(Some(bytes)) => bytes,
            // A clean close and a transport failure both end the
            // connection; the failure additionally counts as corruption.
            Ok(None) => break,
            Err(_) => {
                stats.corrupt_frames += 1;
                break;
            }
        };
        let frame = match decode_frame_with(&bytes, &mut interner) {
            Ok(frame) => frame,
            Err(_) => {
                // Fault-tolerance contract: a frame the codec rejects —
                // truncation, bad tags, fingerprint mismatch — is dropped
                // whole and counted; the stream continues.
                stats.corrupt_frames += 1;
                continue;
            }
        };
        match frame {
            WireFrame::Hello {
                client, version, ..
            } => {
                stats.hellos += 1;
                // Both spoken versions are welcome here; resume cursors are
                // the recoverable service's concern (`service::supervisor`),
                // and a plain pool treats a v2 hello as a fresh stream.
                if version != VERSION && version != LEGACY_VERSION {
                    stats.bad_hellos += 1;
                    version_rejected = true;
                } else if senders.is_none() {
                    chain = client as u64;
                    senders = claims.claim(client);
                }
            }
            WireFrame::Events {
                client,
                frame_seq,
                events,
                fingerprint,
            } => {
                if version_rejected {
                    stats.protocol_errors += 1;
                    continue;
                }
                if senders.is_none() {
                    // The hello was lost (or never sent); event frames are
                    // self-describing, so adopt the id they carry.
                    chain = client as u64;
                    senders = claims.claim(client);
                }
                // Sequence audit: gaps are loss, regressions are
                // duplication/reordering.  Either way the events are still
                // delivered — the monitor's well-formedness filter decides
                // what survives — so counting is observability, not policy.
                if frame_seq > next_frame_seq {
                    stats.frame_gaps += 1;
                    next_frame_seq = frame_seq + 1;
                } else if frame_seq < next_frame_seq {
                    stats.misordered_frames += 1;
                } else {
                    next_frame_seq = frame_seq + 1;
                }
                chain = chain_fingerprint(chain, fingerprint);
                stats.frames += 1;
                stats.events += events.len() as u64;
                delivered += events.len() as u64;
                if let Some(senders) = &mut senders {
                    for (seq, event) in events {
                        let shard = router.route(event.object);
                        senders[shard].push(seq, event);
                    }
                    // Ship per wire frame: the sender's own batching would
                    // otherwise sit on a trickling client's events until its
                    // stream ends, starving the sequence-ordered merge (which
                    // cannot emit past a claimed ring it has heard nothing
                    // from).  One wire frame in, at most one ring frame out
                    // per shard.
                    for sender in senders.iter_mut() {
                        sender.flush();
                    }
                }
            }
            WireFrame::Shutdown {
                client: _,
                events_sent,
                stream_fingerprint,
            } => {
                stats.shutdowns += 1;
                if events_sent != delivered || stream_fingerprint != chain {
                    stats.shutdown_mismatches += 1;
                }
            }
            WireFrame::Ping { token } => {
                // Liveness: echo the token so a client-side watchdog sees a
                // breathing replica even between verdict rounds.
                fanout.unicast(conn, encode_frame(&WireFrame::Pong { token }));
            }
            WireFrame::Pong { .. } => {}
            WireFrame::Verdict(_) | WireFrame::Ack { .. } | WireFrame::Overloaded { .. } => {
                // These flow replica→client only.
                stats.protocol_errors += 1;
            }
        }
    }
    if let Some(senders) = &mut senders {
        for sender in senders.iter_mut() {
            sender.flush();
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Replica shard stages
// ---------------------------------------------------------------------------

pub(crate) enum StageMsg {
    Batch(SegmentBatch),
    Final(SegmentBatch, IngestSummary),
}

pub(crate) struct IngestOut {
    pub(crate) merge: MergeStats,
    pub(crate) rejected: u64,
    pub(crate) accepted: Option<Vec<Event>>,
}

pub(crate) fn run_merge_ingest(
    mut merge: sharded::FrameMerge<Event>,
    mut ingest: MonitorIngest,
    tx: Sender<StageMsg>,
    capture: bool,
) -> IngestOut {
    let mut buf: Vec<(u64, Event)> = Vec::new();
    let mut rejected = 0u64;
    let mut accepted = capture.then(Vec::new);
    loop {
        buf.clear();
        if merge.recv_sorted(&mut buf, 1024) == 0 {
            break;
        }
        for (_seq, event) in buf.drain(..) {
            let kept = if let Some(acc) = &mut accepted {
                let clone = event.clone();
                let ok = ingest.ingest(event).is_ok();
                if ok {
                    acc.push(clone);
                }
                ok
            } else {
                ingest.ingest(event).is_ok()
            };
            if !kept {
                rejected += 1;
            }
        }
        while let Some(batch) = ingest.take_ready_batch() {
            if tx.send(StageMsg::Batch(batch)).is_err() {
                break;
            }
        }
    }
    let (tail, summary) = ingest.finish();
    let _ = tx.send(StageMsg::Final(tail, summary));
    IngestOut {
        merge: merge.stats(),
        rejected,
        accepted,
    }
}

pub(crate) struct CheckOut {
    pub(crate) report: MonitorReport,
    pub(crate) rounds: u64,
    pub(crate) summary: VerdictSummary,
}

/// Runs a shard's check stage.  With `alive`, every broadcast — mid-run
/// *and* final — is suppressed once the flag drops: a supervisor simulating
/// a replica crash flips it so the dying pool cannot leak verdicts while its
/// successor is being rebuilt.
pub(crate) fn run_check(
    shard: u32,
    mut check: MonitorCheck,
    rx: Receiver<StageMsg>,
    fanout: Arc<Fanout>,
    alive: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> CheckOut {
    let mut round = 0u64;
    let mut events_cum = 0u64;
    let mut keys: Vec<u64> = Vec::new();
    while let Some(msg) = rx.recv() {
        match msg {
            StageMsg::Batch(batch) => {
                round += 1;
                events_cum += batch.events() as u64;
                keys.clear();
                keys.extend(batch.segment_keys());
                check.check_batch(batch);
                if alive.as_ref().is_none_or(|a| a.load(Ordering::Relaxed)) {
                    fanout.broadcast(
                        &VerdictSummary {
                            shard,
                            round,
                            events: events_cum,
                            checked_ops: 0,
                            fingerprint: fold_words(shard as u64, &keys),
                            last: false,
                            verdict: check.verdict_so_far(),
                        },
                        false,
                    );
                }
            }
            StageMsg::Final(tail, summary) => {
                round += 1;
                let report = check.finish(tail, summary);
                let final_summary = VerdictSummary {
                    shard,
                    round,
                    events: report.stats.events as u64,
                    checked_ops: report.stats.checked_ops as u64,
                    fingerprint: report.stats.stream_fingerprint,
                    last: true,
                    verdict: report.verdict.clone(),
                };
                if alive.as_ref().is_none_or(|a| a.load(Ordering::Relaxed)) {
                    fanout.broadcast(&final_summary, true);
                }
                return CheckOut {
                    report,
                    rounds: round,
                    summary: final_summary,
                };
            }
        }
    }
    unreachable!("the ingest stage always sends a final batch before closing")
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

enum HandlerJoins {
    /// Handlers spawned directly (in-process transport).
    Direct(Vec<JoinHandle<ConnStats>>),
    /// An acceptor thread that spawns one handler per accepted socket.
    Accepted(JoinHandle<Vec<JoinHandle<ConnStats>>>),
}

/// A running pool of monitor replicas behind a shard router.
///
/// Built with [`MonitorService::in_process`] (duplex channels, optionally
/// faulted) or [`MonitorService::loopback_tcp`] (real sockets).  Threads:
/// one handler per connection, plus a merge+ingest and a check thread per
/// replica shard.  [`MonitorService::finish`] joins everything — call it
/// after every client has finished — and returns the [`ServiceReport`].
///
/// # Liveness
///
/// Replicas reassemble the *global* sequence order, so a shard's merge can
/// only advance past a client's ring once that client has sent something
/// (or closed).  Mid-run checking therefore proceeds at the pace of the
/// slowest producer, and clients are expected to run on independent
/// threads: a single thread driving several clients against small
/// `conn_frames`/`ring_frames` budgets can deadlock itself through the
/// back-pressure cycle.  Give each client its own thread (the intended
/// shape), or size the buffers above the in-flight event count.
pub struct MonitorService {
    handlers: HandlerJoins,
    ingest_joins: Vec<JoinHandle<IngestOut>>,
    check_joins: Vec<JoinHandle<CheckOut>>,
    claims: Arc<ClaimTable>,
    fanout: Arc<Fanout>,
}

struct Core {
    claims: Arc<ClaimTable>,
    fanout: Arc<Fanout>,
    router: ShardRouter,
    ingest_joins: Vec<JoinHandle<IngestOut>>,
    check_joins: Vec<JoinHandle<CheckOut>>,
}

fn spawn_core(universe: &ObjectUniverse, conns: usize, config: &ServiceConfig) -> Core {
    let router = ShardRouter::new(config.monitor.condition, config.shards);
    let shards = router.effective_shards();
    let fanout = Arc::new(Fanout::new(conns, shards));
    let mut per_conn: Vec<Vec<FrameSender<Event>>> =
        (0..conns).map(|_| Vec::with_capacity(shards)).collect();
    let mut ingest_joins = Vec::with_capacity(shards);
    let mut check_joins = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (senders, merge) = sharded::sharded::<Event>(
            conns.max(1),
            config.ring_frames,
            config.frame_capacity,
            None,
        );
        for (conn, sender) in senders.into_iter().enumerate().take(conns) {
            per_conn[conn].push(sender);
        }
        let (ingest, check) = stages(universe.clone(), config.monitor);
        let (stage_tx, stage_rx) = channel::bounded(config.stage_queue.max(1));
        let capture = config.capture_streams;
        ingest_joins.push(
            std::thread::Builder::new()
                .name(format!("evlin-svc-ingest-{shard}"))
                .spawn(move || run_merge_ingest(merge, ingest, stage_tx, capture))
                .expect("spawn ingest thread"),
        );
        let fanout = Arc::clone(&fanout);
        check_joins.push(
            std::thread::Builder::new()
                .name(format!("evlin-svc-check-{shard}"))
                .spawn(move || run_check(shard as u32, check, stage_rx, fanout, None))
                .expect("spawn check thread"),
        );
    }
    Core {
        claims: Arc::new(ClaimTable::new(per_conn)),
        fanout,
        router,
        ingest_joins,
        check_joins,
    }
}

impl MonitorService {
    /// Spawns a service over in-process duplex links and returns its
    /// connected clients.
    ///
    /// With [`ServiceConfig::fault`], every client→replica link runs behind
    /// its own seed-derived frame-level fault injector; the replica→client
    /// verdict plane stays clean.
    pub fn in_process(
        universe: &ObjectUniverse,
        clients: usize,
        config: ServiceConfig,
    ) -> (Vec<ServiceClient>, MonitorService) {
        let core = spawn_core(universe, clients, &config);
        let conn_frames = config.conn_frames.max(1);
        // The verdict plane reserves one slot per shard for final
        // summaries; size the replica→client direction so a reserve exists.
        let verdict_frames = conn_frames.max(core.router.effective_shards() + 1);
        let seq = Arc::new(AtomicU64::new(0));
        let mut service_clients = Vec::with_capacity(clients);
        let mut handler_joins = Vec::with_capacity(clients);
        for conn in 0..clients {
            let plan = config.fault.map(|p| p.for_shard(conn));
            let (client_tx, server_rx) = duplex(conn_frames, plan);
            let (server_tx, client_rx) = duplex(verdict_frames, None);
            let client = ServiceClient::connect(
                Box::new(client_tx),
                Box::new(client_rx),
                conn as u32,
                Arc::clone(&seq),
                config.frame_capacity,
            )
            .expect("duplex hello cannot fail: the ring is empty and open");
            service_clients.push(client);
            let claims = Arc::clone(&core.claims);
            let fanout = Arc::clone(&core.fanout);
            let router = core.router;
            handler_joins.push(
                std::thread::Builder::new()
                    .name(format!("evlin-svc-conn-{conn}"))
                    .spawn(move || {
                        run_handler(
                            conn,
                            Box::new(server_rx),
                            Box::new(server_tx),
                            claims,
                            fanout,
                            router,
                        )
                    })
                    .expect("spawn handler thread"),
            );
        }
        (
            service_clients,
            MonitorService {
                handlers: HandlerJoins::Direct(handler_joins),
                ingest_joins: core.ingest_joins,
                check_joins: core.check_joins,
                claims: core.claims,
                fanout: core.fanout,
            },
        )
    }

    /// Spawns a service listening on an ephemeral loopback TCP port,
    /// expecting exactly `clients` connections
    /// (via [`ServiceClient::connect_tcp`]).
    ///
    /// Returns the address to connect to.  [`ServiceConfig::fault`] is
    /// ignored: fault injection is a property of the in-process shim; TCP
    /// delivers frames reliably or not at all.
    pub fn loopback_tcp(
        universe: &ObjectUniverse,
        clients: usize,
        config: ServiceConfig,
    ) -> std::io::Result<(SocketAddr, MonitorService)> {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let core = spawn_core(universe, clients, &config);
        let claims = Arc::clone(&core.claims);
        let fanout = Arc::clone(&core.fanout);
        let router = core.router;
        let acceptor = std::thread::Builder::new()
            .name("evlin-svc-accept".into())
            .spawn(move || {
                let mut joins = Vec::with_capacity(clients);
                for conn in 0..clients {
                    let Ok((stream, _)) = listener.accept() else {
                        break;
                    };
                    let _ = stream.set_nodelay(true);
                    let Ok((tx, rx)) = tcp_pair(stream) else {
                        continue;
                    };
                    let claims = Arc::clone(&claims);
                    let fanout = Arc::clone(&fanout);
                    joins.push(
                        std::thread::Builder::new()
                            .name(format!("evlin-svc-conn-{conn}"))
                            .spawn(move || {
                                run_handler(
                                    conn,
                                    Box::new(rx),
                                    Box::new(tx),
                                    claims,
                                    fanout,
                                    router,
                                )
                            })
                            .expect("spawn handler thread"),
                    );
                }
                joins
            })
            .expect("spawn acceptor thread");
        Ok((
            addr,
            MonitorService {
                handlers: HandlerJoins::Accepted(acceptor),
                ingest_joins: core.ingest_joins,
                check_joins: core.check_joins,
                claims: core.claims,
                fanout: core.fanout,
            },
        ))
    }

    /// Winds the service down and returns its report.
    ///
    /// Call after every client finished its stream: handlers are joined
    /// first (they exit on connection end-of-stream), unclaimed rings are
    /// released, the replica shards drain and report, and finally the
    /// verdict plane is closed so [`crate::client::ClosedClient`] readers
    /// see end-of-stream.
    pub fn finish(self) -> ServiceReport {
        let connections: Vec<ConnStats> = match self.handlers {
            HandlerJoins::Direct(joins) => joins
                .into_iter()
                .map(|j| j.join().expect("handler thread"))
                .collect(),
            HandlerJoins::Accepted(acceptor) => acceptor
                .join()
                .expect("acceptor thread")
                .into_iter()
                .map(|j| j.join().expect("handler thread"))
                .collect(),
        };
        // Connections that never identified themselves still hold ring
        // slots; release them so the merges can reach end-of-stream.
        self.claims.drain();
        let ingests: Vec<IngestOut> = self
            .ingest_joins
            .into_iter()
            .map(|j| j.join().expect("ingest thread"))
            .collect();
        let checks: Vec<CheckOut> = self
            .check_joins
            .into_iter()
            .map(|j| j.join().expect("check thread"))
            .collect();
        self.fanout.close_all();
        let accepted_streams = ingests.iter().all(|i| i.accepted.is_some()).then(|| {
            ingests
                .iter()
                .map(|i| i.accepted.clone().unwrap())
                .collect()
        });
        let shards: Vec<ShardReport> = ingests
            .into_iter()
            .zip(checks)
            .map(|(ingest, check)| ShardReport {
                report: check.report,
                merge: ingest.merge,
                rejected_events: ingest.rejected,
                rounds: check.rounds,
                summary: check.summary,
            })
            .collect();
        ServiceReport {
            verdict: recompose_verdicts(shards.iter().map(|s| s.report.verdict.clone())),
            shards,
            connections,
            verdicts_dropped: self.fanout.dropped.load(Ordering::Relaxed),
            accepted_streams,
        }
    }
}
