//! Sharded online-monitoring **service**: the client/replica split of the
//! `evlin` monitor, with a documented wire protocol.
//!
//! The in-process pipeline (PR 7) put the recorder and the staged monitor in
//! one address space.  This crate promotes that dataflow into a service: *N*
//! producer clients encode their recorded events into compact binary frames
//! and stream them over a transport to a pool of monitor **replicas**, one
//! per object shard.  Sharding by object is sound precisely for the
//! object-local conditions of Guerraoui & Ruppert — linearizability is
//! local (Herlihy & Wing), so per-object verdicts recompose into the global
//! verdict; the non-local conditions collapse to a single replica rather
//! than risk an unsound split.
//!
//! ## Module map
//!
//! | module | role |
//! |---|---|
//! | [`wire`] | frame codec: byte layouts, fingerprints, versioning (see `docs/PROTOCOL.md`) |
//! | [`transport`] | how frames move: in-process duplex (optionally faulted), loopback TCP, read deadlines, [`transport::ChaosPlan`] |
//! | [`client`] | producer side: a recorder shard over a [`client::WireSink`] |
//! | [`replica`] | service side: connection handlers, shard router, replica pool |
//! | [`journal`] | `EVJL` per-session fsynced frame journal with torn-tail recovery |
//! | [`session`] | exactly-once resumption: server-side dedup/ack state, client-side unacked window, seeded backoff |
//! | [`supervisor`] | crash-recoverable service: heartbeats, journal-replay restart, overload shedding |
//!
//! ## Example
//!
//! An in-process service run, two clients, four replica shards:
//!
//! ```
//! use evlin_checker::monitor::{MonitorCondition, MonitorConfig};
//! use evlin_history::{ObjectId, ObjectUniverse, ProcessId};
//! use evlin_service::{MonitorService, ServiceConfig};
//! use evlin_spec::{FetchIncrement, Value};
//!
//! let mut universe = ObjectUniverse::new();
//! for _ in 0..8 {
//!     universe.add_object(FetchIncrement::new());
//! }
//! let config = ServiceConfig {
//!     shards: 4,
//!     monitor: MonitorConfig::for_condition(MonitorCondition::Linearizability),
//!     ..ServiceConfig::default()
//! };
//! let (mut clients, service) = MonitorService::in_process(&universe, 2, config);
//!
//! // Each client records complete operations on its own process; every
//! // response reports the object's true sequential counter value, so the
//! // recorded history is linearizable by construction.
//! let mut next = vec![0i64; 8];
//! for (c, client) in clients.iter_mut().enumerate() {
//!     let process = ProcessId(c);
//!     for i in 0..16usize {
//!         let object = ObjectId(i % 8);
//!         client.invoke(process, object, FetchIncrement::fetch_inc());
//!         client.respond(process, object, Value::Int(next[i % 8]));
//!         next[i % 8] += 1;
//!     }
//! }
//!
//! // Wind down: clients first, then the service.
//! let closed: Vec<_> = clients.into_iter().map(|c| c.finish()).collect();
//! let report = service.finish();
//! assert!(report.verdict.is_ok());
//! assert_eq!(report.events(), 64);
//!
//! // Every client received each shard's reliable final verdict.
//! for closed in closed {
//!     let report = closed.collect_verdicts();
//!     assert_eq!(report.final_summaries().len(), 4);
//! }
//! ```
//!
//! The loopback-TCP variant is the same dance with
//! [`MonitorService::loopback_tcp`] and [`ServiceClient::connect_tcp`]; see
//! `examples/loopback_demo.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod replica;
pub mod session;
pub mod supervisor;
pub mod transport;
pub mod wire;

pub use client::{ClientReport, ClientStats, ClosedClient, ServiceClient};
pub use journal::{Journal, JournalError};
pub use replica::{ConnStats, MonitorService, ServiceConfig, ServiceReport, ShardReport};
pub use session::{Backoff, RetriesExhausted, SessionError, SessionRx, SessionTx};
pub use supervisor::{
    ClientRecoveryConfig, ClosedRecoverableClient, ReconnectChaos, RecoverableClient,
    RecoverableClientReport, RecoverableClientStats, RecoverableService, RecoveryConfig,
    RecoveryReport, SessionStats,
};
pub use transport::{ChaosPlan, FrameRx, FrameTx};
pub use wire::{ResumeCursor, VerdictSummary, WireError, WireFrame, LEGACY_VERSION, VERSION};
