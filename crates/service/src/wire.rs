//! The binary wire format — the codec side of `docs/PROTOCOL.md`.
//!
//! Every frame is length-prefixed and self-describing: a little-endian
//! `u32` body length, a one-byte frame tag, then the tag's body.  Event
//! frames are sequence-stamped per event and carry a
//! [`evlin_sim::zobrist::fold_words`] fingerprint over the interleaved
//! `(seq, event_word)` words, mirroring the in-process frame transport's
//! integrity check (`evlin_runtime::Frame`), so a replica detects payload
//! corruption — not just truncation — before any event reaches a monitor.
//!
//! The codec is pure: [`encode_frame`] and [`decode_frame`] translate
//! between [`WireFrame`] values and byte vectors with no I/O, which is what
//! makes the round-trip property (`decode ∘ encode = id`) directly
//! proptestable.  See `docs/PROTOCOL.md` for the byte-level layout tables;
//! the constants and field orders here are the normative implementation.
//!
//! ```
//! use evlin_history::{Event, ObjectId, ProcessId};
//! use evlin_service::wire::{decode_frame, encode_frame, event_batch_fingerprint, WireFrame};
//! use evlin_spec::FetchIncrement;
//!
//! let events = vec![(7u64, Event::invoke(ProcessId(0), ObjectId(3), FetchIncrement::fetch_inc()))];
//! let frame = WireFrame::Events {
//!     client: 2,
//!     frame_seq: 0,
//!     fingerprint: event_batch_fingerprint(2, &events),
//!     events,
//! };
//! let bytes = encode_frame(&frame);
//! assert_eq!(decode_frame(&bytes).unwrap(), frame);
//! ```

use evlin_checker::monitor::{event_word, MonitorVerdict, MonitorViolation};
use evlin_history::{Event, ObjectId, ProcessId};
use evlin_sim::zobrist::fold_words;
use evlin_spec::{Invocation, Value};
use std::fmt;

/// Protocol magic, the ASCII bytes `EVLN` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"EVLN");

/// Current protocol version carried in every [`WireFrame::Hello`].  A
/// replica rejects a connection whose hello announces a version it does not
/// speak; frames themselves are not version-stamped (the handshake pins the
/// connection).  Version 2 added session resumption (the extended hello plus
/// the `ACK`/`PING`/`PONG`/`OVERLOADED` frames); version-1 hellos are still
/// decoded for compatibility.
pub const VERSION: u16 = 2;

/// The pre-session protocol version: an 11-byte hello and the
/// `EVENTS`/`VERDICT`/`SHUTDOWN` frames only.
pub const LEGACY_VERSION: u16 = 1;

/// Upper bound on a frame body, guarding length-prefix corruption: a flipped
/// length bit must produce a decode error, not a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 26;

/// Frame tag bytes (the byte after the length prefix).
pub mod tag {
    /// [`super::WireFrame::Hello`].
    pub const HELLO: u8 = 1;
    /// [`super::WireFrame::Events`].
    pub const EVENTS: u8 = 2;
    /// [`super::WireFrame::Verdict`].
    pub const VERDICT: u8 = 3;
    /// [`super::WireFrame::Shutdown`].
    pub const SHUTDOWN: u8 = 4;
    /// [`super::WireFrame::Ack`] (version 2).
    pub const ACK: u8 = 5;
    /// [`super::WireFrame::Ping`] (version 2).
    pub const PING: u8 = 6;
    /// [`super::WireFrame::Pong`] (version 2).
    pub const PONG: u8 = 7;
    /// [`super::WireFrame::Overloaded`] (version 2).
    pub const OVERLOADED: u8 = 8;
}

/// A client's durable position in its session stream, as carried by resume
/// hellos and [`WireFrame::Ack`] frames.
///
/// `frames` counts whole accepted `EVENTS` frames (equivalently: the next
/// expected `frame_seq`), `events` the events inside them, and `chain` the
/// [`chain_fingerprint`] folded over exactly those frames.  Two endpoints
/// agree on a cursor iff they accepted the same frame sequence — which is
/// what makes the cursor both a resume point and a corruption detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeCursor {
    /// Accepted `EVENTS` frames (= the next expected `frame_seq`).
    pub frames: u64,
    /// Events inside those frames.
    pub events: u64,
    /// The chained stream fingerprint over those frames.
    pub chain: u64,
}

/// Everything that can appear on the wire, in decoded form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// Connection handshake, sent once by the client before anything else.
    ///
    /// A [`LEGACY_VERSION`] hello carries only `client` and `version`
    /// (`session` is 0 and `resume` is `None` by construction).  A
    /// [`VERSION`]-2 hello additionally names the client's session and,
    /// when reconnecting, the durable cursor it believes the replica has
    /// journaled — the replica cross-checks that cursor against its journal
    /// before resuming the session.
    Hello {
        /// The producer's client id (its slot in the replica pool).
        client: u32,
        /// The protocol version the client speaks ([`VERSION`] or
        /// [`LEGACY_VERSION`]).
        version: u16,
        /// The client's session id (0 for legacy hellos): stable across
        /// reconnects, it is what lets a replica re-attach a dropped
        /// connection to its journal.
        session: u64,
        /// Present on reconnect: the durable cursor the client last saw
        /// acknowledged.  `None` opens a fresh session.
        resume: Option<ResumeCursor>,
    },
    /// A batch of sequence-stamped events.
    Events {
        /// The sending client.
        client: u32,
        /// Per-client frame counter (0, 1, 2, …) — gaps and regressions in
        /// this number are how a replica counts lost and reordered frames.
        frame_seq: u64,
        /// `(global sequence number, event)` pairs in send order.
        events: Vec<(u64, Event)>,
        /// [`event_batch_fingerprint`] over `client` and `events`; verified
        /// during decode.
        fingerprint: u64,
    },
    /// A verdict round from one monitor replica shard.
    Verdict(VerdictSummary),
    /// End of a client's stream, carrying totals the replica can audit.
    Shutdown {
        /// The sending client.
        client: u32,
        /// Events the client pushed onto the wire over the connection.
        events_sent: u64,
        /// The client's chained stream fingerprint (see
        /// [`chain_fingerprint`]) over every event frame it sent.
        stream_fingerprint: u64,
    },
    /// Durability acknowledgement, replica→client (version 2): everything
    /// up to `cursor` has been journaled and fsynced.  The client prunes its
    /// unacked replay window up to the cursor; on a gap rejection the cursor
    /// tells the client exactly where to rewind.
    Ack {
        /// The acknowledged client.
        client: u32,
        /// The session being acknowledged.
        session: u64,
        /// The replica's durable cursor for the session.
        cursor: ResumeCursor,
    },
    /// Liveness probe (version 2), either direction.  The receiver echoes
    /// the token back in a [`WireFrame::Pong`].
    Ping {
        /// Opaque token echoed by the pong.
        token: u64,
    },
    /// Liveness probe response (version 2).
    Pong {
        /// The token of the ping being answered.
        token: u64,
    },
    /// Typed load-shedding rejection, replica→client (version 2): the
    /// frame that provoked it was **not** accepted (not journaled, not
    /// routed) and remains the client's to retransmit after `retry_after_ms`
    /// — the bounded-ingest alternative to buffering without bound.
    Overloaded {
        /// The rejected client.
        client: u32,
        /// Suggested delay before retransmitting, in milliseconds.
        retry_after_ms: u32,
    },
}

/// One round of a replica shard's verdict plane.
///
/// Rounds are numbered per shard (1, 2, …); because mid-run rounds ride a
/// lossy best-effort path (see `docs/PROTOCOL.md`), the number is what lets
/// a client detect that it missed one.  The final round of a shard has
/// [`VerdictSummary::last`] set and is delivered reliably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictSummary {
    /// The reporting shard.
    pub shard: u32,
    /// Round number within the shard, starting at 1.
    pub round: u64,
    /// Events the shard's monitor has checked through this round.
    pub events: u64,
    /// Completed operations decided (populated on the final round).
    pub checked_ops: u64,
    /// Mid-run rounds: `fold_words` over the round's segment keys, seeded by
    /// the shard id.  Final round: the monitor's canonical stream
    /// fingerprint.
    pub fingerprint: u64,
    /// Whether this is the shard's final summary.
    pub last: bool,
    /// The verdict as of this round.
    pub verdict: MonitorVerdict,
}

/// Decode failures, each naming the layer that rejected the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the announced structure does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// The length prefix disagrees with the buffer length.
    LengthMismatch {
        /// Length the prefix announced (body bytes).
        announced: usize,
        /// Body bytes actually present.
        have: usize,
    },
    /// A frame body larger than [`MAX_FRAME_BYTES`] was announced.
    FrameTooLarge(usize),
    /// An unknown frame tag.
    BadTag(u8),
    /// A hello frame without the protocol magic.
    BadMagic(u32),
    /// An unknown [`Value`] tag inside an event payload.
    BadValueTag(u8),
    /// An unknown event-kind or verdict-status byte.
    BadKind(u8),
    /// A method name or detail string that is not UTF-8.
    BadUtf8,
    /// Bytes left over after the frame's structure ended.
    TrailingBytes(usize),
    /// The event batch fingerprint did not match the payload.
    FingerprintMismatch {
        /// Fingerprint carried by the frame.
        announced: u64,
        /// Fingerprint recomputed from the decoded events.
        computed: u64,
    },
    /// A hello announcing a protocol version this decoder does not speak,
    /// or a version-2 frame arriving at a decoder capped below version 2
    /// ([`decode_frame_limited`]).  Deliberately a *clean, typed* rejection:
    /// an old replica meeting a resume hello must refuse it, not panic.
    UnsupportedVersion(u16),
    /// A blocking read exceeded its deadline while the peer stayed silent.
    ///
    /// Surfaced by transports with a read deadline configured; the caller
    /// decides whether a silent peer is idle (send a ping) or dead (close).
    PeerTimeout,
    /// The underlying transport failed (connection reset, poisoned lock…).
    Transport(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::LengthMismatch { announced, have } => {
                write!(
                    f,
                    "length prefix announced {announced} body bytes, have {have}"
                )
            }
            WireError::FrameTooLarge(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadMagic(m) => write!(f, "bad protocol magic {m:#010x}"),
            WireError::BadValueTag(t) => write!(f, "unknown value tag {t:#04x}"),
            WireError::BadKind(k) => write!(f, "unknown kind/status byte {k:#04x}"),
            WireError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame body"),
            WireError::FingerprintMismatch {
                announced,
                computed,
            } => write!(
                f,
                "event batch fingerprint mismatch: frame says {announced:#018x}, \
                 payload folds to {computed:#018x}"
            ),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            WireError::PeerTimeout => write!(f, "peer silent past the read deadline"),
            WireError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The fingerprint an event frame must carry: `fold_words` seeded by the
/// client id over the interleaved `(seq, event_word)` words of the batch.
///
/// Covering the packed [`event_word`] alongside each sequence number means a
/// corrupted payload byte (not just a missing event) flips the fingerprint,
/// and seeding by client id keeps identical batches from different clients
/// distinguishable — the same discipline as the in-process frame transport.
pub fn event_batch_fingerprint(client: u32, events: &[(u64, Event)]) -> u64 {
    let mut words = Vec::with_capacity(events.len() * 2);
    for (seq, event) in events {
        words.push(*seq);
        words.push(event_word(event));
    }
    fold_words(client as u64, &words)
}

/// One link of a client's *chained* stream fingerprint: the previous chain
/// value seeds a fold over the new frame's batch fingerprint.
///
/// `fold_words` finalizes with the word count, so folds do not concatenate;
/// chaining frame-by-frame (`chain₀ = client id`,
/// `chainₖ₊₁ = fold_words(chainₖ, [frame fingerprintₖ])`) gives both sides
/// an O(1)-memory running fingerprint that is order- and loss-sensitive.
/// The final value rides the shutdown frame; a replica that accepted a
/// different frame sequence (loss, duplication, reordering) computes a
/// different chain, which is the end-of-stream loss audit.
pub fn chain_fingerprint(chain: u64, frame_fingerprint: u64) -> u64 {
    fold_words(chain, &[frame_fingerprint])
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    put_u16(out, len as u16);
    out.extend_from_slice(&bytes[..len]);
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Unit => out.push(0),
        Value::Bottom => out.push(1),
        Value::Bool(b) => {
            out.push(2);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(3);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Sym(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Pair(a, b) => {
            out.push(5);
            put_value(out, a);
            put_value(out, b);
        }
        Value::List(items) => {
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
    }
}

fn put_event(out: &mut Vec<u8>, event: &Event) {
    put_u32(out, event.process.0 as u32);
    put_u32(out, event.object.0 as u32);
    match &event.kind {
        evlin_history::EventKind::Invoke(inv) => {
            out.push(0);
            put_str(out, inv.method());
            out.push(inv.args().len().min(u8::MAX as usize) as u8);
            for arg in inv.args() {
                put_value(out, arg);
            }
        }
        evlin_history::EventKind::Respond(value) => {
            out.push(1);
            put_value(out, value);
        }
    }
}

fn put_verdict(out: &mut Vec<u8>, verdict: &MonitorVerdict) {
    match verdict {
        MonitorVerdict::Ok => out.push(0),
        MonitorVerdict::Unknown => out.push(2),
        MonitorVerdict::Violation(v) => {
            out.push(1);
            put_u64(out, v.segment_start as u64);
            put_u64(out, v.segment_len as u64);
            match v.object {
                Some(object) => {
                    out.push(1);
                    put_u32(out, object.0 as u32);
                }
                None => out.push(0),
            }
            match v.op {
                Some(op) => {
                    out.push(1);
                    put_u64(out, op.0 as u64);
                }
                None => out.push(0),
            }
            put_str(out, &v.detail);
        }
    }
}

/// Encodes a frame into its full wire bytes (length prefix included).
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&[0; 4]); // length prefix, patched below
    match frame {
        WireFrame::Hello {
            client,
            version,
            session,
            resume,
        } => {
            out.push(tag::HELLO);
            put_u32(&mut out, MAGIC);
            put_u16(&mut out, *version);
            put_u32(&mut out, *client);
            // A legacy hello ends here — its 11-byte layout is frozen.
            if *version != LEGACY_VERSION {
                put_u64(&mut out, *session);
                match resume {
                    Some(cursor) => {
                        out.push(1);
                        put_u64(&mut out, cursor.frames);
                        put_u64(&mut out, cursor.events);
                        put_u64(&mut out, cursor.chain);
                    }
                    None => out.push(0),
                }
            }
        }
        WireFrame::Events {
            client,
            frame_seq,
            events,
            fingerprint,
        } => {
            out.push(tag::EVENTS);
            put_u32(&mut out, *client);
            put_u64(&mut out, *frame_seq);
            put_u32(&mut out, events.len() as u32);
            for (seq, event) in events {
                put_u64(&mut out, *seq);
                put_event(&mut out, event);
            }
            put_u64(&mut out, *fingerprint);
        }
        WireFrame::Verdict(summary) => {
            out.push(tag::VERDICT);
            put_u32(&mut out, summary.shard);
            put_u64(&mut out, summary.round);
            put_u64(&mut out, summary.events);
            put_u64(&mut out, summary.checked_ops);
            put_u64(&mut out, summary.fingerprint);
            out.push(summary.last as u8);
            put_verdict(&mut out, &summary.verdict);
        }
        WireFrame::Shutdown {
            client,
            events_sent,
            stream_fingerprint,
        } => {
            out.push(tag::SHUTDOWN);
            put_u32(&mut out, *client);
            put_u64(&mut out, *events_sent);
            put_u64(&mut out, *stream_fingerprint);
        }
        WireFrame::Ack {
            client,
            session,
            cursor,
        } => {
            out.push(tag::ACK);
            put_u32(&mut out, *client);
            put_u64(&mut out, *session);
            put_u64(&mut out, cursor.frames);
            put_u64(&mut out, cursor.events);
            put_u64(&mut out, cursor.chain);
        }
        WireFrame::Ping { token } => {
            out.push(tag::PING);
            put_u64(&mut out, *token);
        }
        WireFrame::Pong { token } => {
            out.push(tag::PONG);
            put_u64(&mut out, *token);
        }
        WireFrame::Overloaded {
            client,
            retry_after_ms,
        } => {
            out.push(tag::OVERLOADED);
            put_u32(&mut out, *client);
            put_u32(&mut out, *retry_after_ms);
        }
    }
    let body_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&body_len.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.at + n > self.bytes.len() {
            return Err(WireError::Truncated {
                needed: self.at + n,
                have: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Unit),
            1 => Ok(Value::Bottom),
            2 => Ok(Value::Bool(self.u8()? != 0)),
            3 => Ok(Value::Int(self.i64()?)),
            4 => Ok(Value::Sym(self.str()?.to_string())),
            5 => {
                let a = self.value()?;
                let b = self.value()?;
                Ok(Value::Pair(Box::new(a), Box::new(b)))
            }
            6 => {
                let n = self.u32()? as usize;
                // Cap by remaining bytes: each element takes ≥ 1 byte, so a
                // corrupt count can never force an oversized allocation.
                let mut items = Vec::with_capacity(n.min(self.bytes.len() - self.at));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::List(items))
            }
            t => Err(WireError::BadValueTag(t)),
        }
    }

    fn event(&mut self, interner: &mut Vec<Invocation>) -> Result<Event, WireError> {
        let process = ProcessId(self.u32()? as usize);
        let object = ObjectId(self.u32()? as usize);
        match self.u8()? {
            0 => {
                let method = self.str()?;
                let argc = self.u8()? as usize;
                if argc == 0 {
                    // Zero-argument invocations dominate real streams
                    // (`fetch_inc`, `read`); interning them makes decode a
                    // pair of refcount bumps instead of two allocations.
                    if let Some(known) = interner.iter().find(|i| i.method() == method) {
                        return Ok(Event::invoke(process, object, known.clone()));
                    }
                    let inv = Invocation::new(method, Vec::new());
                    interner.push(inv.clone());
                    return Ok(Event::invoke(process, object, inv));
                }
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(self.value()?);
                }
                Ok(Event::invoke(
                    process,
                    object,
                    Invocation::new(method, args),
                ))
            }
            1 => Ok(Event::respond(process, object, self.value()?)),
            k => Err(WireError::BadKind(k)),
        }
    }
}

/// A whole frame's bytes and the remainder of the stream, from
/// [`split_frame`] — `None` while the first frame is still partial.
pub type SplitFrame<'a> = Option<(&'a [u8], &'a [u8])>;

/// Splits `bytes` (the read position of a byte stream) into the first whole
/// frame and the rest, or returns `None` while the frame is still partial.
///
/// Errors only on a length prefix that exceeds [`MAX_FRAME_BYTES`] — the one
/// corruption a streaming reader must reject *before* buffering the body.
pub fn split_frame(bytes: &[u8]) -> Result<SplitFrame<'_>, WireError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let body = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    if body > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(body));
    }
    if bytes.len() < 4 + body {
        return Ok(None);
    }
    Ok(Some(bytes.split_at(4 + body)))
}

/// Decodes one whole frame (length prefix included), verifying structure,
/// length and — for event frames — the batch fingerprint.
pub fn decode_frame(bytes: &[u8]) -> Result<WireFrame, WireError> {
    decode_frame_with(bytes, &mut Vec::new())
}

/// [`decode_frame`] with a caller-held invocation interner, so a long-lived
/// decoder (a replica connection handler) reuses one `Invocation` allocation
/// per distinct zero-argument method instead of allocating per event.
pub fn decode_frame_with(
    bytes: &[u8],
    interner: &mut Vec<Invocation>,
) -> Result<WireFrame, WireError> {
    decode_frame_limited(bytes, interner, VERSION)
}

/// [`decode_frame_with`] as spoken by a replica capped at `max_version` —
/// the version gate.  A legacy ([`LEGACY_VERSION`]-only) replica meeting a
/// resume hello or any version-2 frame gets a typed
/// [`WireError::UnsupportedVersion`], never a structural mis-decode: the
/// hello carries its version explicitly, and the version-2 frame tags
/// ([`tag::ACK`]..[`tag::OVERLOADED`]) did not exist in version 1.
pub fn decode_frame_limited(
    bytes: &[u8],
    interner: &mut Vec<Invocation>,
    max_version: u16,
) -> Result<WireFrame, WireError> {
    if bytes.len() < 5 {
        return Err(WireError::Truncated {
            needed: 5,
            have: bytes.len(),
        });
    }
    let announced = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    if announced > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(announced));
    }
    if announced != bytes.len() - 4 {
        return Err(WireError::LengthMismatch {
            announced,
            have: bytes.len() - 4,
        });
    }
    let mut c = Cursor { bytes, at: 4 };
    let frame = match c.u8()? {
        tag::HELLO => {
            let magic = c.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic(magic));
            }
            let version = c.u16()?;
            if version == 0 || version > max_version {
                return Err(WireError::UnsupportedVersion(version));
            }
            let client = c.u32()?;
            if version == LEGACY_VERSION {
                WireFrame::Hello {
                    client,
                    version,
                    session: 0,
                    resume: None,
                }
            } else {
                let session = c.u64()?;
                let resume = match c.u8()? {
                    0 => None,
                    _ => Some(ResumeCursor {
                        frames: c.u64()?,
                        events: c.u64()?,
                        chain: c.u64()?,
                    }),
                };
                WireFrame::Hello {
                    client,
                    version,
                    session,
                    resume,
                }
            }
        }
        tag::EVENTS => {
            let client = c.u32()?;
            let frame_seq = c.u64()?;
            let count = c.u32()? as usize;
            let mut events = Vec::with_capacity(count.min(bytes.len()));
            for _ in 0..count {
                let seq = c.u64()?;
                let event = c.event(interner)?;
                events.push((seq, event));
            }
            let fingerprint = c.u64()?;
            let computed = event_batch_fingerprint(client, &events);
            if computed != fingerprint {
                return Err(WireError::FingerprintMismatch {
                    announced: fingerprint,
                    computed,
                });
            }
            WireFrame::Events {
                client,
                frame_seq,
                events,
                fingerprint,
            }
        }
        tag::VERDICT => {
            let shard = c.u32()?;
            let round = c.u64()?;
            let events = c.u64()?;
            let checked_ops = c.u64()?;
            let fingerprint = c.u64()?;
            let last = c.u8()? != 0;
            let verdict = match c.u8()? {
                0 => MonitorVerdict::Ok,
                2 => MonitorVerdict::Unknown,
                1 => {
                    let segment_start = c.u64()? as usize;
                    let segment_len = c.u64()? as usize;
                    let object = match c.u8()? {
                        0 => None,
                        _ => Some(ObjectId(c.u32()? as usize)),
                    };
                    let op = match c.u8()? {
                        0 => None,
                        _ => Some(evlin_history::OpId(c.u64()? as usize)),
                    };
                    let detail = c.str()?.to_string();
                    MonitorVerdict::Violation(MonitorViolation {
                        segment_start,
                        segment_len,
                        object,
                        op,
                        detail,
                    })
                }
                k => return Err(WireError::BadKind(k)),
            };
            WireFrame::Verdict(VerdictSummary {
                shard,
                round,
                events,
                checked_ops,
                fingerprint,
                last,
                verdict,
            })
        }
        tag::SHUTDOWN => {
            let client = c.u32()?;
            let events_sent = c.u64()?;
            let stream_fingerprint = c.u64()?;
            WireFrame::Shutdown {
                client,
                events_sent,
                stream_fingerprint,
            }
        }
        t @ (tag::ACK | tag::PING | tag::PONG | tag::OVERLOADED) if max_version < 2 => {
            // A version-1 decoder has never heard of these tags; refusing
            // them as a version problem (not `BadTag`) is what lets a mixed
            // fleet report "upgrade me" instead of "corrupt stream".
            let _ = t;
            return Err(WireError::UnsupportedVersion(LEGACY_VERSION));
        }
        tag::ACK => {
            let client = c.u32()?;
            let session = c.u64()?;
            let cursor = ResumeCursor {
                frames: c.u64()?,
                events: c.u64()?,
                chain: c.u64()?,
            };
            WireFrame::Ack {
                client,
                session,
                cursor,
            }
        }
        tag::PING => WireFrame::Ping { token: c.u64()? },
        tag::PONG => WireFrame::Pong { token: c.u64()? },
        tag::OVERLOADED => {
            let client = c.u32()?;
            let retry_after_ms = c.u32()?;
            WireFrame::Overloaded {
                client,
                retry_after_ms,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if c.at != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - c.at));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::FetchIncrement;

    fn sample_events() -> Vec<(u64, Event)> {
        vec![
            (
                3,
                Event::invoke(ProcessId(1), ObjectId(0), FetchIncrement::fetch_inc()),
            ),
            (
                5,
                Event::respond(ProcessId(1), ObjectId(0), Value::from(4i64)),
            ),
        ]
    }

    #[test]
    fn all_frame_kinds_round_trip() {
        let events = sample_events();
        let frames = [
            WireFrame::Hello {
                client: 9,
                version: VERSION,
                session: 0xfeed_f00d,
                resume: None,
            },
            WireFrame::Hello {
                client: 9,
                version: VERSION,
                session: 0xfeed_f00d,
                resume: Some(ResumeCursor {
                    frames: 12,
                    events: 384,
                    chain: 0xabcd,
                }),
            },
            WireFrame::Hello {
                client: 9,
                version: LEGACY_VERSION,
                session: 0,
                resume: None,
            },
            WireFrame::Events {
                client: 9,
                frame_seq: 2,
                fingerprint: event_batch_fingerprint(9, &events),
                events,
            },
            WireFrame::Verdict(VerdictSummary {
                shard: 3,
                round: 7,
                events: 4_000,
                checked_ops: 2_000,
                fingerprint: 0xdead_beef,
                last: true,
                verdict: MonitorVerdict::Ok,
            }),
            WireFrame::Shutdown {
                client: 9,
                events_sent: 123,
                stream_fingerprint: 0x1234,
            },
            WireFrame::Ack {
                client: 9,
                session: 0xfeed_f00d,
                cursor: ResumeCursor {
                    frames: 13,
                    events: 416,
                    chain: 0x9999,
                },
            },
            WireFrame::Ping { token: 0x0102_0304 },
            WireFrame::Pong { token: 0x0102_0304 },
            WireFrame::Overloaded {
                client: 9,
                retry_after_ms: 250,
            },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn fingerprint_rejects_payload_corruption() {
        let events = sample_events();
        let frame = WireFrame::Events {
            client: 1,
            frame_seq: 0,
            fingerprint: event_batch_fingerprint(1, &events),
            events,
        };
        let mut bytes = encode_frame(&frame);
        // Flip a bit in the response value's i64 payload (the last event's
        // tail, well before the trailing fingerprint).
        let at = bytes.len() - 12;
        bytes[at] ^= 0x40;
        match decode_frame(&bytes) {
            Err(WireError::FingerprintMismatch { .. })
            | Err(WireError::BadKind(_))
            | Err(WireError::BadValueTag(_)) => {}
            other => panic!("corruption must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&WireFrame::Hello {
            client: 0,
            version: VERSION,
            session: 0,
            resume: None,
        });
        bytes[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::FrameTooLarge(_))
        ));
        assert!(matches!(
            split_frame(&bytes),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn split_frame_finds_boundaries() {
        let a = encode_frame(&WireFrame::Hello {
            client: 0,
            version: VERSION,
            session: 0,
            resume: None,
        });
        let b = encode_frame(&WireFrame::Shutdown {
            client: 0,
            events_sent: 1,
            stream_fingerprint: 2,
        });
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (first, rest) = split_frame(&stream).unwrap().unwrap();
        assert_eq!(first, &a[..]);
        assert_eq!(rest, &b[..]);
        assert!(split_frame(&stream[..3]).unwrap().is_none());
        assert!(split_frame(&stream[..a.len() + 2]).unwrap().is_some());
    }

    #[test]
    fn legacy_decoder_rejects_version_2_cleanly() {
        // An old replica (capped at LEGACY_VERSION) must refuse every
        // version-2 construct with UnsupportedVersion — not BadTag, not a
        // panic, not a mis-decode.
        let mut interner = Vec::new();
        let resume_hello = encode_frame(&WireFrame::Hello {
            client: 3,
            version: VERSION,
            session: 77,
            resume: Some(ResumeCursor {
                frames: 1,
                events: 2,
                chain: 3,
            }),
        });
        assert_eq!(
            decode_frame_limited(&resume_hello, &mut interner, LEGACY_VERSION),
            Err(WireError::UnsupportedVersion(VERSION)),
        );
        for frame in [
            WireFrame::Ack {
                client: 3,
                session: 77,
                cursor: ResumeCursor::default(),
            },
            WireFrame::Ping { token: 1 },
            WireFrame::Pong { token: 1 },
            WireFrame::Overloaded {
                client: 3,
                retry_after_ms: 10,
            },
        ] {
            let bytes = encode_frame(&frame);
            assert!(
                matches!(
                    decode_frame_limited(&bytes, &mut interner, LEGACY_VERSION),
                    Err(WireError::UnsupportedVersion(_)),
                ),
                "{frame:?}"
            );
        }
        // A legacy hello still decodes under the cap.
        let legacy = encode_frame(&WireFrame::Hello {
            client: 3,
            version: LEGACY_VERSION,
            session: 0,
            resume: None,
        });
        assert!(decode_frame_limited(&legacy, &mut interner, LEGACY_VERSION).is_ok());
    }

    #[test]
    fn hello_from_the_future_is_rejected() {
        let mut bytes = encode_frame(&WireFrame::Hello {
            client: 0,
            version: VERSION,
            session: 0,
            resume: None,
        });
        // Patch the version field (body offset 5 = tag + magic, +4 prefix).
        bytes[9..11].copy_from_slice(&99u16.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::UnsupportedVersion(99)),);
    }
}
